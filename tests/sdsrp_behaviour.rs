//! Behavioural integration tests of the SDSRP machinery inside full
//! simulations: ablation switches must change (deterministic) outcomes
//! in explainable directions, and engineered topologies must exercise
//! the gossip/refusal code paths.

use sdsrp::sdsrp::LambdaMode;
use sdsrp::sim::config::{presets, PolicyKind, ScenarioConfig};
use sdsrp::sim::world::World;

fn congested(policy: PolicyKind, seed: u64) -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 2000.0;
    cfg.gen_interval = (8.0, 12.0); // heavy traffic -> constant overflow
    cfg.policy = policy;
    cfg.seed = seed;
    cfg
}

fn fingerprint(cfg: &ScenarioConfig) -> (u64, u64, u64, u64, u64) {
    let r = World::build(cfg).run();
    (
        r.created(),
        r.delivered(),
        r.transmissions(),
        r.buffer_drops(),
        r.incoming_rejects(),
    )
}

fn sdsrp_variant(reject_dropped: bool, gossip: bool, taylor: Option<usize>) -> PolicyKind {
    PolicyKind::SdsrpCustom {
        lambda: LambdaMode::Online {
            prior: 1.0 / 2000.0,
            min_samples: 5,
        },
        taylor_terms: taylor,
        reject_dropped,
        gossip,
    }
}

#[test]
fn congestion_actually_causes_drops() {
    let r = World::build(&congested(PolicyKind::Sdsrp, 1)).run();
    assert!(
        r.buffer_drops() + r.incoming_rejects() > 20,
        "scenario not congested enough to exercise Algorithm 1: {} drops, {} rejects",
        r.buffer_drops(),
        r.incoming_rejects()
    );
}

#[test]
fn reject_dropped_switch_changes_behaviour() {
    let with = fingerprint(&congested(sdsrp_variant(true, true, None), 3));
    let without = fingerprint(&congested(sdsrp_variant(false, true, None), 3));
    assert_eq!(with.0, without.0, "same traffic either way");
    assert_ne!(
        with, without,
        "disabling the receive-reject rule changed nothing — dropped-list \
         refusals are not wired through"
    );
}

#[test]
fn gossip_switch_changes_behaviour() {
    let with = fingerprint(&congested(sdsrp_variant(true, true, None), 3));
    let without = fingerprint(&congested(sdsrp_variant(true, false, None), 3));
    assert_ne!(
        with, without,
        "disabling dropped-list gossip changed nothing — records are not \
         actually exchanged on contact"
    );
}

#[test]
fn taylor_truncation_ranks_differently_near_the_peak() {
    // Interesting negative result documented in EXPERIMENTS.md: in the
    // congested paper regime (λnA >> 1) the k=1 and exact orderings
    // coincide on virtually every real decision — the -λnA term
    // dominates both forms — so whole-run fingerprints are usually
    // identical. The functional difference is provable where Fig. 4
    // shows it: around the peak, where k=1 peaks at P(R)=0.5 and the
    // idealisation at 1-1/e.
    use sdsrp::sdsrp::priority::PriorityModel;
    let k1_a = PriorityModel::priority_taylor(0.0, 0.50, 1, 1);
    let k1_b = PriorityModel::priority_taylor(0.0, 0.632, 1, 1);
    let ex_a = PriorityModel::priority_from_probabilities(0.0, 0.50, 1);
    let ex_b = PriorityModel::priority_from_probabilities(0.0, 0.632, 1);
    assert!(
        k1_a > k1_b,
        "k=1 should prefer P(R)=0.5 over 0.632: {k1_a} vs {k1_b}"
    );
    assert!(
        ex_b > ex_a,
        "the idealisation should prefer 0.632 over 0.5: {ex_b} vs {ex_a}"
    );

    // Whole runs with many terms converge towards the exact form: same
    // traffic and a delivery ratio in the same ballpark.
    let exact = fingerprint(&congested(sdsrp_variant(true, true, None), 3));
    let k64 = fingerprint(&congested(sdsrp_variant(true, true, Some(64)), 3));
    assert_eq!(exact.0, k64.0);
    let exact_ratio = exact.1 as f64 / exact.0 as f64;
    let k64_ratio = k64.1 as f64 / k64.0 as f64;
    assert!(
        (exact_ratio - k64_ratio).abs() < 0.1,
        "64-term Taylor diverges wildly from exact: {exact_ratio} vs {k64_ratio}"
    );
}

#[test]
fn lambda_oracle_vs_online_differ_but_comparable() {
    let online = fingerprint(&congested(sdsrp_variant(true, true, None), 3));
    let oracle = fingerprint(&congested(
        PolicyKind::SdsrpOracle {
            lambda: 1.0 / 2000.0,
        },
        3,
    ));
    assert_eq!(online.0, oracle.0);
    let a = online.1 as f64 / online.0 as f64;
    let b = oracle.1 as f64 / oracle.0 as f64;
    assert!(
        (a - b).abs() < 0.15,
        "online ({a}) and oracle ({b}) estimation should be in the same ballpark"
    );
}

#[test]
fn sdsrp_beats_fifo_on_overhead_in_congestion() {
    // The paper's most robust headline: SDSRP's overhead ratio falls far
    // below plain Spray-and-Wait's. Averaged over seeds.
    let mut fifo_oh = 0.0;
    let mut sdsrp_oh = 0.0;
    for seed in 1..=3 {
        let f = World::build(&congested(PolicyKind::Fifo, seed)).run();
        let s = World::build(&congested(PolicyKind::Sdsrp, seed)).run();
        fifo_oh += f.overhead_ratio();
        sdsrp_oh += s.overhead_ratio();
    }
    assert!(
        sdsrp_oh < fifo_oh,
        "SDSRP overhead {sdsrp_oh} not below FIFO {fifo_oh}"
    );
}

#[test]
fn sdsrp_hopcount_not_worse_than_fifo() {
    // Paper Fig. 8(b): SDSRP achieves fewer hops than plain SAW.
    let mut fifo_h = 0.0;
    let mut sdsrp_h = 0.0;
    for seed in 1..=3 {
        fifo_h += World::build(&congested(PolicyKind::Fifo, seed))
            .run()
            .avg_hopcount();
        sdsrp_h += World::build(&congested(PolicyKind::Sdsrp, seed))
            .run()
            .avg_hopcount();
    }
    assert!(
        sdsrp_h <= fifo_h + 0.2,
        "SDSRP hops {sdsrp_h} well above FIFO {fifo_h}"
    );
}

#[test]
fn oracle_mode_bookkeeping_is_consistent() {
    // Oracle mode maintains m_i/n_i inside the world; a full run must
    // not trip any of its internal assertions and should deliver
    // comparably to the estimated variant.
    let mut cfg = congested(
        PolicyKind::SdsrpOracle {
            lambda: 1.0 / 2000.0,
        },
        7,
    );
    cfg.oracle = true;
    let r = World::build(&cfg).run();
    assert!(r.created() > 0);
    assert!(r.delivery_ratio() > 0.0);
}
