//! Failure injection: control-plane gossip arrives over a lossy radio,
//! so every `import_gossip` implementation must shrug off arbitrary
//! bytes — malformed, truncated, or adversarial — without panicking and
//! without corrupting local state.

use proptest::prelude::*;
use sdsrp::buffer::policy::BufferPolicy;
use sdsrp::core::ids::{MessageId, NodeId};
use sdsrp::core::time::SimTime;
use sdsrp::routing::prophet::{Prophet, ProphetConfig};
use sdsrp::routing::protocol::RoutingProtocol;
use sdsrp::routing::spray_and_focus::SprayAndFocus;
use sdsrp::sdsrp::{Sdsrp, SdsrpConfig};

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sdsrp_survives_garbage_gossip(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut p = Sdsrp::new(NodeId(0), SdsrpConfig::paper(50));
        p.on_drop(t(1.0), MessageId(7));
        p.import_gossip(t(2.0), &bytes);
        // Own records stay intact.
        prop_assert!(p.dropped_list().own_dropped(MessageId(7)));
        prop_assert!(!p.accepts(t(3.0), MessageId(7)));
    }

    #[test]
    fn prophet_survives_garbage_gossip(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut p = Prophet::new(ProphetConfig::default());
        p.on_contact_up(t(1.0), NodeId(3));
        let before = p.predictability(NodeId(3));
        p.import_gossip(t(1.0), NodeId(3), &bytes);
        // Aging between identical timestamps is a no-op, and garbage
        // must not invent predictability for unknown nodes.
        prop_assert!((p.predictability(NodeId(3)) - before).abs() < 1e-9);
        prop_assert_eq!(p.predictability(NodeId(42)), 0.0);
    }

    #[test]
    fn spray_and_focus_survives_garbage_gossip(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut p = SprayAndFocus::new(60.0);
        p.on_contact_up(t(1.0), NodeId(3));
        p.import_gossip(t(1.0), NodeId(3), &bytes);
        prop_assert_eq!(p.last_seen(NodeId(3)), Some(t(1.0)));
    }

    /// Truncations of *valid* payloads are the realistic corruption:
    /// make sure a prefix of a real SDSRP gossip blob never panics.
    #[test]
    fn sdsrp_survives_truncated_valid_gossip(cut in 0usize..200) {
        let mut a = Sdsrp::new(NodeId(0), SdsrpConfig::paper(50));
        for i in 0..5 {
            a.on_drop(t(i as f64), MessageId(i));
        }
        let payload = a.export_gossip(t(10.0)).expect("has records");
        let cut = cut.min(payload.len());
        let mut b = Sdsrp::new(NodeId(1), SdsrpConfig::paper(50));
        b.import_gossip(t(11.0), &payload[..cut]);
        // Only the complete payload may (and must) transfer knowledge.
        if cut == payload.len() {
            prop_assert!(!b.accepts(t(12.0), MessageId(0)));
        }
    }
}

#[test]
fn cross_policy_gossip_is_harmless() {
    // A Spray-and-Focus node receiving an SDSRP dropped list (protocol
    // confusion) must ignore it; and vice versa.
    let mut sdsrp = Sdsrp::new(NodeId(0), SdsrpConfig::paper(50));
    sdsrp.on_drop(t(1.0), MessageId(1));
    let dropped_payload = sdsrp.export_gossip(t(2.0)).unwrap();

    let mut focus = SprayAndFocus::new(60.0);
    focus.on_contact_down(t(3.0), NodeId(9));
    let focus_payload = focus.export_gossip(t(3.0)).unwrap();

    focus.import_gossip(t(4.0), NodeId(0), &dropped_payload);
    sdsrp.import_gossip(t(4.0), &focus_payload);

    assert_eq!(focus.last_seen(NodeId(9)), Some(t(3.0)));
    assert!(sdsrp.dropped_list().own_dropped(MessageId(1)));
}
