//! Golden-snapshot regression test: the headline smoke scenario's run
//! fingerprint is committed under `tests/golden/` and must reproduce
//! byte-for-byte. Any change to the simulator's observable behaviour —
//! intended or not — shows up as a diff here.
//!
//! To bless a new baseline after an intentional behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_headline
//! ```

use sdsrp::sim::config::{presets, PolicyKind};
use sdsrp::sim::replay::fingerprint;
use sdsrp::sim::world::World;
use sdsrp::telemetry::Recorder;
use sdsrp::validate::ReportFingerprint;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The pinned scenario: smoke preset, SDSRP policy, fixed seed and
/// duration. Fully deterministic, a few seconds of wall clock.
fn headline_smoke_fingerprint_at(threads: usize) -> ReportFingerprint {
    let mut cfg = presets::smoke();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 42;
    cfg.duration_secs = 3_600.0;
    let mut world = World::build(&cfg);
    world.set_threads(threads);
    world.attach_recorder(Recorder::enabled(16));
    let (report, recorder) = world.run_with_recorder();
    fingerprint(&report, recorder.totals())
}

fn headline_smoke_fingerprint() -> ReportFingerprint {
    headline_smoke_fingerprint_at(1)
}

#[test]
fn headline_smoke_matches_committed_golden() {
    let fp = headline_smoke_fingerprint();
    let rendered = fp.to_canonical_json();
    let path = golden_path("headline_smoke.json");

    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        eprintln!("golden snapshot updated: {}", path.display());
        return;
    }

    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_headline",
            path.display()
        )
    });
    let expected = ReportFingerprint::from_json(&committed).expect("golden parses");
    assert_eq!(
        fp,
        expected,
        "headline fingerprint drifted from golden:\n{}",
        expected.diff(&fp).join("\n")
    );
    // Byte-stable, not just structurally equal: the canonical rendering
    // must match the committed file exactly.
    assert_eq!(
        rendered, committed,
        "canonical JSON rendering changed (field order / formatting?)"
    );
}

/// The committed snapshot predates the parallel world core, so a
/// multi-threaded run matching it byte-for-byte proves the parallel
/// phases reproduce the serial-era behaviour exactly — the strongest
/// form of the determinism contract.
#[test]
fn headline_smoke_threaded_matches_committed_golden() {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        // The serial test owns blessing; nothing to refresh here.
        return;
    }
    let path = golden_path("headline_smoke.json");
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden_headline",
            path.display()
        )
    });
    let expected = ReportFingerprint::from_json(&committed).expect("golden parses");
    for threads in [2, 8] {
        let fp = headline_smoke_fingerprint_at(threads);
        assert_eq!(
            fp,
            expected,
            "{threads}-thread headline run drifted from golden:\n{}\n\
             (if the behaviour change is intentional, bless with \
             UPDATE_GOLDEN=1 cargo test --test golden_headline)",
            expected.diff(&fp).join("\n")
        );
    }
}

#[test]
fn fingerprint_is_run_to_run_stable() {
    let a = headline_smoke_fingerprint();
    let b = headline_smoke_fingerprint();
    assert_eq!(a, b);
    assert_eq!(a.to_canonical_json(), b.to_canonical_json());
}
