//! Property-based integration tests: random small scenarios must uphold
//! the simulator's global invariants — no panics, conserved counters,
//! bit-exact determinism.

use proptest::prelude::*;
use sdsrp::core::geometry::Rect;
use sdsrp::core::time::SimDuration;
use sdsrp::core::units::Bytes;
use sdsrp::mobility::random_waypoint::RandomWaypointConfig;
use sdsrp::mobility::MobilityConfig;
use sdsrp::net::LinkConfig;
use sdsrp::sim::config::{PolicyKind, RoutingKind, ScenarioConfig};
use sdsrp::sim::world::World;

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Fifo),
        Just(PolicyKind::Lifo),
        Just(PolicyKind::TtlRatio),
        Just(PolicyKind::CopiesRatio),
        Just(PolicyKind::Mofo),
        Just(PolicyKind::Shli),
        Just(PolicyKind::Random),
        Just(PolicyKind::Sdsrp),
        Just(PolicyKind::Knapsack),
    ]
}

fn immunity_strategy() -> impl Strategy<Value = sdsrp::sim::config::ImmunityMode> {
    use sdsrp::sim::config::ImmunityMode;
    prop_oneof![
        Just(ImmunityMode::None),
        Just(ImmunityMode::OracleFlood),
        Just(ImmunityMode::AntipacketGossip),
    ]
}

fn routing_strategy() -> impl Strategy<Value = RoutingKind> {
    prop_oneof![
        Just(RoutingKind::SprayAndWaitBinary),
        Just(RoutingKind::SprayAndWaitSource),
        Just(RoutingKind::Epidemic),
        Just(RoutingKind::Direct),
        Just(RoutingKind::SprayAndFocus {
            handoff_threshold: 30.0
        }),
    ]
}

fn scenario_strategy() -> impl Strategy<Value = ScenarioConfig> {
    (
        4usize..16,      // nodes
        300.0f64..900.0, // duration
        policy_strategy(),
        routing_strategy(),
        1u32..24,     // initial copies
        1u64..1000,   // seed
        1.0f64..4.0,  // buffer MB
        4.0f64..40.0, // gen interval lo
        immunity_strategy(),
    )
        .prop_map(
            |(n, duration, policy, routing, copies, seed, buffer_mb, gen_lo, immunity)| {
                ScenarioConfig {
                    name: "prop".into(),
                    n_nodes: n,
                    duration_secs: duration,
                    tick_secs: 1.0,
                    mobility: MobilityConfig::RandomWaypoint(RandomWaypointConfig {
                        area: Rect::from_size(800.0, 600.0),
                        min_speed: 1.0,
                        max_speed: 3.0,
                        min_pause: 0.0,
                        max_pause: 10.0,
                    }),
                    link: LinkConfig::paper(),
                    buffer_capacity: Bytes::from_mb(buffer_mb),
                    message_size: Bytes::from_mb(0.5),
                    gen_interval: (gen_lo, gen_lo + 5.0),
                    ttl: SimDuration::from_mins(30.0),
                    initial_copies: copies,
                    policy,
                    routing,
                    seed,
                    oracle: false,
                    immunity,
                    message_size_max: Some(Bytes::from_mb(0.8)),
                    traffic: Default::default(),
                    warmup_secs: 0.0,
                }
            },
        )
}

proptest! {
    // Each case is a full (small) simulation: keep the count modest.
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_scenarios_uphold_invariants(cfg in scenario_strategy()) {
        let r = World::build(&cfg).run();
        prop_assert!(r.delivered() <= r.created());
        prop_assert!(r.delivered_events() >= r.delivered());
        prop_assert!(r.transmissions() >= r.delivered_events());
        prop_assert!((0.0..=1.0).contains(&r.delivery_ratio()));
        prop_assert!(r.overhead_ratio() >= 0.0);
        if r.delivered() > 0 {
            prop_assert!(r.avg_hopcount() >= 1.0);
        }
    }

    #[test]
    fn random_scenarios_are_deterministic(cfg in scenario_strategy()) {
        let a = World::build(&cfg).run();
        let b = World::build(&cfg).run();
        prop_assert_eq!(a.created(), b.created());
        prop_assert_eq!(a.delivered(), b.delivered());
        prop_assert_eq!(a.transmissions(), b.transmissions());
        prop_assert_eq!(a.buffer_drops(), b.buffer_drops());
    }
}
