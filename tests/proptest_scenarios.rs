//! Property-based integration tests: random small scenarios must uphold
//! the simulator's global invariants — no panics, conserved counters,
//! bit-exact determinism.

use proptest::prelude::*;
use sdsrp::sim::config::ScenarioConfig;
use sdsrp::sim::scenario_gen::random_scenario;
use sdsrp::sim::world::World;

/// Scenarios come from the shared seeded generator (the same one the
/// `dtn-fuzz` nightly uses): proptest explores the generator's `u64`
/// seed space, and any failure replays from that seed alone via
/// `dtn-fuzz --cells 1 --seed N`.
fn scenario_strategy() -> impl Strategy<Value = ScenarioConfig> {
    (0u64..1_000_000).prop_map(random_scenario)
}

proptest! {
    // Each case is a full (small) simulation: keep the count modest.
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_scenarios_uphold_invariants(cfg in scenario_strategy()) {
        let r = World::build(&cfg).run();
        prop_assert!(r.delivered() <= r.created());
        prop_assert!(r.delivered_events() >= r.delivered());
        prop_assert!(r.transmissions() >= r.delivered_events());
        prop_assert!((0.0..=1.0).contains(&r.delivery_ratio()));
        prop_assert!(r.overhead_ratio() >= 0.0);
        if r.delivered() > 0 {
            prop_assert!(r.avg_hopcount() >= 1.0);
        }
    }

    #[test]
    fn random_scenarios_are_deterministic(cfg in scenario_strategy()) {
        let a = World::build(&cfg).run();
        let b = World::build(&cfg).run();
        prop_assert_eq!(a.created(), b.created());
        prop_assert_eq!(a.delivered(), b.delivered());
        prop_assert_eq!(a.transmissions(), b.transmissions());
        prop_assert_eq!(a.buffer_drops(), b.buffer_drops());
    }

    #[test]
    fn random_scenarios_pass_invariant_checking(cfg in scenario_strategy()) {
        // The dtn-validate checkers re-derive world state independently;
        // a violation on any random scenario is a simulator bug.
        let mut world = World::build(&cfg);
        world.enable_validation(sdsrp::validate::ValidateConfig::default());
        let (_report, validation, _rec) = world.run_validated();
        prop_assert!(
            validation.ok(),
            "invariant violations:\n{}", validation.summary()
        );
        prop_assert!(validation.sweeps > 0);
    }
}

// ---------------------------------------------------------------------
// Eq. 10 priority-shape properties
//
// The paper's U_i = (1-P(T)) λ A e^{-λ n A} is NOT monotone in the
// remaining TTL R: it rises while the exposure A(R) is short of the
// optimum 1/(λ n) (peak at P(R) = 1 - 1/e) and falls beyond it. A(R) =
// (l+1) R - corr with l = log2(C) and corr = l(l+1)/(2(N-1)λ), so the
// analytic peak sits at R* = (1/(λ n) + corr)/(l+1).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn priority_is_unimodal_in_remaining_ttl(
        n_nodes in 3usize..200,
        lambda_inv in 100.0f64..10_000.0, // E(I) seconds
        holders in 1u32..64,
        copies in 1u32..128,
    ) {
        use sdsrp::sdsrp::priority::log2_copies;
        use sdsrp::sdsrp::PriorityModel;

        let m = PriorityModel::new(n_nodes, 1.0 / lambda_inv);
        let l = log2_copies(copies);
        let corr = l * (l + 1.0) / (2.0 * (n_nodes as f64 - 1.0) * m.lambda);
        // A(R*) = 1/(λ n) maximises a e^{-λ n a}; invert A to get R*.
        let r_star = (1.0 / (m.lambda * holders as f64) + corr) / (l + 1.0);
        let r_zero = corr / (l + 1.0); // A(R) = 0 below this

        // Strictly increasing on (r_zero, r_star].
        let lo = r_zero + 1e-6 * r_star.max(1.0);
        let mut last = f64::NEG_INFINITY;
        for k in 0..=20 {
            let r = lo + (r_star - lo) * k as f64 / 20.0;
            let u = m.log_priority(0, holders, copies, r);
            prop_assert!(!u.is_nan());
            prop_assert!(u >= last - 1e-9, "not increasing below peak at R={r}");
            last = u;
        }
        // Strictly decreasing on [r_star, 10 r_star].
        let mut last = f64::INFINITY;
        for k in 0..=20 {
            let r = r_star * (1.0 + 9.0 * k as f64 / 20.0);
            let u = m.log_priority(0, holders, copies, r);
            prop_assert!(!u.is_nan());
            prop_assert!(u <= last + 1e-9, "not decreasing above peak at R={r}");
            last = u;
        }
        // The analytic peak beats both flanks outright.
        let u_peak = m.log_priority(0, holders, copies, r_star);
        prop_assert!(u_peak >= m.log_priority(0, holders, copies, r_star * 0.5) - 1e-9);
        prop_assert!(u_peak >= m.log_priority(0, holders, copies, r_star * 2.0) - 1e-9);
    }

    #[test]
    fn priority_is_nonincreasing_in_seen(
        n_nodes in 3usize..200,
        lambda_inv in 100.0f64..10_000.0,
        holders in 1u32..64,
        copies in 1u32..128,
        ttl in 1.0f64..50_000.0,
    ) {
        let m = sdsrp::sdsrp::PriorityModel::new(n_nodes, 1.0 / lambda_inv);
        let mut last = f64::INFINITY;
        for seen in 0..n_nodes as u32 {
            let u = m.log_priority(seen, holders, copies, ttl);
            prop_assert!(!u.is_nan());
            prop_assert!(u <= last + 1e-9, "priority rose at m_i={seen}");
            last = u;
        }
        // Seen by everyone -> no residual utility at all.
        prop_assert_eq!(
            m.log_priority(n_nodes as u32 - 1, holders, copies, ttl),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn priority_is_finite_and_nonnegative_everywhere(
        n_nodes in 3usize..200,
        lambda_inv in 100.0f64..10_000.0,
        seen in 0u32..256,
        holders in 0u32..256,
        copies in 1u32..256,
        ttl in 0.0f64..100_000.0,
    ) {
        let m = sdsrp::sdsrp::PriorityModel::new(n_nodes, 1.0 / lambda_inv);
        let u = m.priority(seen, holders, copies, ttl);
        prop_assert!(u.is_finite());
        prop_assert!(u >= 0.0);
        // The log form may be -inf (zero utility) but never NaN.
        prop_assert!(!m.log_priority(seen, holders, copies, ttl).is_nan());
    }
}
