//! Thread-count differential battery: the parallel world core must be
//! invisible in results. Every scenario class the simulator models —
//! the headline smoke configuration, the paper's buffer-pressure
//! regime, and fault/churn injection — is run at 1, 2, 4 and 8 intra-
//! run threads and the integer run fingerprints (report counters +
//! full `SimEvent` totals) must agree bit-for-bit.
//!
//! The property section drives the same guarantee across the random
//! scenario space: phase-decomposed parallel stepping must produce
//! byte-identical event totals and equal `ValidationReport`s vs the
//! serial path, and link-table iteration order must be a function of
//! the link *set*, never of insertion history.

use proptest::prelude::*;
use sdsrp::core::ids::{NodeId, NodePair};
use sdsrp::sim::config::{presets, FaultPlan, PolicyKind, ScenarioConfig};
use sdsrp::sim::replay::{differential_world_threads, fingerprint_at_threads};
use sdsrp::sim::scenario_gen::{random_fault_plan, random_scenario};
use sdsrp::sim::world::World;
use sdsrp::validate::ValidateConfig;
use std::collections::BTreeMap;

const THREAD_BATTERY: &[usize] = &[1, 2, 4, 8];

/// The pinned golden scenario, shortened so the battery's four runs
/// stay inside tier-1 budget (the full-length threaded check lives in
/// `golden_headline.rs`).
fn headline_short() -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 42;
    cfg.duration_secs = 1_200.0;
    cfg
}

/// The paper's small-buffer congestion regime: eviction ranking and
/// incoming rejection dominate, exercising the admission paths under
/// parallel contact detection.
fn buffer_pressure() -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.name = "buffer-pressure".into();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 42;
    cfg.n_nodes = 60;
    cfg.duration_secs = 900.0;
    cfg.gen_interval = (8.0, 12.0);
    cfg.buffer_capacity = sdsrp::core::units::Bytes::new(1_500_000);
    cfg
}

/// Heavy churn: crashes, blackouts, injected aborts and clock skew all
/// active. The hardest case for the parallel movement phase, which must
/// keep per-node RNG streams on schedule through sentinel parking.
fn fault_churn() -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.name = "fault-churn".into();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 13;
    cfg.duration_secs = 1_200.0;
    cfg.faults = FaultPlan {
        crash_rate_per_hour: 3.0,
        reboot_secs: 120.0,
        blackout_rate_per_hour: 3.0,
        blackout_secs: 60.0,
        transfer_abort_prob: 0.05,
        clock_skew_max_secs: 2.0,
    };
    cfg
}

#[test]
fn headline_fingerprint_is_thread_count_invariant() {
    let diffs = differential_world_threads(&headline_short(), THREAD_BATTERY);
    assert!(diffs.is_empty(), "headline diverged:\n{}", diffs.join("\n"));
}

#[test]
fn buffer_pressure_fingerprint_is_thread_count_invariant() {
    let diffs = differential_world_threads(&buffer_pressure(), THREAD_BATTERY);
    assert!(
        diffs.is_empty(),
        "buffer-pressure diverged:\n{}",
        diffs.join("\n")
    );
}

#[test]
fn fault_churn_fingerprint_is_thread_count_invariant() {
    let diffs = differential_world_threads(&fault_churn(), THREAD_BATTERY);
    assert!(
        diffs.is_empty(),
        "fault/churn diverged:\n{}",
        diffs.join("\n")
    );
}

/// The battery scenarios must actually exercise what they claim: the
/// fault run injects churn, the pressure run drops messages.
#[test]
fn battery_scenarios_are_not_vacuous() {
    let pressure = fingerprint_at_threads(&buffer_pressure(), 2);
    assert!(
        pressure.buffer_drops + pressure.incoming_rejects > 0,
        "buffer-pressure scenario never hit buffer pressure"
    );
    let churn = fingerprint_at_threads(&fault_churn(), 2);
    assert!(
        churn.events.node_crashes > 0,
        "fault scenario never crashed a node"
    );
    assert!(
        churn.events.blackouts > 0,
        "fault scenario never blacked out a radio"
    );
}

proptest! {
    // Each case is 2 (or 3) full small simulations: keep the count low.
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// Random small scenarios (the shared `dtn-fuzz` generator space):
    /// phase-decomposed parallel stepping is byte-identical to the
    /// serial path — same report counters, same `SimEvent` totals.
    #[test]
    fn random_scenarios_are_thread_count_invariant(seed in 0u64..1_000_000) {
        let cfg = random_scenario(seed);
        let serial = fingerprint_at_threads(&cfg, 1);
        let parallel = fingerprint_at_threads(&cfg, 4);
        prop_assert_eq!(serial.to_canonical_json(), parallel.to_canonical_json());
    }

    /// Same guarantee under full invariant checking with fault churn:
    /// the `ValidationReport`s (violations, fault ledger, estimator
    /// error statistics — float-accumulated in sweep order) are equal.
    #[test]
    fn random_fault_scenarios_validate_identically(seed in 0u64..1_000_000) {
        let mut cfg = random_scenario(seed);
        cfg.faults = random_fault_plan(seed);
        let run = |threads: usize| {
            let mut world = World::build(&cfg);
            world.set_threads(threads);
            world.enable_validation(ValidateConfig::default());
            let (report, validation, recorder) = world.run_validated();
            let fp = sdsrp::sim::replay::fingerprint(&report, recorder.totals());
            (fp, validation)
        };
        let (fp_serial, val_serial) = run(1);
        let (fp_parallel, val_parallel) = run(4);
        prop_assert!(
            val_serial.ok(),
            "serial run violated invariants:\n{}", val_serial.summary()
        );
        prop_assert_eq!(fp_serial, fp_parallel);
        prop_assert_eq!(val_serial, val_parallel);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// The link table's iteration order — which decides same-instant
    /// transfer scheduling in `rearm_idle_links` — must be a pure
    /// function of the pair *set*. Build the world's link structure
    /// from the same pairs in two different insertion orders (the
    /// histories two different thread schedules could produce) and
    /// assert identical, sorted walks.
    #[test]
    fn link_table_order_is_insertion_invariant(
        raw in prop::collection::vec((0u32..50, 0u32..50), 1..40),
        rotate in 0usize..40,
    ) {
        let pairs: Vec<NodePair> = raw
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| NodePair::new(NodeId(a), NodeId(b)))
            .collect();
        if pairs.is_empty() {
            // Degenerate draw (all self-pairs); nothing to check.
            return Ok(());
        }

        let mut permuted = pairs.clone();
        let rot = rotate % permuted.len();
        permuted.rotate_left(rot);
        permuted.reverse();

        let table_a: BTreeMap<NodePair, ()> = pairs.iter().map(|&p| (p, ())).collect();
        let table_b: BTreeMap<NodePair, ()> = permuted.iter().map(|&p| (p, ())).collect();

        let walk_a: Vec<NodePair> = table_a.keys().copied().collect();
        let walk_b: Vec<NodePair> = table_b.keys().copied().collect();
        prop_assert_eq!(&walk_a, &walk_b);
        prop_assert!(
            walk_a.windows(2).all(|w| w[0] < w[1]),
            "walk is not strictly sorted"
        );
    }
}
