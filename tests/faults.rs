//! Integration tests for the fault-injection subsystem: determinism of
//! faulted runs, bit-identity of fault-free runs, fault telemetry, and
//! invariant preservation under churn (conservation modulo the fault
//! ledger).

use sdsrp::sim::config::{presets, FaultPlan, PolicyKind, ScenarioConfig};
use sdsrp::sim::replay::fingerprint;
use sdsrp::sim::world::World;
use sdsrp::telemetry::{EventTotals, Recorder, SimEvent};
use sdsrp::validate::{ReportFingerprint, ValidateConfig};

fn base_scenario(seed: u64) -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.n_nodes = 20;
    cfg.duration_secs = 1200.0;
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = seed;
    cfg
}

fn full_plan() -> FaultPlan {
    FaultPlan {
        crash_rate_per_hour: 3.0,
        reboot_secs: 60.0,
        blackout_rate_per_hour: 4.0,
        blackout_secs: 30.0,
        transfer_abort_prob: 0.05,
        clock_skew_max_secs: 10.0,
    }
}

fn run_fingerprint(cfg: &ScenarioConfig) -> (ReportFingerprint, EventTotals) {
    let mut world = World::build(cfg);
    world.attach_recorder(Recorder::enabled(4096));
    let (report, recorder) = world.run_with_recorder();
    (
        fingerprint(&report, recorder.totals()),
        recorder.totals().clone(),
    )
}

#[test]
fn same_seed_and_plan_is_bit_identical() {
    let mut cfg = base_scenario(42);
    cfg.faults = full_plan();
    let (fp1, _) = run_fingerprint(&cfg);
    let (fp2, _) = run_fingerprint(&cfg);
    assert_eq!(fp1, fp2, "faulted runs must replay bit-identically");
}

#[test]
fn empty_plan_emits_no_fault_events_and_changes_nothing() {
    let cfg = base_scenario(42);
    assert!(cfg.faults.is_empty());
    let (fp_default, totals) = run_fingerprint(&cfg);
    assert_eq!(totals.node_crashes, 0);
    assert_eq!(totals.node_reboots, 0);
    assert_eq!(totals.blackouts, 0);
    assert_eq!(totals.blackout_ends, 0);
    assert_eq!(totals.fault_aborts, 0);
    assert_eq!(totals.crash_wiped_copies, 0);

    // A config whose JSON predates the faults field deserializes to the
    // same scenario and reproduces the same run.
    let json = serde_json::to_string(&cfg).unwrap();
    assert!(json.contains("\"faults\""));
    let stripped = {
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        match &mut v {
            serde_json::Value::Object(fields) => fields.retain(|(k, _)| k != "faults"),
            _ => panic!("config serialises as an object"),
        }
        serde_json::to_string(&v).unwrap()
    };
    let old: ScenarioConfig = serde_json::from_str(&stripped).unwrap();
    assert_eq!(old, cfg);
    let (fp_old, _) = run_fingerprint(&old);
    assert_eq!(fp_old, fp_default);
}

#[test]
fn faults_actually_perturb_the_run_and_emit_events() {
    let clean = base_scenario(42);
    let mut churned = clean.clone();
    churned.faults = full_plan();
    let (fp_clean, _) = run_fingerprint(&clean);
    let (fp_churned, totals) = run_fingerprint(&churned);
    assert_ne!(fp_clean, fp_churned, "the fault plan had no effect");
    assert!(totals.node_crashes > 0, "no crashes fired");
    assert!(totals.node_reboots > 0, "no reboots fired");
    assert!(totals.blackouts > 0, "no blackouts fired");
    assert!(totals.fault_aborts > 0, "no aborts fired");
}

#[test]
fn each_fault_feature_alone_perturbs_the_run() {
    let clean = base_scenario(7);
    let (fp_clean, _) = run_fingerprint(&clean);
    let single_feature_plans = [
        FaultPlan {
            crash_rate_per_hour: 4.0,
            reboot_secs: 60.0,
            ..FaultPlan::default()
        },
        FaultPlan {
            blackout_rate_per_hour: 6.0,
            blackout_secs: 45.0,
            ..FaultPlan::default()
        },
        FaultPlan {
            transfer_abort_prob: 0.2,
            ..FaultPlan::default()
        },
        FaultPlan {
            clock_skew_max_secs: 45.0,
            ..FaultPlan::default()
        },
    ];
    for plan in single_feature_plans {
        let mut cfg = clean.clone();
        cfg.faults = plan.clone();
        let (fp, _) = run_fingerprint(&cfg);
        assert_ne!(fp, fp_clean, "plan {} had no effect", plan.label());
    }
}

#[test]
fn fault_events_appear_in_the_event_ring() {
    let mut cfg = base_scenario(42);
    cfg.faults = full_plan();
    let mut world = World::build(&cfg);
    world.attach_recorder(Recorder::enabled(100_000));
    let (_report, recorder) = world.run_with_recorder();
    let events: Vec<SimEvent> = recorder.ring().iter().cloned().collect();
    let has = |pred: &dyn Fn(&SimEvent) -> bool| events.iter().any(pred);
    assert!(has(&|e| matches!(e, SimEvent::NodeCrashed { .. })));
    assert!(has(&|e| matches!(e, SimEvent::NodeRebooted { .. })));
    assert!(has(&|e| matches!(e, SimEvent::BlackoutStarted { .. })));
    assert!(has(&|e| matches!(e, SimEvent::BlackoutEnded { .. })));
    assert!(has(&|e| matches!(e, SimEvent::TransferAborted { .. })));
    // Reboots never precede their crash, blackout ends never precede
    // their start (per node).
    let mut down = vec![0i64; cfg.n_nodes];
    for e in &events {
        match e {
            SimEvent::NodeCrashed { node, .. } | SimEvent::BlackoutStarted { node, .. } => {
                down[*node as usize] += 1;
            }
            SimEvent::NodeRebooted { node, .. } | SimEvent::BlackoutEnded { node, .. } => {
                down[*node as usize] -= 1;
                assert!(down[*node as usize] >= 0, "recovery before outage");
            }
            _ => {}
        }
    }
}

#[test]
fn invariants_hold_under_crash_blackout_grid() {
    // The headline guarantee: copy conservation and gossip soundness
    // become "conservation modulo recorded faults" — a validated run
    // under any mix of churn must report zero violations, with the
    // destroyed tokens accounted in the fault ledger.
    for policy in [PolicyKind::Sdsrp, PolicyKind::Fifo] {
        for (crash, blackout) in [(0.0, 6.0), (4.0, 0.0), (3.0, 3.0)] {
            let mut cfg = base_scenario(11);
            cfg.policy = policy;
            cfg.faults = FaultPlan {
                crash_rate_per_hour: crash,
                reboot_secs: 45.0,
                blackout_rate_per_hour: blackout,
                blackout_secs: 30.0,
                transfer_abort_prob: 0.1,
                clock_skew_max_secs: 5.0,
            };
            let mut world = World::build(&cfg);
            world.attach_recorder(Recorder::enabled(1024));
            world.enable_validation(ValidateConfig::default());
            let (_report, validation, recorder) = world.run_validated();
            assert!(
                validation.ok(),
                "{:?} crash={crash} blackout={blackout}: {}",
                policy,
                validation.summary()
            );
            // The ledger agrees with the emitted fault telemetry.
            let totals = recorder.totals();
            assert_eq!(validation.faults.crashes, totals.node_crashes);
            assert_eq!(validation.faults.blackouts, totals.blackouts);
            assert_eq!(validation.faults.aborted_transfers, totals.fault_aborts);
            assert_eq!(validation.faults.wiped_copies, totals.crash_wiped_copies);
            if crash > 0.0 {
                assert!(validation.faults.crashes > 0, "no crashes fired");
            }
            if blackout > 0.0 {
                assert!(validation.faults.blackouts > 0, "no blackouts fired");
            }
        }
    }
}

#[test]
fn crashed_nodes_go_dark_and_rejoin() {
    use sdsrp::core::ids::NodeId;
    // One node, crash rate high enough to fire within the horizon.
    let mut cfg = base_scenario(3);
    cfg.faults.crash_rate_per_hour = 30.0;
    cfg.faults.reboot_secs = 50.0;
    let mut world = World::build(&cfg);
    let mut was_down = vec![false; cfg.n_nodes];
    let mut saw_recovery = false;
    let end = cfg.duration_secs;
    let mut t = 0.0;
    while t < end {
        t += 5.0;
        world.step_until(sdsrp::core::time::SimTime::from_secs(t));
        for (i, down_before) in was_down.iter_mut().enumerate() {
            let down = world.node_is_down(NodeId(i as u32));
            if down {
                *down_before = true;
            } else if *down_before {
                saw_recovery = true;
            }
        }
    }
    assert!(
        was_down.iter().any(|&d| d),
        "no node ever went down at 30 crashes/node-hour"
    );
    assert!(saw_recovery, "no node ever rebooted");
}
