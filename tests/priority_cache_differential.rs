//! Differential regression suite for the SDSRP priority memo cache.
//!
//! The cache (`sdsrp_core::policy`, "Priority memoisation") is a pure
//! optimisation: its hits must return the exact f64 a recompute would
//! produce, so every observable of a run — the integer
//! `ReportFingerprint` included — must be bit-identical with the cache
//! on (the default) and off (the `--no-priority-cache` reference path,
//! i.e. the pre-optimisation per-contact recompute algorithm). This
//! suite enforces that across the pinned golden scenarios and a seeded
//! batch from the fuzz scenario generator.

use sdsrp::sim::config::{presets, PolicyKind, ScenarioConfig};
use sdsrp::sim::replay::fingerprint;
use sdsrp::sim::scenario_gen::random_scenario;
use sdsrp::sim::world::World;
use sdsrp::telemetry::Recorder;

/// Runs `cfg` to completion with the cache toggled and returns the
/// canonical fingerprint rendering plus the cache counters.
fn run_fingerprint(
    cfg: &ScenarioConfig,
    cache: bool,
) -> (String, sdsrp::buffer::policy::PriorityCacheStats) {
    let mut world = World::build(cfg);
    world.set_priority_cache(cache);
    world.attach_recorder(Recorder::enabled(16));
    let probe = world.priority_cache_stats();
    assert_eq!(probe.hits + probe.incremental + probe.misses, 0);
    world.step_until(dtn_core::time::SimTime::from_secs(cfg.duration_secs));
    let stats = world.priority_cache_stats();
    let totals = world.recorder().totals().clone();
    let fp = fingerprint(world.report(), &totals).to_canonical_json();
    (fp, stats)
}

fn assert_cache_invariant(cfg: &ScenarioConfig) {
    let (cached, stats) = run_fingerprint(cfg, true);
    let (uncached, uncached_stats) = run_fingerprint(cfg, false);
    assert_eq!(
        cached, uncached,
        "{}: fingerprint diverged between cached and uncached priority paths",
        cfg.name
    );
    // The reference path bypasses the cache entirely: no bucket — hit,
    // incremental or miss — may move.
    assert_eq!(
        uncached_stats.hits + uncached_stats.incremental + uncached_stats.misses,
        0,
        "{}: disabled cache must count nothing",
        cfg.name
    );
    // SDSRP runs should actually exercise the cache, otherwise this
    // suite silently stops testing anything. Time advances between
    // rankings, so the incremental (cross-instant) path must fire too.
    if cfg.policy == PolicyKind::Sdsrp {
        assert!(
            stats.hits > 0,
            "{}: SDSRP run produced no cache hits",
            cfg.name
        );
        assert!(
            stats.incremental > 0,
            "{}: SDSRP run never took the incremental path",
            cfg.name
        );
    }
}

/// The pinned golden scenario (see `tests/golden_headline.rs`): the
/// cached path must reproduce the committed snapshot, not merely agree
/// with the uncached path.
#[test]
fn golden_headline_is_cache_invariant_and_matches_snapshot() {
    let mut cfg = presets::smoke();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 42;
    cfg.duration_secs = 3_600.0;
    assert_cache_invariant(&cfg);

    let (cached, _) = run_fingerprint(&cfg, true);
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/headline_smoke.json");
    let committed = std::fs::read_to_string(&golden).expect("golden snapshot exists");
    assert_eq!(
        cached, committed,
        "cached run drifted from the committed golden snapshot"
    );
}

/// The paper's Table II scenario, shortened to test length.
#[test]
fn paper_preset_is_cache_invariant() {
    let mut cfg = presets::random_waypoint_paper();
    cfg.duration_secs = 1_800.0;
    cfg.seed = 7;
    assert_cache_invariant(&cfg);
}

/// A buffer-pressure variant where eviction ranking (keep_priority on
/// every resident, per admission) dominates — the regime the cache and
/// the lazy eviction heap were built for.
#[test]
fn buffer_pressure_is_cache_invariant() {
    let mut cfg = presets::smoke();
    cfg.name = "pressure-diff".into();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.n_nodes = 60;
    cfg.duration_secs = 1_500.0;
    cfg.gen_interval = (8.0, 12.0);
    cfg.buffer_capacity = sdsrp::core::units::Bytes::new(1_500_000);
    cfg.seed = 3;
    assert_cache_invariant(&cfg);
}

/// Seeded batch from the fuzz generator: random policies, routings and
/// immunity modes. Non-SDSRP policies have no cache, so this doubles as
/// a check that `set_priority_cache(false)` is harmless on them.
#[test]
fn scenario_gen_batch_is_cache_invariant() {
    for seed in 0..12u64 {
        let cfg = random_scenario(seed);
        assert_cache_invariant(&cfg);
    }
}

/// A couple of explicitly-SDSRP fuzz scenarios so the batch always
/// exercises the cached policy regardless of what the pool draws.
#[test]
fn scenario_gen_sdsrp_batch_is_cache_invariant() {
    for seed in 0..6u64 {
        let mut cfg = random_scenario(seed);
        cfg.policy = PolicyKind::Sdsrp;
        cfg.name = format!("fuzz-sdsrp-{seed}");
        assert_cache_invariant(&cfg);
    }
}

/// Fault churn (crashes, blackouts, aborted transfers) exercises the
/// cache's hardest invalidation paths: `on_node_reset` wholesale
/// wipes, gossip records that restart after a crash, and contacts that
/// tear down mid-transfer. The cached and reference paths must still
/// agree bit-for-bit.
#[test]
fn fault_churn_is_cache_invariant() {
    let mut cfg = presets::smoke();
    cfg.name = "churn-diff".into();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.duration_secs = 1_800.0;
    cfg.seed = 11;
    cfg.faults.crash_rate_per_hour = 2.0;
    cfg.faults.reboot_secs = 60.0;
    cfg.faults.blackout_rate_per_hour = 3.0;
    cfg.faults.blackout_secs = 30.0;
    cfg.faults.transfer_abort_prob = 0.1;
    cfg.validate();
    assert_cache_invariant(&cfg);

    // And a couple of generator-drawn plans, so the shape of the churn
    // isn't hand-picked.
    for seed in 0..3u64 {
        let mut cfg = presets::smoke();
        cfg.name = format!("churn-diff-gen-{seed}");
        cfg.policy = PolicyKind::Sdsrp;
        cfg.duration_secs = 1_200.0;
        cfg.seed = 100 + seed;
        cfg.faults = sdsrp::sim::scenario_gen::random_fault_plan(seed);
        assert_cache_invariant(&cfg);
    }
}

/// The Eq. 13 Taylor fast path is an *approximation*, so it is not
/// expected to match the exact fingerprint — but it must be (a)
/// deterministic run-to-run and (b) cache-invariant like every other
/// mode: the memo may never change what the truncated series computes.
#[test]
fn taylor_mode_is_deterministic_and_cache_invariant() {
    let mut cfg = presets::smoke();
    cfg.name = "taylor-diff".into();
    cfg.policy = PolicyKind::SdsrpCustom {
        lambda: sdsrp::sdsrp::LambdaMode::Online {
            prior: 1.0 / 2000.0,
            min_samples: 5,
        },
        taylor_terms: Some(8),
        reject_dropped: true,
        gossip: true,
    };
    cfg.duration_secs = 1_800.0;
    cfg.seed = 42;
    cfg.validate();

    let (first, stats) = run_fingerprint(&cfg, true);
    let (second, _) = run_fingerprint(&cfg, true);
    assert_eq!(first, second, "Taylor run is not deterministic");
    assert!(
        stats.hits + stats.incremental > 0,
        "Taylor run never used the cache"
    );
    assert_cache_invariant(&cfg);
}

/// Ranks `msgs` by `send_priority` under the given priority mode and
/// returns the message ids best-first. λ is pinned via `Oracle` so the
/// two modes see identical inputs.
fn ranking(
    mode: sdsrp::sdsrp::PriorityMode,
    msgs: &[sdsrp::buffer::view::TestMessage],
) -> Vec<u64> {
    use sdsrp::buffer::policy::BufferPolicy;
    let mut policy = sdsrp::sdsrp::Sdsrp::new(
        sdsrp::core::ids::NodeId(99),
        sdsrp::sdsrp::SdsrpConfig {
            n_nodes: 64,
            lambda: sdsrp::sdsrp::LambdaMode::Oracle(1.0 / 2000.0),
            mode,
            reject_dropped: true,
            gossip: true,
        },
    );
    let now = dtn_core::time::SimTime::from_secs(600.0);
    let mut scored: Vec<(u64, f64)> = msgs
        .iter()
        .map(|m| (m.id.0, policy.send_priority(now, &m.view())))
        .collect();
    // Best (highest utility) first; ties broken by id for stability.
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.into_iter().map(|(id, _)| id).collect()
}

/// Counts pairs ordered differently by the two rankings.
fn rank_inversions(a: &[u64], b: &[u64]) -> usize {
    let pos: std::collections::HashMap<u64, usize> =
        b.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut inversions = 0;
    for i in 0..a.len() {
        for j in (i + 1)..a.len() {
            if pos[&a[i]] > pos[&a[j]] {
                inversions += 1;
            }
        }
    }
    inversions
}

/// Fig. 4's qualitative claim, as a regression test: the Taylor
/// truncation converges on the exact Eq. 10 ranking as terms grow. A
/// deep truncation (k = 8) must agree with the exact closed form up to
/// a small rank-inversion tolerance, and must never be further from it
/// than the crudest truncation (k = 1).
#[test]
fn taylor_ranking_converges_to_exact() {
    use sdsrp::buffer::view::TestMessage;
    use sdsrp::sdsrp::PriorityMode;

    // A diverse buffer: spread TTLs, copy counts and (oracle-pinned)
    // seen/holder counts so the priorities span several regimes of
    // Eq. 10 rather than clustering where any truncation looks exact.
    let mut msgs = Vec::new();
    for i in 0..36u64 {
        let mut m = TestMessage::sample(i);
        m.remaining_ttl = dtn_core::time::SimDuration::from_mins(10.0 + 8.0 * i as f64);
        m.copies = 1 + (i % 12) as u32;
        m.initial_copies = 32;
        m.oracle_seen = Some(1 + (i * 7 % 40) as u32);
        m.oracle_holders = Some(1 + (i * 3 % 10) as u32);
        msgs.push(m);
    }

    let exact = ranking(PriorityMode::Exact, &msgs);
    let deep = ranking(PriorityMode::Taylor { terms: 8 }, &msgs);
    let shallow = ranking(PriorityMode::Taylor { terms: 1 }, &msgs);

    let pairs = msgs.len() * (msgs.len() - 1) / 2;
    let deep_inv = rank_inversions(&exact, &deep);
    let shallow_inv = rank_inversions(&exact, &shallow);

    assert!(
        deep_inv <= shallow_inv,
        "k=8 ({deep_inv} inversions) ranked further from exact than k=1 ({shallow_inv})"
    );
    assert!(
        deep_inv * 10 <= pairs,
        "k=8 disagrees with exact on {deep_inv}/{pairs} pairs (> 10% tolerance)"
    );
}
