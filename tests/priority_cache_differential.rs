//! Differential regression suite for the SDSRP priority memo cache.
//!
//! The cache (`sdsrp_core::policy`, "Priority memoisation") is a pure
//! optimisation: its hits must return the exact f64 a recompute would
//! produce, so every observable of a run — the integer
//! `ReportFingerprint` included — must be bit-identical with the cache
//! on (the default) and off (the `--no-priority-cache` reference path,
//! i.e. the pre-optimisation per-contact recompute algorithm). This
//! suite enforces that across the pinned golden scenarios and a seeded
//! batch from the fuzz scenario generator.

use sdsrp::sim::config::{presets, PolicyKind, ScenarioConfig};
use sdsrp::sim::replay::fingerprint;
use sdsrp::sim::scenario_gen::random_scenario;
use sdsrp::sim::world::World;
use sdsrp::telemetry::Recorder;

/// Runs `cfg` to completion with the cache toggled and returns the
/// canonical fingerprint rendering plus the cache hit count.
fn run_fingerprint(cfg: &ScenarioConfig, cache: bool) -> (String, u64) {
    let mut world = World::build(cfg);
    world.set_priority_cache(cache);
    world.attach_recorder(Recorder::enabled(16));
    let stats_probe = world.priority_cache_stats();
    assert_eq!(stats_probe.hits + stats_probe.misses, 0);
    world.step_until(dtn_core::time::SimTime::from_secs(cfg.duration_secs));
    let hits = world.priority_cache_stats().hits;
    let totals = world.recorder().totals().clone();
    let fp = fingerprint(world.report(), &totals).to_canonical_json();
    (fp, hits)
}

fn assert_cache_invariant(cfg: &ScenarioConfig) {
    let (cached, hits) = run_fingerprint(cfg, true);
    let (uncached, uncached_hits) = run_fingerprint(cfg, false);
    assert_eq!(
        cached, uncached,
        "{}: fingerprint diverged between cached and uncached priority paths",
        cfg.name
    );
    assert_eq!(
        uncached_hits, 0,
        "{}: disabled cache must never serve hits",
        cfg.name
    );
    // SDSRP runs should actually exercise the cache, otherwise this
    // suite silently stops testing anything.
    if cfg.policy == PolicyKind::Sdsrp {
        assert!(hits > 0, "{}: SDSRP run produced no cache hits", cfg.name);
    }
}

/// The pinned golden scenario (see `tests/golden_headline.rs`): the
/// cached path must reproduce the committed snapshot, not merely agree
/// with the uncached path.
#[test]
fn golden_headline_is_cache_invariant_and_matches_snapshot() {
    let mut cfg = presets::smoke();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 42;
    cfg.duration_secs = 3_600.0;
    assert_cache_invariant(&cfg);

    let (cached, _) = run_fingerprint(&cfg, true);
    let golden =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/headline_smoke.json");
    let committed = std::fs::read_to_string(&golden).expect("golden snapshot exists");
    assert_eq!(
        cached, committed,
        "cached run drifted from the committed golden snapshot"
    );
}

/// The paper's Table II scenario, shortened to test length.
#[test]
fn paper_preset_is_cache_invariant() {
    let mut cfg = presets::random_waypoint_paper();
    cfg.duration_secs = 1_800.0;
    cfg.seed = 7;
    assert_cache_invariant(&cfg);
}

/// A buffer-pressure variant where eviction ranking (keep_priority on
/// every resident, per admission) dominates — the regime the cache and
/// the lazy eviction heap were built for.
#[test]
fn buffer_pressure_is_cache_invariant() {
    let mut cfg = presets::smoke();
    cfg.name = "pressure-diff".into();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.n_nodes = 60;
    cfg.duration_secs = 1_500.0;
    cfg.gen_interval = (8.0, 12.0);
    cfg.buffer_capacity = sdsrp::core::units::Bytes::new(1_500_000);
    cfg.seed = 3;
    assert_cache_invariant(&cfg);
}

/// Seeded batch from the fuzz generator: random policies, routings and
/// immunity modes. Non-SDSRP policies have no cache, so this doubles as
/// a check that `set_priority_cache(false)` is harmless on them.
#[test]
fn scenario_gen_batch_is_cache_invariant() {
    for seed in 0..12u64 {
        let cfg = random_scenario(seed);
        assert_cache_invariant(&cfg);
    }
}

/// A couple of explicitly-SDSRP fuzz scenarios so the batch always
/// exercises the cached policy regardless of what the pool draws.
#[test]
fn scenario_gen_sdsrp_batch_is_cache_invariant() {
    for seed in 0..6u64 {
        let mut cfg = random_scenario(seed);
        cfg.policy = PolicyKind::Sdsrp;
        cfg.name = format!("fuzz-sdsrp-{seed}");
        assert_cache_invariant(&cfg);
    }
}
