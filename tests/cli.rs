//! Integration tests for the `dtn-scenario` command-line runner.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dtn-scenario"))
}

#[test]
fn emit_config_roundtrips_through_a_run() {
    // --emit-config produces JSON that --config accepts.
    let out = bin()
        .args(["--preset", "smoke", "--emit-config"])
        .output()
        .expect("run dtn-scenario");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8 config");
    assert!(json.contains("\"n_nodes\": 40"));

    let dir = std::env::temp_dir().join("sdsrp_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("smoke.json");
    std::fs::write(&path, &json).unwrap();

    let out = bin()
        .args([
            "--config",
            path.to_str().unwrap(),
            "--duration",
            "600",
            "--json",
        ])
        .output()
        .expect("run dtn-scenario from config");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("\"delivery_ratio\""));
    assert!(report.contains("\"created\""));
}

#[test]
fn json_output_is_parseable_and_deterministic() {
    let run = || {
        let out = bin()
            .args([
                "--preset",
                "smoke",
                "--policy",
                "sdsrp",
                "--seed",
                "4",
                "--duration",
                "600",
                "--json",
            ])
            .output()
            .expect("run dtn-scenario");
        assert!(out.status.success());
        let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON report");
        (
            v["created"].as_u64().unwrap(),
            v["delivered"].as_u64().unwrap(),
            v["policy"].as_str().unwrap().to_string(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, different results");
    assert_eq!(a.2, "SDSRP");
}

#[test]
fn unknown_arguments_fail_with_usage() {
    let out = bin().args(["--nonsense"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "no usage text in: {err}");
}

#[test]
fn telemetry_flag_writes_jsonl_and_matching_manifest() {
    let dir = std::env::temp_dir().join("sdsrp_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    let manifest_path = dir.join("events.jsonl.manifest.json");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&manifest_path);

    let out = bin()
        .args([
            "--preset",
            "smoke",
            "--seed",
            "7",
            "--duration",
            "900",
            "--telemetry",
            path.to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("run dtn-scenario");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON report");

    // Every line of the event log is a JSON object with a kind tag.
    let jsonl = std::fs::read_to_string(&path).expect("telemetry file written");
    let mut delivered_lines = 0u64;
    let mut line_count = 0u64;
    for line in jsonl.lines() {
        line_count += 1;
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL line");
        if v["kind"].as_str() == Some("delivered") && v["first"].as_bool() == Some(true) {
            delivered_lines += 1;
        }
    }
    assert!(line_count > 0, "telemetry log is empty");

    // The manifest totals must exactly match the run's report.
    let manifest: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&manifest_path).expect("manifest written"))
            .expect("valid manifest JSON");
    assert_eq!(manifest["delivered"], report["delivered"]);
    assert_eq!(manifest["created"], report["created"]);
    assert_eq!(
        manifest["dropped"].as_u64().unwrap(),
        report["buffer_drops"].as_u64().unwrap() + report["incoming_rejects"].as_u64().unwrap()
    );
    assert_eq!(
        manifest["events"]["delivered_first"].as_u64(),
        report["delivered"].as_u64()
    );
    // The sink saw every event the recorder counted, so the first-
    // delivery lines in the log equal the report's delivered total.
    assert_eq!(delivered_lines, report["delivered"].as_u64().unwrap());
    assert!(manifest["config_hash"].as_str().unwrap().len() == 16);
}

#[test]
fn validate_flag_emits_estimator_metrics_and_replay_reproduces() {
    let dir = std::env::temp_dir().join("sdsrp_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("validated.jsonl");
    let manifest_path = dir.join("validated.jsonl.manifest.json");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&manifest_path);

    let out = bin()
        .args([
            "--preset",
            "smoke",
            "--seed",
            "9",
            "--duration",
            "1200",
            "--validate",
            "--telemetry",
            path.to_str().unwrap(),
            "--json",
        ])
        .output()
        .expect("run dtn-scenario --validate");
    assert!(
        out.status.success(),
        "validated run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("0 violation(s)"),
        "no validation summary on stderr: {stderr}"
    );

    // Estimator-error metrics must surface in the telemetry output.
    let manifest_text = std::fs::read_to_string(&manifest_path).expect("manifest written");
    assert!(
        manifest_text.contains("estimator_m_mean_rel_err"),
        "estimator metrics missing from manifest"
    );
    let manifest: serde_json::Value = serde_json::from_str(&manifest_text).unwrap();
    assert!(
        manifest["events"]["estimator_samples"].as_u64().unwrap() > 0,
        "no estimator_sample events recorded"
    );
    assert_eq!(manifest["events"]["invariant_violations"].as_u64(), Some(0));
    // The event log carries the estimator samples as structured events.
    let jsonl = std::fs::read_to_string(&path).unwrap();
    assert!(
        jsonl
            .lines()
            .filter_map(|l| serde_json::from_str::<serde_json::Value>(l).ok())
            .any(|v| v["kind"].as_str() == Some("estimator_sample")),
        "no estimator_sample events in the JSONL log"
    );

    // Replaying the manifest must reproduce the run bit-for-bit.
    let out = bin()
        .args(["--replay", manifest_path.to_str().unwrap()])
        .output()
        .expect("run dtn-scenario --replay");
    assert!(
        out.status.success(),
        "replay diverged: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("replay OK"));

    // A tampered manifest must be rejected.
    let doctored = manifest_text.replacen("\"delivered\"", "\"delivered_x\"", 1);
    let bad_path = dir.join("doctored.manifest.json");
    std::fs::write(&bad_path, doctored).unwrap();
    let out = bin()
        .args(["--replay", bad_path.to_str().unwrap()])
        .output()
        .expect("run dtn-scenario --replay (tampered)");
    assert!(!out.status.success(), "tampered manifest replayed cleanly");
}

#[test]
fn timeseries_flag_writes_csv() {
    let dir = std::env::temp_dir().join("sdsrp_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("occupancy.csv");
    let _ = std::fs::remove_file(&path);
    let out = bin()
        .args([
            "--preset",
            "smoke",
            "--duration",
            "600",
            "--timeseries",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("run dtn-scenario");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(&path).expect("timeseries file written");
    assert!(csv.starts_with("t,mean_occupancy"));
    assert!(csv.lines().count() > 10);
}
