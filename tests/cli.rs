//! Integration tests for the `dtn-scenario` command-line runner.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dtn-scenario"))
}

#[test]
fn emit_config_roundtrips_through_a_run() {
    // --emit-config produces JSON that --config accepts.
    let out = bin()
        .args(["--preset", "smoke", "--emit-config"])
        .output()
        .expect("run dtn-scenario");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf8 config");
    assert!(json.contains("\"n_nodes\": 40"));

    let dir = std::env::temp_dir().join("sdsrp_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("smoke.json");
    std::fs::write(&path, &json).unwrap();

    let out = bin()
        .args([
            "--config",
            path.to_str().unwrap(),
            "--duration",
            "600",
            "--json",
        ])
        .output()
        .expect("run dtn-scenario from config");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("\"delivery_ratio\""));
    assert!(report.contains("\"created\""));
}

#[test]
fn json_output_is_parseable_and_deterministic() {
    let run = || {
        let out = bin()
            .args([
                "--preset", "smoke", "--policy", "sdsrp", "--seed", "4",
                "--duration", "600", "--json",
            ])
            .output()
            .expect("run dtn-scenario");
        assert!(out.status.success());
        let v: serde_json::Value =
            serde_json::from_slice(&out.stdout).expect("valid JSON report");
        (
            v["created"].as_u64().unwrap(),
            v["delivered"].as_u64().unwrap(),
            v["policy"].as_str().unwrap().to_string(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, different results");
    assert_eq!(a.2, "SDSRP");
}

#[test]
fn unknown_arguments_fail_with_usage() {
    let out = bin().args(["--nonsense"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "no usage text in: {err}");
}

#[test]
fn timeseries_flag_writes_csv() {
    let dir = std::env::temp_dir().join("sdsrp_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("occupancy.csv");
    let _ = std::fs::remove_file(&path);
    let out = bin()
        .args([
            "--preset", "smoke", "--duration", "600",
            "--timeseries", path.to_str().unwrap(),
        ])
        .output()
        .expect("run dtn-scenario");
    assert!(out.status.success());
    let csv = std::fs::read_to_string(&path).expect("timeseries file written");
    assert!(csv.starts_with("t,mean_occupancy"));
    assert!(csv.lines().count() > 10);
}
