//! Cross-crate integration tests: full scenarios exercised through the
//! public `sdsrp` facade.

use sdsrp::core::time::SimDuration;
use sdsrp::core::units::Bytes;
use sdsrp::mobility::MobilityConfig;
use sdsrp::sim::config::{presets, PolicyKind, RoutingKind, ScenarioConfig};
use sdsrp::sim::world::World;

fn short_smoke(policy: PolicyKind, seed: u64) -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1500.0;
    cfg.policy = policy;
    cfg.seed = seed;
    cfg
}

#[test]
fn facade_exposes_the_whole_pipeline() {
    let report = World::build(&short_smoke(PolicyKind::Sdsrp, 1)).run();
    assert!(report.created() > 0);
    assert!(report.delivered() <= report.created());
    assert!(report.transmissions() >= report.delivered_events());
}

#[test]
fn full_determinism_across_the_stack() {
    let run = || {
        let r = World::build(&short_smoke(PolicyKind::Sdsrp, 33)).run();
        (
            r.created(),
            r.delivered(),
            r.transmissions(),
            r.buffer_drops(),
            r.incoming_rejects(),
            r.expirations(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn conservation_invariants_hold_for_every_policy() {
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::TtlRatio,
        PolicyKind::CopiesRatio,
        PolicyKind::Sdsrp,
        PolicyKind::Mofo,
        PolicyKind::Shli,
        PolicyKind::Random,
    ] {
        let r = World::build(&short_smoke(policy, 5)).run();
        assert!(
            r.delivered() <= r.created(),
            "{policy:?}: delivered more than created"
        );
        assert!(
            r.delivered_events() >= r.delivered(),
            "{policy:?}: fewer delivery events than unique deliveries"
        );
        assert!(
            r.transmissions() >= r.delivered_events(),
            "{policy:?}: deliveries without transmissions"
        );
        if r.delivered() > 0 {
            assert!(r.avg_hopcount() >= 1.0, "{policy:?}: impossible hopcount");
            let lat = r.avg_latency().expect("deliveries imply latency data");
            assert!(lat > 0.0, "{policy:?}: zero latency");
        }
    }
}

#[test]
fn bigger_buffers_never_hurt_much() {
    // Delivery ratio should rise (or at least not collapse) as buffers
    // grow — the paper's Fig. 8(d). Averaged over seeds to keep it
    // robust.
    let avg = |mb: f64| -> f64 {
        let mut acc = 0.0;
        for seed in 1..=3 {
            let mut cfg = short_smoke(PolicyKind::Sdsrp, seed);
            cfg.duration_secs = 2000.0;
            cfg.buffer_capacity = Bytes::from_mb(mb);
            acc += World::build(&cfg).run().delivery_ratio();
        }
        acc / 3.0
    };
    let small = avg(1.0);
    let large = avg(10.0);
    assert!(
        large >= small - 0.03,
        "delivery fell from {small} to {large} with 10x buffer"
    );
}

#[test]
fn slower_generation_improves_delivery() {
    // Fig. 8(g): less congestion, better delivery.
    let avg = |interval: (f64, f64)| -> f64 {
        let mut acc = 0.0;
        for seed in 1..=3 {
            let mut cfg = short_smoke(PolicyKind::Fifo, seed);
            cfg.duration_secs = 2000.0;
            cfg.gen_interval = interval;
            acc += World::build(&cfg).run().delivery_ratio();
        }
        acc / 3.0
    };
    let congested = avg((5.0, 8.0));
    let relaxed = avg((60.0, 80.0));
    assert!(
        relaxed >= congested,
        "relaxed {relaxed} < congested {congested}"
    );
}

#[test]
fn trace_replay_equals_live_mobility() {
    // Record the smoke scenario's mobility to a trace, then re-run the
    // exact same simulation over the replayed trace: with a sampling
    // step equal to the simulation tick the contact sequence — and hence
    // every metric — must match.
    use sdsrp::core::time::SimTime;
    use sdsrp::mobility::trace::MobilityTrace;

    let mut cfg = presets::smoke();
    cfg.duration_secs = 900.0;
    cfg.seed = 11;

    let live = World::build(&cfg).run();

    let mut fleet = sdsrp::mobility::build_fleet(&cfg.mobility, cfg.n_nodes, cfg.seed);
    let trace = MobilityTrace::record(
        &mut fleet,
        SimTime::from_secs(cfg.duration_secs),
        cfg.tick_secs,
    );
    let mut replay_cfg = cfg.clone();
    replay_cfg.mobility = MobilityConfig::TraceText {
        body: trace.to_text(),
    };
    let replayed = World::build(&replay_cfg).run();

    assert_eq!(live.created(), replayed.created());
    assert_eq!(live.delivered(), replayed.delivered());
    assert_eq!(live.transmissions(), replayed.transmissions());
}

#[test]
fn spray_and_wait_limits_infection_scope() {
    // With L tokens and no buffer pressure, a message reaches at most L
    // holders — count transmissions per message indirectly: total
    // non-delivery transmissions <= created * (L - 1) + deliveries.
    let mut cfg = presets::smoke();
    cfg.duration_secs = 2000.0;
    cfg.buffer_capacity = Bytes::from_mb(100.0); // no drops
    cfg.initial_copies = 8;
    cfg.policy = PolicyKind::Fifo;
    let r = World::build(&cfg).run();
    let replications = r.transmissions() - r.delivered_events();
    assert!(
        replications <= r.created() * 7,
        "{replications} replications exceed the L-1 spray budget"
    );
}

#[test]
fn relay_chain_delivers_multihop() {
    // Three stationary nodes in a line: A(0,0) - B(80,0) - C(160,0) with
    // a 100 m radio. A and C are never in direct contact, so every A<->C
    // message must relay through B (2 hops); A<->B and B<->C messages go
    // direct (1 hop). With permanent contacts and a long TTL, everything
    // generated early enough must be delivered.
    let mut cfg = presets::smoke();
    cfg.name = "relay-chain".into();
    cfg.n_nodes = 3;
    cfg.duration_secs = 2000.0;
    cfg.mobility = MobilityConfig::Stationary {
        positions: vec![(0.0, 0.0), (80.0, 0.0), (160.0, 0.0)],
    };
    cfg.gen_interval = (40.0, 60.0);
    cfg.initial_copies = 4;
    cfg.policy = PolicyKind::Fifo;
    cfg.seed = 13;
    let r = World::build(&cfg).run();
    assert!(r.created() >= 20);
    // Allow the last couple of messages to be in flight at the end.
    assert!(
        r.delivered() >= r.created() - 3,
        "delivered {} of {}",
        r.delivered(),
        r.created()
    );
    // Hop counts: a mix of 1-hop (adjacent pairs) and 2-hop (A<->C).
    let h = r.avg_hopcount();
    assert!(
        (1.0..=2.0).contains(&h),
        "relay chain hopcount {h} outside [1, 2]"
    );
    assert!(h > 1.0, "no multi-hop delivery ever happened");
}

#[test]
fn epidemic_with_tiny_ttl_expires_messages() {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1200.0;
    cfg.routing = RoutingKind::Epidemic;
    cfg.ttl = SimDuration::from_secs(120.0);
    let r = World::build(&cfg).run();
    assert!(r.expirations() > 0, "no TTL expirations despite 120 s TTL");
}

#[test]
fn scenario_serde_roundtrip_runs_identically() {
    let cfg = short_smoke(PolicyKind::Sdsrp, 21);
    let json = serde_json::to_string(&cfg).expect("serialise");
    let back: ScenarioConfig = serde_json::from_str(&json).expect("deserialise");
    let a = World::build(&cfg).run();
    let b = World::build(&back).run();
    assert_eq!(a.created(), b.created());
    assert_eq!(a.delivered(), b.delivered());
}
