//! Checkpoint/resume round-trip tests for the hardened sweep runner:
//! a run killed partway and resumed from its checkpoint must reproduce
//! the uninterrupted run bit-identically — same per-run fingerprints,
//! same aggregated cells, same event totals.

use sdsrp::sim::config::{presets, PolicyKind};
use sdsrp::sim::scenario_gen::random_scenario;
use sdsrp::sim::sweep::{
    load_checkpoint, run_sweep_hardened, SweepAxis, SweepCheckpoint, SweepOptions, SweepSpec,
};
use std::path::PathBuf;

fn quick_spec() -> SweepSpec {
    let mut base = presets::smoke();
    base.duration_secs = 600.0;
    base.n_nodes = 20;
    SweepSpec {
        base,
        axis: SweepAxis::InitialCopies(vec![8, 16]),
        policies: vec![PolicyKind::Fifo, PolicyKind::Sdsrp],
        seeds: vec![1, 2],
        validate: false,
    }
}

fn temp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("sdsrp-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn with_checkpoint(path: &std::path::Path, resume: bool) -> SweepOptions<'static> {
    SweepOptions {
        checkpoint: Some(SweepCheckpoint {
            path: path.to_path_buf(),
            resume,
        }),
        ..SweepOptions::default()
    }
}

#[test]
fn killed_and_resumed_sweep_is_bit_identical() {
    let spec = quick_spec();
    let ck_full = temp_path("full");
    let ck_cut = temp_path("cut");

    // Uninterrupted reference run, streaming its checkpoint.
    let reference = run_sweep_hardened(&spec, &with_checkpoint(&ck_full, false));
    assert!(reference.errors.is_empty());
    assert_eq!(reference.executed, 8);
    assert_eq!(reference.resumed, 0);

    // Simulate a mid-run kill: keep only the first 3 finished cells
    // (the JSONL is completion-ordered, arbitrary vs job order), plus a
    // truncated half-written final line, as a crash would leave behind.
    let body = std::fs::read_to_string(&ck_full).expect("checkpoint written");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 8, "one JSONL line per finished run");
    let mut partial = lines[..3].join("\n");
    partial.push('\n');
    partial.push_str(&lines[3][..lines[3].len() / 2]);
    std::fs::write(&ck_cut, &partial).expect("write cut checkpoint");
    assert_eq!(load_checkpoint(&ck_cut).len(), 3, "torn tail line ignored");

    // Resume from the survivors.
    let resumed = run_sweep_hardened(&spec, &with_checkpoint(&ck_cut, true));
    assert!(resumed.errors.is_empty());
    assert_eq!(resumed.resumed, 3);
    assert_eq!(resumed.executed, 5);

    // Bit-identical to the uninterrupted run: every per-run fingerprint,
    // every aggregated cell, and the folded event totals.
    assert_eq!(resumed.runs, reference.runs);
    assert_eq!(resumed.cells, reference.cells);
    assert_eq!(resumed.totals, reference.totals);

    // The repaired checkpoint is complete again: a second resume runs
    // nothing at all and still reproduces the same output.
    let restored = run_sweep_hardened(&spec, &with_checkpoint(&ck_cut, true));
    assert_eq!(restored.executed, 0);
    assert_eq!(restored.resumed, 8);
    assert_eq!(restored.runs, reference.runs);
    assert_eq!(restored.cells, reference.cells);
    assert_eq!(restored.totals, reference.totals);

    let _ = std::fs::remove_file(&ck_full);
    let _ = std::fs::remove_file(&ck_cut);
}

#[test]
fn resume_against_missing_file_runs_everything() {
    let spec = quick_spec();
    let ck = temp_path("fresh");
    // --resume with no prior checkpoint is a cold start, not an error.
    let out = run_sweep_hardened(&spec, &with_checkpoint(&ck, true));
    assert!(out.errors.is_empty());
    assert_eq!(out.executed, 8);
    assert_eq!(out.resumed, 0);
    assert_eq!(load_checkpoint(&ck).len(), 8);
    let _ = std::fs::remove_file(&ck);
}

#[test]
fn checkpoint_keys_are_config_hashes() {
    let spec = quick_spec();
    let ck = temp_path("keys");
    let out = run_sweep_hardened(&spec, &with_checkpoint(&ck, false));
    let restored = load_checkpoint(&ck);
    assert_eq!(restored.len(), 8);
    for run in out.runs.iter().flatten() {
        let hit = restored
            .get(&run.config_hash)
            .unwrap_or_else(|| panic!("hash {} missing from checkpoint", run.config_hash));
        assert_eq!(hit, run);
        assert_eq!(run.config_hash.len(), 16, "FNV-1a manifest hash format");
    }
    let _ = std::fs::remove_file(&ck);
}

#[test]
fn fuzz_cases_checkpoint_and_resume_too() {
    // The dtn-fuzz path goes through the same runner with generated
    // scenarios; spot-check the round trip on a couple of fuzz cells.
    use sdsrp::sim::sweep::{run_cells, CellJob};
    let jobs: Vec<CellJob> = (0..2u64)
        .map(|seed| {
            let mut cfg = random_scenario(seed);
            // Keep the integration test fast regardless of the drawn
            // duration.
            cfg.duration_secs = 200.0;
            CellJob {
                label: cfg.name.clone(),
                policy: cfg.policy.label().to_string(),
                cfg,
            }
        })
        .collect();
    let ck = temp_path("fuzz");
    let first = run_cells(jobs.clone(), &with_checkpoint(&ck, false));
    assert!(first.errors.is_empty());
    assert_eq!(first.executed, 2);
    let second = run_cells(jobs, &with_checkpoint(&ck, true));
    assert_eq!(second.executed, 0);
    assert_eq!(second.resumed, 2);
    assert_eq!(second.runs, first.runs);
    assert_eq!(second.totals, first.totals);
    let _ = std::fs::remove_file(&ck);
}
