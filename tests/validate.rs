//! Integration tests for the dtn-validate harness: invariant checking
//! across the policy/routing matrix, seeded-fault detection, estimator
//! telemetry, deterministic replay and the differential modes.

use sdsrp::sim::config::{presets, PolicyKind, RoutingKind, ScenarioConfig};
use sdsrp::sim::replay::{
    differential_policies, differential_thread_counts, fingerprint, manifest_for_run,
    replay_manifest, ReplayError,
};
use sdsrp::sim::sweep::{SweepAxis, SweepSpec};
use sdsrp::sim::world::World;
use sdsrp::telemetry::Recorder;
use sdsrp::validate::{DelayModel, ValidateConfig, ValidationReport};

fn quick(policy: PolicyKind, routing: RoutingKind, seed: u64) -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 1500.0;
    cfg.policy = policy;
    cfg.routing = routing;
    cfg.seed = seed;
    cfg
}

fn run_validated(cfg: &ScenarioConfig) -> ValidationReport {
    let mut world = World::build(cfg);
    world.enable_validation(ValidateConfig::default());
    let (_report, validation, _rec) = world.run_validated();
    validation
}

#[test]
fn policy_matrix_upholds_all_invariants() {
    for policy in PolicyKind::paper_four() {
        let validation = run_validated(&quick(policy, RoutingKind::SprayAndWaitBinary, 11));
        assert!(
            validation.ok(),
            "{policy:?} violated invariants:\n{}",
            validation.summary()
        );
        assert!(validation.sweeps > 0);
        assert!(validation.checks_run > 0);
    }
}

#[test]
fn routing_matrix_upholds_all_invariants() {
    for routing in [
        RoutingKind::SprayAndWaitSource,
        RoutingKind::Epidemic,
        RoutingKind::Direct,
        RoutingKind::SprayAndFocus {
            handoff_threshold: 60.0,
        },
        RoutingKind::Prophet,
    ] {
        let validation = run_validated(&quick(PolicyKind::Sdsrp, routing, 13));
        assert!(
            validation.ok(),
            "{routing:?} violated invariants:\n{}",
            validation.summary()
        );
    }
}

#[test]
fn estimator_oracle_reports_errors_on_validated_runs() {
    let validation = run_validated(&quick(
        PolicyKind::Sdsrp,
        RoutingKind::SprayAndWaitBinary,
        17,
    ));
    assert!(validation.estimator_m.samples > 0, "no estimator samples");
    assert_eq!(
        validation.estimator_m.samples,
        validation.estimator_n.samples
    );
    assert!(validation.estimator_m.mean().is_finite());
    assert!(validation.estimator_n.mean().is_finite());
    // Eq. 14's n_i = m_i + 1 - d_i carries a +1 cold-start bias on a
    // freshly generated message, so max n-error is at least that.
    assert!(validation.estimator_n.max >= 0.0);
}

#[test]
fn seeded_estimator_corruption_is_detected() {
    // Mutation smoke test: corrupt one n_i bookkeeping update mid-run;
    // the double-entry sweep must flag it as a holder mismatch.
    let cfg = quick(PolicyKind::Sdsrp, RoutingKind::SprayAndWaitBinary, 19);
    let mut world = World::build(&cfg);
    world.enable_validation(ValidateConfig::default());
    world.step_until(sdsrp::core::time::SimTime::from_secs(700.0));
    world
        .validator_mut()
        .expect("validation enabled")
        .corrupt_holder_bookkeeping();
    world.step_until(sdsrp::core::time::SimTime::from_secs(1500.0));
    let validation = world.take_validation_report().expect("validation enabled");
    assert!(!validation.ok(), "corruption went undetected");
    assert!(
        validation
            .violations
            .iter()
            .any(|v| v.check == "holder_mismatch"),
        "wrong violation kind:\n{}",
        validation.summary()
    );
}

#[test]
fn validated_run_exports_estimator_metrics_to_telemetry() {
    let cfg = quick(PolicyKind::Sdsrp, RoutingKind::SprayAndWaitBinary, 23);
    let mut world = World::build(&cfg);
    world.attach_recorder(Recorder::enabled(4096));
    world.enable_validation(ValidateConfig::default());
    let (report, validation, recorder) = world.run_validated();
    assert!(validation.ok(), "{}", validation.summary());

    let totals = recorder.totals();
    assert!(totals.estimator_samples > 0, "no estimator_sample events");
    assert_eq!(totals.invariant_violations, 0);

    let snapshot = recorder.metrics().snapshot();
    for gauge in [
        "estimator_m_mean_rel_err",
        "estimator_m_max_rel_err",
        "estimator_n_mean_rel_err",
        "estimator_n_max_rel_err",
    ] {
        assert!(
            snapshot.gauges.iter().any(|g| g.name == gauge),
            "gauge {gauge} missing from metrics snapshot"
        );
    }
    // The manifest carries them too — the telemetry surface of --validate.
    let manifest = manifest_for_run(&cfg, &report, &recorder, 0.0);
    assert!(manifest.to_json().contains("estimator_m_mean_rel_err"));
}

#[test]
fn replay_from_manifest_is_bit_identical() {
    let cfg = quick(PolicyKind::Sdsrp, RoutingKind::SprayAndWaitBinary, 29);
    let mut world = World::build(&cfg);
    world.attach_recorder(Recorder::enabled(4096));
    world.enable_validation(ValidateConfig::default());
    let started = std::time::Instant::now();
    let (report, _validation, recorder) = world.run_validated();
    let original = manifest_for_run(&cfg, &report, &recorder, started.elapsed().as_secs_f64());

    let outcome = replay_manifest(&original).expect("manifest replays");
    assert!(
        outcome.identical,
        "replay diverged:\n{}",
        outcome.diff.join("\n")
    );
    // Fingerprints agree as well — the golden-snapshot digest is a
    // strict subset of what the manifest already pins down.
    let fp = fingerprint(&report, recorder.totals());
    let fp2 = fingerprint(&outcome.report, &outcome.manifest.events);
    assert_eq!(fp, fp2);
    assert_eq!(fp.to_canonical_json(), fp2.to_canonical_json());
}

#[test]
fn replay_rejects_tampered_manifests() {
    let cfg = quick(PolicyKind::Fifo, RoutingKind::SprayAndWaitBinary, 31);
    let mut world = World::build(&cfg);
    world.attach_recorder(Recorder::enabled(64));
    let (report, recorder) = world.run_with_recorder();
    let mut manifest = manifest_for_run(&cfg, &report, &recorder, 0.0);

    // Tampered config: hash no longer matches.
    let good = manifest.config.clone();
    manifest.config = good.as_ref().map(|c| c.replace("1500", "1501"));
    assert!(matches!(
        replay_manifest(&manifest),
        Err(ReplayError::HashMismatch { .. })
    ));

    // Pre-replay manifest: no config at all.
    manifest.config = None;
    assert!(matches!(
        replay_manifest(&manifest),
        Err(ReplayError::MissingConfig)
    ));

    // Doctored outcome with intact config: replay runs but diverges.
    manifest.config = good;
    manifest.delivered += 1;
    let outcome = replay_manifest(&manifest).expect("replays");
    assert!(!outcome.identical);
    assert!(outcome.diff.iter().any(|l| l.starts_with("delivered:")));
}

#[test]
fn sweeps_are_thread_count_invariant() {
    let mut base = presets::smoke();
    base.duration_secs = 900.0;
    let spec = SweepSpec {
        base,
        axis: SweepAxis::InitialCopies(vec![8, 16]),
        policies: vec![PolicyKind::Fifo, PolicyKind::Sdsrp],
        seeds: vec![1, 2],
        validate: false,
    };
    let diffs = differential_thread_counts(&spec, 1, 4);
    assert!(
        diffs.is_empty(),
        "thread count changed sweep results:\n{}",
        diffs.join("\n")
    );
}

#[test]
fn workload_is_policy_invariant() {
    let mut base = presets::smoke();
    base.duration_secs = 1200.0;
    let diffs = differential_policies(&base, &PolicyKind::paper_four());
    assert!(
        diffs.is_empty(),
        "generation/contact streams differ across policies:\n{}",
        diffs.join("\n")
    );
}

/// A model-friendly operating point for the analytic delay oracle:
/// near-instant transfers (1 kB messages on the paper's 250 kbit/s
/// links), sparse traffic and ample buffers, so the simulator's only
/// departures from the CTMC are the RWP contact process itself. Mirrors
/// `scenarios/oracle_validation.json` at half duration.
fn oracle_scenario() -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.name = "oracle-validation-test".into();
    cfg.message_size = sdsrp::core::units::Bytes::new(1_000);
    cfg.buffer_capacity = sdsrp::core::units::Bytes::from_mb(250.0);
    cfg.gen_interval = (60.0, 100.0);
    cfg.duration_secs = 5400.0;
    cfg.ttl = sdsrp::core::time::SimDuration::from_secs(5400.0);
    cfg.seed = 1;
    cfg
}

/// Runs the oracle scenario, estimates λ with the count-based rate MLE
/// (contacts / (pairs × T), the same estimator `--delay-oracle` uses)
/// and returns the fitted model plus the first-delivery delay samples.
fn fitted_delay_model(cfg: &ScenarioConfig, threads: usize) -> (DelayModel, Vec<f64>) {
    let mut world = World::build(cfg);
    world.set_threads(threads);
    world.enable_contact_recording();
    let (report, trace) = world.run_with_trace();
    let n_pairs = (cfg.n_nodes * (cfg.n_nodes - 1) / 2) as f64;
    let lambda = trace.len() as f64 / (n_pairs * cfg.duration_secs);
    (
        DelayModel::new(cfg.n_nodes, cfg.initial_copies, lambda),
        report.latency_samples().to_vec(),
    )
}

#[test]
fn delay_oracle_matches_simulation_and_corrupted_lambda_fires() {
    let cfg = oracle_scenario();
    let (model, delays) = fitted_delay_model(&cfg, 1);
    assert!(
        delays.len() >= 30,
        "too few deliveries ({}) to score the CDF",
        delays.len()
    );
    let mut sorted = delays.clone();
    let d_fit = model.ks_deviation(&mut sorted);
    assert!(
        d_fit < 0.3,
        "closed form diverges from simulation: KS = {d_fit:.4} (λ = {:.3e})",
        model.lambda()
    );
    // Mutation check: a 3x-corrupted λ must blow the deviation up well
    // past the fitted model's, proving the KS gate is non-vacuous.
    let corrupted = DelayModel::new(cfg.n_nodes, cfg.initial_copies, 3.0 * model.lambda());
    let d_bad = corrupted.ks_deviation(&mut sorted);
    assert!(
        d_bad > 0.35 && d_bad > 2.0 * d_fit,
        "λ corruption went undetected: fitted KS {d_fit:.4}, corrupted KS {d_bad:.4}"
    );
}

#[test]
fn delay_oracle_is_thread_count_invariant() {
    // The oracle's inputs — contact counts, fitted λ, delay samples —
    // must not depend on world parallelism: same scenario on 1 vs 4
    // threads, bit-identical results.
    let cfg = oracle_scenario();
    let (m1, d1) = fitted_delay_model(&cfg, 1);
    let (m4, d4) = fitted_delay_model(&cfg, 4);
    assert_eq!(m1.lambda().to_bits(), m4.lambda().to_bits());
    assert_eq!(d1.len(), d4.len());
    for (a, b) in d1.iter().zip(&d4) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let (mut s1, mut s4) = (d1, d4);
    let k1 = m1.ks_deviation(&mut s1);
    let k4 = m4.ks_deviation(&mut s4);
    assert_eq!(k1.to_bits(), k4.to_bits());
}

#[test]
fn validation_report_json_is_well_formed() {
    let validation = run_validated(&quick(
        PolicyKind::Sdsrp,
        RoutingKind::SprayAndWaitBinary,
        37,
    ));
    let v: serde_json::Value =
        serde_json::from_str(&validation.to_json()).expect("report serialises to valid JSON");
    assert_eq!(v["violation_count"].as_u64(), Some(0));
    assert!(v["sweeps"].as_u64().unwrap() > 0);
}
