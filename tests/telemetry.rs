//! Integration tests for the telemetry subsystem wired through the
//! simulator: the structured event stream must reconcile exactly with
//! the `Report` the same run produces, and attaching a recorder must
//! never change the simulation outcome.

use sdsrp::sim::config::{presets, ImmunityMode, ScenarioConfig};
use sdsrp::sim::world::World;
use sdsrp::telemetry::{MemorySink, Recorder, SimEvent};

fn short_smoke() -> ScenarioConfig {
    let mut cfg = presets::smoke();
    cfg.duration_secs = 900.0;
    cfg
}

#[test]
fn event_totals_reconcile_with_report_counters() {
    let cfg = short_smoke();
    let mut world = World::build(&cfg);
    world.attach_recorder(Recorder::enabled(0)); // counting only
    let (report, recorder) = world.run_with_recorder();
    let t = recorder.totals();

    assert!(report.created() > 0, "smoke run created no messages");
    assert_eq!(t.generated, report.created());
    assert_eq!(t.delivered_first, report.delivered());
    assert_eq!(t.delivered, report.delivered_events());
    assert_eq!(t.dropped_evicted, report.buffer_drops());
    assert_eq!(t.dropped_rejected, report.incoming_rejects());
    assert_eq!(t.dropped_immunity, report.immunity_purges());
    assert_eq!(t.ttl_expired, report.expirations());
    assert_eq!(t.refused, report.refused_receipts());
    // Every transmission is either a replication/handoff or a delivery.
    assert_eq!(t.replicated + t.delivered, report.transmissions());
    // Contacts come up and down in pairs (modulo those still live at
    // the end of the run).
    assert!(t.contacts_up >= t.contacts_down);
    assert!(t.contacts_up > 0, "smoke run saw no contacts");
}

#[test]
fn gossip_runs_emit_merge_events() {
    let mut cfg = short_smoke();
    cfg.policy = sdsrp::sim::config::PolicyKind::Sdsrp;
    cfg.immunity = ImmunityMode::None;
    let mut world = World::build(&cfg);
    world.attach_recorder(Recorder::enabled(0));
    let (_report, recorder) = world.run_with_recorder();
    let t = recorder.totals();
    assert!(t.gossip_merges > 0, "SDSRP run merged no gossip");
    assert!(t.gossip_records >= t.gossip_merges);
}

#[test]
fn memory_sink_stream_is_ordered_and_serialisable() {
    let cfg = short_smoke();
    let sink = MemorySink::new();
    let mut world = World::build(&cfg);
    world.attach_recorder(Recorder::enabled(64).with_sink(Box::new(sink.clone())));
    let (report, recorder) = world.run_with_recorder();
    assert!(recorder.sink_error().is_none());

    let events = sink.events();
    assert_eq!(events.len() as u64, recorder.totals().total());
    let mut last_t = 0.0;
    let mut delivered_first = 0u64;
    for ev in &events {
        assert!(ev.time() >= last_t, "events out of order at {:?}", ev);
        last_t = ev.time();
        // Every event round-trips through the JSONL projection.
        let line = ev.to_jsonl();
        let v: serde_json::Value = serde_json::from_str(&line).expect("valid JSONL");
        assert_eq!(v["kind"].as_str(), Some(ev.kind()));
        if let SimEvent::Delivered { first: true, .. } = ev {
            delivered_first += 1;
        }
    }
    assert_eq!(delivered_first, report.delivered());
}

#[test]
fn attaching_a_recorder_does_not_change_the_outcome() {
    let cfg = short_smoke();
    let plain = World::build(&cfg).run();
    let mut world = World::build(&cfg);
    world.attach_recorder(Recorder::enabled(128).with_sink(Box::new(MemorySink::new())));
    let (observed, _recorder) = world.run_with_recorder();

    assert_eq!(plain.created(), observed.created());
    assert_eq!(plain.delivered(), observed.delivered());
    assert_eq!(plain.transmissions(), observed.transmissions());
    assert_eq!(plain.buffer_drops(), observed.buffer_drops());
    assert_eq!(plain.incoming_rejects(), observed.incoming_rejects());
    assert_eq!(plain.expirations(), observed.expirations());
    assert_eq!(plain.refused_receipts(), observed.refused_receipts());
}
