//! Extension study: what would delivery acknowledgements buy?
//!
//! The paper assumes no ACK/immunity mechanism (Section III-A) — every
//! delivered message keeps consuming buffers and bandwidth until its
//! TTL expires. This example quantifies that choice by running the same
//! congested scenario under the three [`ImmunityMode`]s for both FIFO
//! and SDSRP buffers.
//!
//! ```text
//! cargo run --release --example immunity_ack
//! ```

use sdsrp::sim::config::{presets, ImmunityMode, PolicyKind};
use sdsrp::sim::world::World;

fn main() {
    let mut base = presets::smoke();
    base.gen_interval = (10.0, 15.0); // congest it
    base.seed = 42;

    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>8}",
        "variant", "delivery", "overhead", "latency", "purges"
    );

    for policy in [PolicyKind::Fifo, PolicyKind::Sdsrp] {
        for (label, immunity) in [
            ("none (paper)", ImmunityMode::None),
            ("antipacket gossip", ImmunityMode::AntipacketGossip),
            ("oracle flood", ImmunityMode::OracleFlood),
        ] {
            let mut cfg = base.clone();
            cfg.policy = policy;
            cfg.immunity = immunity;
            let r = World::build(&cfg).run();
            println!(
                "{:<26} {:>9.4} {:>9.2} {:>8.0}s {:>8}",
                format!("{} + {label}", policy.label()),
                r.delivery_ratio(),
                r.overhead_ratio(),
                r.avg_latency().unwrap_or(f64::NAN),
                r.immunity_purges(),
            );
        }
    }

    println!(
        "\nAcknowledgements free buffers and bandwidth occupied by already-\n\
         delivered copies, so delivery rises and overhead falls; the oracle\n\
         flood bounds what any real antipacket scheme could achieve."
    );
}
