//! Quickstart: run one DTN scenario with the SDSRP buffer policy and
//! print the paper's three metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sdsrp::sim::config::{presets, PolicyKind};
use sdsrp::sim::world::World;

fn main() {
    // The laptop-fast smoke preset: 40 random-waypoint nodes, 1 h of
    // simulated time, Table II radio and buffer parameters.
    let mut cfg = presets::smoke();
    cfg.policy = PolicyKind::Sdsrp;
    cfg.seed = 42;

    println!("scenario : {}", cfg.name);
    println!("nodes    : {}", cfg.n_nodes);
    println!("duration : {} s", cfg.duration_secs);
    println!("policy   : {}", cfg.policy.label());
    println!();

    let report = World::build(&cfg).run();

    println!("messages generated : {}", report.created());
    println!("messages delivered : {}", report.delivered());
    println!("delivery ratio     : {:.3}", report.delivery_ratio());
    println!("average hopcounts  : {:.2}", report.avg_hopcount());
    println!("overhead ratio     : {:.2}", report.overhead_ratio());
    match report.avg_latency() {
        Some(lat) => println!("average latency    : {lat:.0} s"),
        None => println!("average latency    : — (no deliveries)"),
    }
    println!("buffer drops       : {}", report.buffer_drops());
    println!("TTL expirations    : {}", report.expirations());
}
