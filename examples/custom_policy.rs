//! Extending the simulator with your own buffer-management strategy.
//!
//! Implements a "destination-aware" policy outside the built-in set —
//! it keeps SDSRP-style freshness ordering but pins messages whose hop
//! count is still low (they have travelled least, so dropping them
//! wastes the least... or the most? Run it and see) — and plugs it into
//! the world through [`World::build_with_policies`].
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use sdsrp::buffer::policy::BufferPolicy;
use sdsrp::buffer::view::MessageView;
use sdsrp::core::time::SimTime;
use sdsrp::sim::config::{presets, PolicyKind};
use sdsrp::sim::world::World;

/// A hand-rolled policy: priority is remaining-TTL fraction *boosted*
/// for messages that have not spread far yet (low hop count), so young,
/// poorly-spread messages survive congestion.
struct HopAwareFreshness;

impl BufferPolicy for HopAwareFreshness {
    fn name(&self) -> &'static str {
        "HopAwareFreshness"
    }

    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        // TTL freshness in [0,1], plus a bonus that decays with hops.
        msg.ttl_fraction() + 1.0 / (1.0 + msg.hops as f64)
    }
}

fn main() {
    let mut cfg = presets::smoke();
    cfg.seed = 9;

    println!(
        "{:<20} {:>9} {:>7} {:>9}",
        "policy", "delivery", "hops", "overhead"
    );

    // Built-in baselines for context.
    for policy in [PolicyKind::Fifo, PolicyKind::Sdsrp] {
        let mut c = cfg.clone();
        c.policy = policy;
        let r = World::build(&c).run();
        println!(
            "{:<20} {:>9.4} {:>7.2} {:>9.2}",
            policy.label(),
            r.delivery_ratio(),
            r.avg_hopcount(),
            r.overhead_ratio()
        );
    }

    // The custom policy: one fresh instance per node.
    let r = World::build_with_policies(&cfg, &mut |_node| Box::new(HopAwareFreshness)).run();
    println!(
        "{:<20} {:>9.4} {:>7.2} {:>9.2}",
        "HopAwareFreshness",
        r.delivery_ratio(),
        r.avg_hopcount(),
        r.overhead_ratio()
    );
}
