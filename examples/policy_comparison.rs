//! Reproduce the paper's headline comparison at one operating point:
//! the four buffer-management strategies of Figs. 8-9 (Spray and Wait /
//! -O / -C / SDSRP) on the Table II random-waypoint scenario, averaged
//! over a few seeds.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use sdsrp::core::stats::OnlineStats;
use sdsrp::sim::config::{presets, PolicyKind};
use sdsrp::sim::world::World;

fn main() {
    let seeds = [1u64, 2, 3];
    // Shortened Table II scenario so the example finishes in seconds.
    let mut base = presets::random_waypoint_paper();
    base.duration_secs = 6_000.0;

    println!(
        "Table II scenario, {} nodes, {} s, seeds {:?}\n",
        base.n_nodes, base.duration_secs, seeds
    );
    println!(
        "{:<16} {:>9} {:>7} {:>9}",
        "policy", "delivery", "hops", "overhead"
    );

    for policy in PolicyKind::paper_four() {
        let mut delivery = OnlineStats::new();
        let mut hops = OnlineStats::new();
        let mut overhead = OnlineStats::new();
        for &seed in &seeds {
            let mut cfg = base.clone();
            cfg.policy = policy;
            cfg.seed = seed;
            let r = World::build(&cfg).run();
            delivery.push(r.delivery_ratio());
            hops.push(r.avg_hopcount());
            overhead.push(r.overhead_ratio());
        }
        println!(
            "{:<16} {:>9.4} {:>7.2} {:>9.2}",
            policy.label(),
            delivery.mean().unwrap(),
            hops.mean().unwrap(),
            overhead.mean().unwrap(),
        );
    }

    println!(
        "\nExpected shape (paper Fig. 8): SDSRP best delivery and clearly\n\
         lowest overhead; plain Spray-and-Wait the most hops."
    );
}
