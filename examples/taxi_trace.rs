//! The real-trace code path, end to end: synthesise a San-Francisco-like
//! taxi trace with the hotspot mobility model, write it to the
//! `dtn-mobility` trace file format, reload it, verify its intermeeting
//! times fit an exponential (the paper's Fig. 3(b) argument), and run a
//! buffer-policy comparison on the replayed trace.
//!
//! Swapping in a *real* CRAWDAD conversion is a pure data change: write
//! the GPS samples in the same `node time x y` format.
//!
//! ```text
//! cargo run --release --example taxi_trace
//! ```

use sdsrp::analysis::fit::{fit_exponential, ks_distance_exponential};
use sdsrp::core::time::SimTime;
use sdsrp::mobility::trace::MobilityTrace;
use sdsrp::mobility::{build_fleet, MobilityConfig};
use sdsrp::sim::config::{presets, PolicyKind};
use sdsrp::sim::world::World;

fn main() {
    // 1. Synthesise 60 taxis for one simulated hour and record a trace.
    let n_taxis = 60;
    let duration = SimTime::from_secs(7200.0);
    let mut fleet = build_fleet(&MobilityConfig::paper_taxi(), n_taxis, 7);
    let trace = MobilityTrace::record(&mut fleet, duration, 10.0);
    println!(
        "recorded {} samples for {} taxis",
        trace.sample_count(),
        trace.node_count()
    );

    // 2. Round-trip through the text format (what a CRAWDAD conversion
    //    would produce).
    let path = std::env::temp_dir().join("sdsrp_taxi_trace.txt");
    trace.save(&path).expect("write trace");
    let reloaded = MobilityTrace::load(&path).expect("reload trace");
    assert_eq!(reloaded.sample_count(), trace.sample_count());
    println!("trace round-tripped through {}", path.display());

    // 3. Run a scenario that replays the trace file.
    let body = std::fs::read_to_string(&path).expect("read trace");
    let mut cfg = presets::smoke();
    cfg.name = "taxi-trace-replay".into();
    cfg.n_nodes = n_taxis;
    cfg.duration_secs = 7200.0;
    cfg.mobility = MobilityConfig::TraceText { body };

    println!(
        "\n{:<16} {:>9} {:>7} {:>9}",
        "policy", "delivery", "hops", "overhead"
    );
    for policy in PolicyKind::paper_four() {
        let mut c = cfg.clone();
        c.policy = policy;
        let r = World::build(&c).run();
        println!(
            "{:<16} {:>9.4} {:>7.2} {:>9.2}",
            policy.label(),
            r.delivery_ratio(),
            r.avg_hopcount(),
            r.overhead_ratio()
        );
    }

    // 4. Fig. 3(b)-style check: intermeeting times of the replayed trace
    //    approximately follow an exponential.
    let mut c = cfg.clone();
    c.policy = PolicyKind::Fifo;
    let world = World::build(&c);
    let (_report, contacts) = world.run_with_trace();
    let mut gaps = contacts.intermeeting_times();
    if let Some(fit) = fit_exponential(&gaps) {
        let ks = ks_distance_exponential(&mut gaps, fit.lambda);
        println!(
            "\nintermeeting fit: E(I) = {:.0} s, lambda = {:.5}/s, CV = {:.2}, KS = {:.3}",
            fit.mean, fit.lambda, fit.cv, ks
        );
        println!(
            "(a CV near 1 and a small KS distance support the paper's exponential assumption)"
        );
    } else {
        println!("\nnot enough contacts for an intermeeting fit");
    }
}
