//! Offline stand-in for `serde_json`.
//!
//! Renders the shim serde's [`Value`] trees to JSON text (compact and
//! pretty, matching upstream `serde_json`'s formatting) and parses JSON
//! text back. Floats round-trip exactly: the writer uses Rust's
//! shortest-representation `Display` and the parser uses the correctly
//! rounded `str::parse::<f64>`.

pub use serde::value::{Error, Number, Value};
use serde::{Deserialize, Serialize};

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serialises to compact JSON (`{"a":1}`).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serialises to human-readable JSON (2-space indent, `"key": value`).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0)?;
    Ok(out)
}

/// Serialises to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Parses a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_number(n: &Number, out: &mut String) -> Result<(), Error> {
    use std::fmt::Write;
    match n {
        Number::U64(v) => write!(out, "{v}").unwrap(),
        Number::I64(v) => write!(out, "{v}").unwrap(),
        Number::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // Match upstream serde_json (ryu): floats always carry a
            // fractional part or exponent, so "-0.0" and "2.0" survive
            // the round-trip as floats (and keep their sign bit).
            let start = out.len();
            write!(out, "{v}").unwrap();
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out)?,
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Value, out: &mut String, level: usize) -> Result<(), Error> {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_pretty(item, out, level + 1)?;
            }
            out.push('\n');
            indent(out, level);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(item, out, level + 1)?;
            }
            out.push('\n');
            indent(out, level);
            out.push('}');
        }
        other => write_compact(other, out)?,
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Value::Number(Number::I64(v)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\n\"there\"").unwrap(), r#""hi\n\"there\"""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>(r#""aAb""#).unwrap(), "aAb");
    }

    #[test]
    fn f64_exact_roundtrip() {
        for v in [
            0.1,
            1.0 / 3.0,
            1e-300,
            #[allow(clippy::excessive_precision)] // deliberately more digits than f64 holds
            123456789.123456789,
            -0.0,
            2.0f64.powi(60),
        ] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via {s}");
        }
    }

    #[test]
    fn integral_float_keeps_float_form() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
        // ...and integers can still feed float fields.
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(3u32, 0.5f64);
        m.insert(7u32, 1.5f64);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"3":0.5,"7":1.5}"#);
        let back: std::collections::BTreeMap<u32, f64> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn value_indexing() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": {"c": "x"}}"#).unwrap();
        assert_eq!(v["a"][1].as_u64(), Some(2));
        assert_eq!(v["b"]["c"].as_str(), Some("x"));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_format_matches_upstream_shape() {
        let v: Value = from_str(r#"{"n_nodes": 40, "xs": [1], "empty": {}}"#).unwrap();
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"n_nodes\": 40"), "{s}");
        assert!(s.contains("\"empty\": {}"), "{s}");
        assert!(s.starts_with("{\n  "), "{s}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_slice::<Value>(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn tuples_and_options() {
        let s = to_string(&(4.0f64, 9.0f64)).unwrap();
        assert_eq!(s, "[4.0,9.0]");
        assert_eq!(from_str::<(f64, f64)>(&s).unwrap(), (4.0, 9.0));
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }
}
