//! Test-runner state: configuration, per-case RNG, failure type.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Property-test configuration. Only `cases` matters to this shim;
/// the other fields exist so upstream-style struct literals compile.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; unused.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Source of randomness for strategies; one per case, seeded from the
/// property name and the case index so runs are fully reproducible.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner for `(property name, case index)`.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64),
        }
    }

    /// The case's RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
