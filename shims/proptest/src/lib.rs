//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: range strategies, tuple
//! strategies, `Just`, `prop_oneof!`, `prop::collection::vec`,
//! `any::<T>()`, `.prop_map`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//! Cases are generated deterministically (seeded per case index) and
//! there is **no shrinking** — a failure reports the offending inputs
//! via `Debug` instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs one property: draws `cases` inputs and invokes the body.
/// Used by the `proptest!` expansion; not public API.
#[doc(hidden)]
pub fn run_property<S, F>(
    name: &str,
    config: &test_runner::ProptestConfig,
    strategy: S,
    mut body: F,
) where
    S: strategy::Strategy,
    F: FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
{
    for case in 0..config.cases {
        let mut runner = test_runner::TestRunner::deterministic(name, case);
        let input = strategy.new_value(&mut runner);
        let repr = format!("{input:?}");
        if let Err(e) = body(input) {
            panic!(
                "property `{name}` failed at case {case}/{}: {e}\n  input: {repr}",
                config.cases
            );
        }
    }
}

/// The property-test macro. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u32..100, ys in prop::collection::vec(0f64..1.0, 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            $crate::run_property(
                stringify!($name),
                &__config,
                __strategy,
                |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) so the harness can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Union of strategies: picks one arm uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
