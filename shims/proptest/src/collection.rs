//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `len` and elements
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let n = if self.len.start >= self.len.end {
            self.len.start
        } else {
            runner.rng().gen_range(self.len.clone())
        };
        (0..n).map(|_| self.element.new_value(runner)).collect()
    }
}
