//! Strategy combinators: how test inputs are generated.

use crate::test_runner::TestRunner;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case inputs.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// container (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            draw: Box::new(move |runner| self.new_value(runner)),
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    draw: Box<dyn Fn(&mut TestRunner) -> T>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        (self.draw)(runner)
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub fn union<T: Debug>(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }
}

/// Output of [`union`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        let i = runner.rng().gen_range(0..self.arms.len());
        self.arms[i].new_value(runner)
    }
}

// Ranges are strategies, e.g. `0u32..100` or `-1e3f64..1e3`.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$i.new_value(runner),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9, K:10)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9, K:10, L:11)
}

/// `any::<T>()` — the full-domain strategy for primitives.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

/// Output of [`any`].
#[derive(Debug)]
pub struct ArbitraryStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen::<f64>()
    }
}
