//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly and a poisoned lock (a panicked
//! holder) is treated as still usable, matching `parking_lot` semantics.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutex that does not poison: `lock()` always yields the guard.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
