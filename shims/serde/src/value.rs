//! The generic value tree every `Serialize` impl produces and every
//! `Deserialize` impl consumes. `serde_json` renders this tree to JSON
//! text and parses text back into it.

use std::fmt;

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (they are association lists, not
/// maps), so serialised structs keep their declaration field order.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered key → value association list.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving the distinction between unsigned,
/// negative-integer and floating representations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Anything with a fractional part or exponent.
    F64(f64),
}

impl Value {
    /// The string slice, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an integer representable as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) => u64::try_from(*n).ok(),
            Value::Number(Number::F64(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer representable as one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::F64(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(f)) => Some(*f),
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The association list, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]` — `Null` for missing keys or non-objects,
    /// mirroring `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// `value[i]` — `Null` when out of bounds or not an array.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialisation/deserialisation failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// New error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders a value usable as a map key to its string form. JSON object
/// keys must be strings; integer-like keys (e.g. `NodeId`) serialise as
/// their decimal representation, exactly like upstream `serde_json`.
///
/// # Panics
/// Panics on composite keys (arrays/objects), which JSON cannot express.
pub fn key_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(Number::U64(n)) => n.to_string(),
        Value::Number(Number::I64(n)) => n.to_string(),
        Value::Number(Number::F64(f)) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must be a string or number, got {other:?}"),
    }
}

/// Reconstructs a map key of type `K` from its string form: tries the
/// string directly, then numeric reinterpretations.
pub fn key_from_string<K: crate::Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::U64(n))) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::I64(n))) {
            return Ok(k);
        }
    }
    if let Ok(f) = s.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::F64(f))) {
            return Ok(k);
        }
    }
    Err(Error::new(format!("cannot interpret map key {s:?}")))
}
