//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides a value-tree serialisation model covering exactly what the
//! workspace uses: `#[derive(Serialize, Deserialize)]` (via the
//! companion `serde_derive` shim), the `#[serde(default)]` field
//! attribute, and the std collections / primitives that appear in the
//! simulator's configs, reports and gossip payloads. `serde_json`
//! renders [`value::Value`] trees to JSON text and parses them back.

pub mod value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use value::{Error, Value};

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Support code referenced by `serde_derive` expansions. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Resolves a field absent from the serialised object: types with a
    /// null state (e.g. `Option`) get it; everything else errors.
    pub fn missing_field<T: Deserialize>(ty: &str, field: &str) -> Result<T, Error> {
        T::from_value(&Value::Null)
            .map_err(|_| Error::new(format!("missing field `{field}` in `{ty}`")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

use value::Number;

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::new(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!("{n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::new(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!("{n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::new(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::new(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::new(format!("expected single-char string, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new(format!(
                "expected single-char string, got {s:?}"
            ))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::new(format!("expected null, got {v:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / smart-pointer impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Option / collections / tuples
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (value::key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((value::key_from_string::<K>(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (value::key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((value::key_from_string::<K>(k)?, V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| Error::new(format!("expected array, got {v:?}")))?;
                let want = [$($i,)+].len();
                if arr.len() != want {
                    return Err(Error::new(format!(
                        "expected {want}-tuple, got {} elements",
                        arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

// Identity conversions so `Value` itself can pass through the API.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
