//! Offline stand-in for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! in-tree `serde` shim's value-tree model. The parser walks the raw
//! `proc_macro` token stream (no `syn`/`quote` — the build environment
//! has no crates.io access) and supports the shapes this workspace
//! actually uses: named structs, tuple structs, unit structs, enums with
//! unit/newtype/tuple/struct variants, lifetime-only generics, and the
//! `#[serde(default)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    has_default: bool,
}

enum VariantBody {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Raw generic parameter names, e.g. `["'a"]` or `["T"]`.
    params: Vec<String>,
    body: Body,
}

/// Derives the shim `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (doc comments, remaining derives, #[serde]).
    let is_struct = loop {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => break true,
            TokenTree::Ident(id) if id.to_string() == "enum" => break false,
            _ => i += 1,
        }
    };
    i += 1;

    let name = toks[i].to_string();
    i += 1;

    // Generic parameter list (lifetimes and plain type params only).
    let mut params = Vec::new();
    if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '<') {
        let mut depth = 0i32;
        let mut seg: Vec<&TokenTree> = Vec::new();
        loop {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    if depth > 1 {
                        seg.push(&toks[i]);
                    }
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        if !seg.is_empty() {
                            params.push(param_name(&seg));
                        }
                        i += 1;
                        break;
                    }
                    seg.push(&toks[i]);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    if !seg.is_empty() {
                        params.push(param_name(&seg));
                    }
                    seg.clear();
                }
                t => {
                    if depth >= 1 {
                        seg.push(t);
                    }
                }
            }
            i += 1;
        }
    }

    let body = if is_struct {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_top_level_segments(g.stream()))
            }
            _ => Body::Unit,
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum without a body"),
        }
    };

    Input { name, params, body }
}

/// Extracts a generic parameter's name from its token segment:
/// `'a`, `T`, `T: Bound`, `const N: usize`.
fn param_name(seg: &[&TokenTree]) -> String {
    match seg[0] {
        TokenTree::Punct(p) if p.as_char() == '\'' => format!("'{}", seg[1]),
        TokenTree::Ident(id) if id.to_string() == "const" => seg[1].to_string(),
        t => t.to_string(),
    }
}

fn attr_is_serde_default(g: &proc_macro::Group) -> bool {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
            if id.to_string() == "serde" =>
        {
            inner
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let mut has_default = false;
        while matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                has_default |= attr_is_serde_default(g);
            }
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = toks[i].to_string();
        i += 2; // name, ':'

        // Skip the type: everything up to the next comma outside angle
        // brackets (parens/brackets/braces arrive as single group tokens).
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        out.push(Field { name, has_default });
    }
    out
}

/// Counts comma-separated segments at the top level of a token stream
/// (i.e. tuple-struct / tuple-variant arity).
fn count_top_level_segments(ts: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut segments = 0usize;
    let mut seen_any = false;
    for t in ts {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                segments += 1;
                seen_any = false;
                continue;
            }
            _ => {}
        }
        seen_any = true;
    }
    if seen_any {
        segments += 1;
    }
    segments
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        while matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        let name = toks[i].to_string();
        i += 1;
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_top_level_segments(g.stream()) {
                    1 => VariantBody::Newtype,
                    n => VariantBody::Tuple(n),
                }
            }
            _ => VariantBody::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
            }
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        out.push(Variant { name, body });
    }
    out
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `(impl_generics, ty_generics)` strings, with `bound` added to every
/// plain type parameter on the impl side.
fn generics(input: &Input, bound: &str) -> (String, String) {
    if input.params.is_empty() {
        return (String::new(), String::new());
    }
    let impl_params: Vec<String> = input
        .params
        .iter()
        .map(|p| {
            if p.starts_with('\'') {
                p.clone()
            } else {
                format!("{p}: {bound}")
            }
        })
        .collect();
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", input.params.join(", ")),
    )
}

fn gen_serialize(input: &Input) -> String {
    let (ig, tg) = generics(input, "::serde::Serialize");
    let name = &input.name;
    let body = match &input.body {
        Body::Unit => "::serde::value::Value::Null".to_string(),
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", elems.join(", "))
        }
        Body::Named(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::value::Value::Object(vec![{}])", pushes.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.body {
                        VariantBody::Unit => format!(
                            "{name}::{vn} => ::serde::value::Value::String(\"{vn}\".to_string()),"
                        ),
                        VariantBody::Newtype => format!(
                            "{name}::{vn}(__f0) => ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantBody::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), ::serde::value::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantBody::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::value::Value::Object(vec![(\"{vn}\".to_string(), ::serde::value::Value::Object(vec![{}]))]),",
                                binds.join(", "),
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl {ig} ::serde::Serialize for {name} {tg} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn field_extraction(ty_name: &str, fields: &[Field], obj: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let fallback = if f.has_default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("::serde::__private::missing_field(\"{ty_name}\", \"{}\")?", f.name)
            };
            format!(
                "{0}: match {obj}.iter().find(|__kv| __kv.0 == \"{0}\") {{\n\
                     ::std::option::Option::Some(__kv) => ::serde::Deserialize::from_value(&__kv.1)?,\n\
                     ::std::option::Option::None => {fallback},\n\
                 }},",
                f.name
            )
        })
        .collect();
    inits.join("\n")
}

fn gen_deserialize(input: &Input) -> String {
    let (ig, tg) = generics(input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.body {
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::value::Error::new(\"expected array for `{name}`\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::value::Error::new(\"wrong arity for `{name}`\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::Named(fields) => {
            let inits = field_extraction(name, fields, "__obj");
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::value::Error::new(\"expected object for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}\n}})"
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.body, VariantBody::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.body {
                        VariantBody::Unit => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ),
                        VariantBody::Newtype => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                        ),
                        VariantBody::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__arr[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __arr = __payload.as_array().ok_or_else(|| ::serde::value::Error::new(\"expected array for `{name}::{vn}`\"))?;\n\
                                     if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::value::Error::new(\"wrong arity for `{name}::{vn}`\")); }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                elems.join(", ")
                            )
                        }
                        VariantBody::Named(fields) => {
                            let inits = field_extraction(&format!("{name}::{vn}"), fields, "__vobj");
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __vobj = __payload.as_object().ok_or_else(|| ::serde::value::Error::new(\"expected object for `{name}::{vn}`\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{\n{inits}\n}})\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::value::Value::String(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::value::Error::new(format!(\"unknown `{name}` variant {{__other:?}}\"))),\n\
                     }},\n\
                     ::serde::value::Value::Object(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __payload) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::value::Error::new(format!(\"unknown `{name}` variant {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::value::Error::new(format!(\"expected `{name}` variant, got {{__other:?}}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl {ig} ::serde::Deserialize for {name} {tg} {{\n\
             fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::value::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
