//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the exact API surface the workspace uses: `SeedableRng`,
//! the `Rng` extension trait (`gen`, `gen_range`, `gen_bool`) and
//! `rngs::StdRng`. The generator is xoshiro256** (Blackman & Vigna),
//! seeded from the 32-byte seed array — deterministic, fast and of
//! high statistical quality, which is all the simulator requires.
//! Streams are NOT bit-compatible with upstream `rand`; every consumer
//! in this workspace only relies on determinism, not on specific
//! values.

/// Seeding behaviour: construct an RNG from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (always `[u8; 32]` for the RNGs in this shim).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from the seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a single `u64` by expanding it with
    /// SplitMix64, mirroring upstream's `seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64_step(&mut s);
            let bytes = v.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64_step(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// Extension trait with the ergonomic sampling methods.
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly from its "standard"
    /// distribution (full range for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the given range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker + sampling for `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable by `gen_range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`. `lo < hi` is the caller's duty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. `lo <= hi` is the caller's duty.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Width as u128 so `hi - lo` never overflows the target type.
                let span = (hi as i128 - lo as i128) as u128;
                let v = bounded_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
            #[inline]
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full u128 span is impossible for <=64-bit types; the
                    // only overflow case is the full-domain range.
                    return ((rng.next_u64() as i128) + lo as i128) as $t;
                }
                let v = bounded_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` by rejection, avoiding modulo bias.
#[inline]
fn bounded_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Rejection zone: values >= floor(2^64 / span) * span are biased.
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        // span > 2^64 only arises for ranges wider than u64 — not used by
        // this workspace, but handle it for completeness.
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v < (u128::MAX / span) * span {
                return v % span;
            }
        }
    }
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <$t as Standard>::sample(rng);
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to `hi`.
                if v < hi { v } else { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) }
            }
            #[inline]
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <$t as Standard>::sample(rng);
                let v = lo + (hi - lo) * u;
                if v > hi { hi } else { v }
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range forms accepted by `gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range requires a non-empty range"
        );
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range requires a non-empty range");
        T::sample_closed(rng, lo, hi)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator — the shim's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace enables the `small_rng` feature but never
    /// distinguishes the two generators.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::from_seed([1; 32]);
        let mut b = StdRng::from_seed([2; 32]);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 9;
        }
        assert!(seen_lo && seen_hi, "closed range must hit both endpoints");
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-2.5..=4.5);
            assert!((-2.5..=4.5).contains(&v));
            let w: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn mean_of_f64_close_to_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
