//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the API this workspace's benches use —
//! groups, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, `sample_size`, `sampling_mode` — over plain
//! `std::time::Instant` wall-clock measurement. Reported statistics are
//! the min / median / mean over the collected samples (per-iteration
//! time). No plots, no saved baselines.

use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// How samples are scheduled. Accepted for compatibility; this shim
/// always measures the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Criterion's default adaptive mode.
    Auto,
    /// Fixed iteration count per sample (what slow benches request).
    Flat,
    /// Linearly increasing iteration counts.
    Linear,
}

/// Per-iteration input handling for `iter_batched`. Accepted for
/// compatibility; batches are always materialised one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter (grouped benches).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for compatibility; measurement is unaffected.
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Accepted for compatibility; measurement is unaffected.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.name, &b.samples_ns);
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.name, &b.samples_ns);
    }

    /// Ends the group. (No cross-benchmark reporting in this shim.)
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, amortising over enough iterations per sample to
    /// dominate timer overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one
        // sample costs >= ~2ms (or the routine is clearly slow).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break;
            }
            iters *= 2;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate like `iter`, but setup stays outside the timed span.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 16 {
                break;
            }
            iters *= 2;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

fn report(group: &str, name: &str, samples_ns: &[f64]) {
    if samples_ns.is_empty() {
        return;
    }
    let mut sorted = samples_ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let full = if group.is_empty() {
        name.to_owned()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "{full:<48} time: [min {} | median {} | mean {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, running each group. Harness CLI arguments
/// (`--bench`, filters) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        });
        g.finish();
    }
}
