//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::scope` / `Scope::spawn` over `std::thread::scope`
//! (Rust 1.63+), which covers everything this workspace uses. As in
//! crossbeam, `scope` returns `Err` when any spawned thread panicked.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread handle passed to `scope`'s closure and to every
/// spawned thread's closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread scoped to the enclosing `scope` call. The closure
    /// receives the scope again so workers can spawn siblings.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope handle; joins all spawned threads before
/// returning. `Err` carries the payload of the first panic.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_stack_data() {
        let counter = AtomicUsize::new(0);
        let done = super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert!(done.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_worker_yields_err() {
        let r = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn workers_can_spawn_siblings() {
        let counter = AtomicUsize::new(0);
        let r = super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert!(r.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
