//! Reproducible randomness.
//!
//! Every simulation run is a pure function of `(scenario, master seed)`.
//! To keep subsystems statistically independent *and* stable under code
//! reorganisation, each consumer derives its own RNG stream from the
//! master seed and a fixed stream label via SplitMix64 — adding a new
//! consumer never perturbs the draws seen by existing ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Well-known stream labels, so call sites don't sprinkle magic numbers.
pub mod streams {
    /// Node mobility (one sub-stream per node is derived from this).
    pub const MOBILITY: u64 = 0x01;
    /// Message generation (sources, destinations, intervals).
    pub const TRAFFIC: u64 = 0x02;
    /// Buffer policies that randomise (e.g. random drop).
    pub const BUFFER: u64 = 0x03;
    /// Scenario/topology setup (initial placement, hotspot layout).
    pub const TOPOLOGY: u64 = 0x04;
    /// Anything benchmark-local.
    pub const BENCH: u64 = 0x05;
    /// Fault injection (crash/blackout schedules, transfer aborts,
    /// clock skew). A dedicated stream so scenarios without a fault
    /// plan draw nothing from it and stay bit-identical to fault-free
    /// builds.
    pub const FAULTS: u64 = 0x06;
}

/// SplitMix64 step — the standard 64-bit mixer (Steele et al.), used here
/// purely for seed derivation, never for simulation draws.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a 32-byte seed for `(master, stream, substream)`.
fn derive_seed(master: u64, stream: u64, substream: u64) -> [u8; 32] {
    let mut state = master
        ^ stream.wrapping_mul(0xA076_1D64_78BD_642F)
        ^ substream.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    let mut seed = [0u8; 32];
    for chunk in seed.chunks_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    seed
}

/// A deterministic RNG for `(master seed, stream)`.
pub fn stream_rng(master: u64, stream: u64) -> StdRng {
    StdRng::from_seed(derive_seed(master, stream, 0))
}

/// A deterministic RNG for `(master seed, stream, substream)` — e.g. one
/// independent mobility stream per node.
pub fn substream_rng(master: u64, stream: u64, substream: u64) -> StdRng {
    StdRng::from_seed(derive_seed(master, stream, substream))
}

/// Draws uniformly from the closed interval `[lo, hi]`; degenerate
/// intervals (`lo == hi`) return `lo`.
///
/// # Panics
/// Panics if `lo > hi`.
pub fn uniform_range<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "uniform_range requires lo <= hi ({lo} > {hi})");
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Draws from the exponential distribution with the given `rate`
/// (λ, events per second) by inversion.
///
/// # Panics
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    // U in (0, 1]; -ln(U)/λ.
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Samples an index from `weights` proportionally (weights need not be
/// normalised). Zero-total weights fall back to index 0.
///
/// # Panics
/// Panics if `weights` is empty or any weight is negative.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0, "weights must be non-negative");
            w
        })
        .sum();
    if total <= 0.0 {
        return 0;
    }
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = stream_rng(42, streams::MOBILITY);
        let mut b = stream_rng(42, streams::MOBILITY);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = stream_rng(42, streams::MOBILITY);
        let mut b = stream_rng(42, streams::TRAFFIC);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substreams_differ() {
        let mut a = substream_rng(7, streams::MOBILITY, 0);
        let mut b = substream_rng(7, streams::MOBILITY, 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn different_masters_differ() {
        let mut a = stream_rng(1, streams::TRAFFIC);
        let mut b = stream_rng(2, streams::TRAFFIC);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = stream_rng(3, streams::BENCH);
        for _ in 0..1000 {
            let v = uniform_range(&mut rng, 10.0, 15.0);
            assert!((10.0..=15.0).contains(&v));
        }
        assert_eq!(uniform_range(&mut rng, 4.0, 4.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn uniform_range_rejects_inverted() {
        let mut rng = stream_rng(3, streams::BENCH);
        let _ = uniform_range(&mut rng, 5.0, 1.0);
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = stream_rng(9, streams::BENCH);
        let rate = 0.25;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        let expect = 1.0 / rate;
        assert!(
            (mean - expect).abs() < 0.1 * expect,
            "mean {mean} far from {expect}"
        );
    }

    #[test]
    fn exponential_is_non_negative() {
        let mut rng = stream_rng(10, streams::BENCH);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 2.0) >= 0.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = stream_rng(11, streams::BENCH);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_zero_total_falls_back() {
        let mut rng = stream_rng(12, streams::BENCH);
        assert_eq!(weighted_index(&mut rng, &[0.0, 0.0]), 0);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut s1 = 123u64;
        let mut s2 = 123u64;
        assert_eq!(splitmix64(&mut s1), splitmix64(&mut s2));
        assert_eq!(s1, s2);
    }
}
