//! 2-D geometry: points, vectors and axis-aligned rectangles.
//!
//! All coordinates are metres in a flat plane — the paper's scenarios are
//! a 4500 m x 3400 m playground (Table II) and a city-scale taxi area, for
//! which planar geometry is entirely adequate.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A position in the plane, metres.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Easting, metres.
    pub x: f64,
    /// Northing, metres.
    pub y: f64,
}

/// A displacement in the plane, metres.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component, metres.
    pub x: f64,
    /// Y component, metres.
    pub y: f64,
}

impl Point2 {
    /// Constructs a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).length()
    }

    /// Squared Euclidean distance (avoids the sqrt in range tests).
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y
    }

    /// Linear interpolation: `self` at `f = 0`, `other` at `f = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, f: f64) -> Point2 {
        self + (other - self) * f
    }
}

impl Vec2 {
    /// Constructs a vector.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared length.
    #[inline]
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Unit vector in the same direction; the zero vector stays zero.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len == 0.0 {
            Vec2::default()
        } else {
            Vec2::new(self.x / len, self.y / len)
        }
    }

    /// Unit vector at `angle` radians from the +x axis.
    #[inline]
    pub fn from_angle(angle: f64) -> Vec2 {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, v: Vec2) -> Point2 {
        Point2::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    #[inline]
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, other: Point2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// An axis-aligned rectangle `[0-anchored or arbitrary]`, used as the
/// simulation playground.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl Rect {
    /// Rectangle spanning `min..max`.
    ///
    /// # Panics
    /// Panics if the rectangle would be inverted or degenerate.
    pub fn new(min: Point2, max: Point2) -> Self {
        assert!(
            max.x > min.x && max.y > min.y,
            "Rect must have positive area: {min:?}..{max:?}"
        );
        Rect { min, max }
    }

    /// Rectangle anchored at the origin with the given extent (the form
    /// used by the paper's "4500m x 3400m" playground).
    pub fn from_size(width: f64, height: f64) -> Self {
        Rect::new(Point2::new(0.0, 0.0), Point2::new(width, height))
    }

    /// Width, metres.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height, metres.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area, square metres.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// True if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Point2 {
        Point2::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distances() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(5.0, -2.0));
    }

    #[test]
    fn vector_ops() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_sq(), 25.0);
        let u = v.normalized();
        assert!((u.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::default().normalized(), Vec2::default());
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(-v, Vec2::new(-3.0, -4.0));
        assert_eq!(v + v, Vec2::new(6.0, 8.0));
        assert_eq!(v - v, Vec2::default());
    }

    #[test]
    fn from_angle_is_unit() {
        for i in 0..16 {
            let a = i as f64 * std::f64::consts::TAU / 16.0;
            let v = Vec2::from_angle(a);
            assert!((v.length() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rect_basics() {
        let r = Rect::from_size(4500.0, 3400.0);
        assert_eq!(r.width(), 4500.0);
        assert_eq!(r.height(), 3400.0);
        assert_eq!(r.area(), 4500.0 * 3400.0);
        assert!(r.contains(Point2::new(0.0, 0.0)));
        assert!(r.contains(Point2::new(4500.0, 3400.0)));
        assert!(!r.contains(Point2::new(-1.0, 5.0)));
        assert_eq!(r.center(), Point2::new(2250.0, 1700.0));
        assert_eq!(r.clamp(Point2::new(9999.0, -5.0)), Point2::new(4500.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn degenerate_rect_rejected() {
        let _ = Rect::new(Point2::new(0.0, 0.0), Point2::new(0.0, 5.0));
    }

    proptest! {
        #[test]
        fn prop_clamp_is_inside(x in -1e4f64..2e4, y in -1e4f64..2e4) {
            let r = Rect::from_size(4500.0, 3400.0);
            prop_assert!(r.contains(r.clamp(Point2::new(x, y))));
        }

        #[test]
        fn prop_distance_symmetric(ax in -1e3f64..1e3, ay in -1e3f64..1e3,
                                   bx in -1e3f64..1e3, by in -1e3f64..1e3) {
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
            prop_assert!(a.distance(b) >= 0.0);
        }
    }
}
