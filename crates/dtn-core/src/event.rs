//! Deterministic future-event list.
//!
//! [`EventQueue`] is a min-heap keyed on `(SimTime, sequence)`, so events
//! scheduled for the same instant pop in the order they were pushed
//! (FIFO). That stability is what makes whole simulation runs a pure
//! function of `(scenario, seed)` — an unordered heap would let hash-map
//! iteration order leak into results.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: payload `E` due at `time`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse both keys for earliest-first,
        // FIFO-within-instant ordering.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of future events.
///
/// ```
/// use dtn_core::event::EventQueue;
/// use dtn_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// q.push(SimTime::from_secs(1.0), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`. Events at equal times pop in push
    /// order.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events (the sequence counter keeps increasing so
    /// determinism is preserved across clears).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of events ever pushed (diagnostic).
    pub fn pushed_total(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5.0), 5);
        q.push(t(1.0), 1);
        q.push(t(3.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(7.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(t(1.0), "a");
        q.push(t(2.0), "b");
        assert_eq!(q.pop_until(t(1.5)), Some((t(1.0), "a")));
        assert_eq!(q.pop_until(t(1.5)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_until(t(2.0)), Some((t(2.0), "b")));
    }

    #[test]
    fn peek_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(t(4.0), ());
        q.push(t(2.0), ());
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pushed_total(), 2);
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and at
        /// equal times the insertion order is preserved.
        #[test]
        fn prop_sorted_stable(times in prop::collection::vec(0u32..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &tt) in times.iter().enumerate() {
                q.push(t(tt as f64), (tt, i));
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((time, (_, idx))) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(time >= lt);
                    if time == lt {
                        prop_assert!(idx > lidx, "FIFO violated at equal time");
                    }
                }
                last = Some((time, idx));
            }
        }
    }
}
