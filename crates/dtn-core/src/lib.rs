//! # dtn-core
//!
//! Foundation crate of the SDSRP reproduction: a deterministic
//! discrete-event simulation (DES) engine plus the geometric, statistical
//! and identifier primitives every other crate builds on.
//!
//! The crate deliberately contains **no DTN semantics** — it only knows
//! about time, events, 2-D space and numbers. The delay-tolerant-network
//! model (nodes, messages, buffers, contacts) lives in the crates layered
//! on top (`dtn-mobility`, `dtn-net`, `dtn-buffer`, `sdsrp-core`,
//! `dtn-routing`, `dtn-sim`).
//!
//! ## Modules
//!
//! * [`time`] — [`SimTime`](time::SimTime) / [`SimDuration`](time::SimDuration):
//!   simulation clock arithmetic with total ordering.
//! * [`ids`] — [`NodeId`](ids::NodeId) and [`MessageId`](ids::MessageId)
//!   newtypes.
//! * [`event`] — deterministic [`EventQueue`](event::EventQueue) with
//!   stable FIFO tie-breaking at equal timestamps.
//! * [`engine`] — a minimal event-driven run loop over a user-supplied
//!   handler.
//! * [`geometry`] — [`Point2`](geometry::Point2), [`Vec2`](geometry::Vec2),
//!   [`Rect`](geometry::Rect).
//! * [`grid`] — a uniform spatial hash grid for radius queries in amortised
//!   O(1) per node.
//! * [`pool`] — a deterministic fork-join thread pool (contiguous band
//!   partitioning, band-order merges) for the parallel world phases.
//! * [`rng`] — reproducible per-stream RNG derivation from a master seed.
//! * [`stats`] — online (Welford) statistics, histograms and summaries.
//! * [`units`] — byte counts and bit-rates with transfer-time arithmetic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod event;
pub mod geometry;
pub mod grid;
pub mod ids;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

/// Convenience re-exports of the items used by practically every
/// downstream crate.
pub mod prelude {
    pub use crate::event::EventQueue;
    pub use crate::geometry::{Point2, Rect, Vec2};
    pub use crate::ids::{MessageId, NodeId};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::units::{Bytes, DataRate};
}
