//! Simulation clock primitives.
//!
//! Simulation time is a non-negative number of seconds stored as `f64`.
//! The paper's scenarios span 18 000 s with sub-second transfer events, so
//! `f64` (53-bit mantissa) gives far more than enough resolution while
//! keeping the arithmetic natural. [`SimTime`] is totally ordered; the
//! constructors reject NaN so `Ord` can be implemented safely.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in seconds since the start of the
/// simulation.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span between two [`SimTime`] instants, in seconds. May be produced
/// negative by subtraction; use [`SimDuration::max(ZERO)`](SimDuration::max)
/// when a non-negative span is required.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation origin, `t = 0`.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time later than every real event; useful as a sentinel.
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Creates a time from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative: simulation time never runs
    /// backwards past the origin, and NaN would poison the event queue
    /// ordering.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative: {secs}");
        SimTime(secs)
    }

    /// Seconds since the simulation origin.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Span from `earlier` to `self` (may be negative if `earlier` is
    /// actually later).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// True for the `INFINITY` sentinel.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// An unbounded span; useful as a sentinel for "never".
    pub const INFINITY: SimDuration = SimDuration(f64::INFINITY);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimDuration cannot be NaN");
        SimDuration(secs)
    }

    /// Creates a duration from whole minutes (the paper quotes TTLs in
    /// minutes, e.g. `TTL = 300 mins`).
    #[inline]
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// The span in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// True if the span is negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }

    /// Clamps a (possibly negative) span to zero.
    #[inline]
    pub fn clamp_non_negative(self) -> SimDuration {
        SimDuration(self.0.max(0.0))
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Constructors reject NaN, so partial_cmp never fails.
        self.partial_cmp(other).expect("SimTime is never NaN")
    }
}

impl Eq for SimDuration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimDuration {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("SimDuration is never NaN")
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl Default for SimDuration {
    fn default() -> Self {
        SimDuration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(1.5).as_secs(), 1.5);
        assert_eq!(SimDuration::from_secs(-2.0).as_secs(), -2.0);
        assert_eq!(SimDuration::from_mins(300.0).as_secs(), 18_000.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_duration_rejected() {
        let _ = SimDuration::from_secs(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(2.5);
        assert_eq!((t + d).as_secs(), 12.5);
        assert_eq!((t - d).as_secs(), 7.5);
        assert_eq!((t - SimTime::from_secs(4.0)).as_secs(), 6.0);
        assert_eq!((d + d).as_secs(), 5.0);
        assert_eq!((d - d).as_secs(), 0.0);
        assert_eq!((d * 4.0).as_secs(), 10.0);
        assert_eq!((d / 2.0).as_secs(), 1.25);
        assert_eq!(d / SimDuration::from_secs(0.5), 5.0);
    }

    #[test]
    fn ordering_and_extremes() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::INFINITY > b);
        assert!(!SimTime::INFINITY.is_finite());
        assert!(a.is_finite());
        let d = SimDuration::from_secs(-1.0);
        assert!(d.is_negative());
        assert_eq!(d.clamp_non_negative(), SimDuration::ZERO);
    }

    #[test]
    fn since_is_signed() {
        let a = SimTime::from_secs(5.0);
        let b = SimTime::from_secs(8.0);
        assert_eq!(b.since(a).as_secs(), 3.0);
        assert_eq!(a.since(b).as_secs(), -3.0);
    }

    #[test]
    fn assign_ops() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(3.0);
        assert_eq!(t.as_secs(), 3.0);
        let mut d = SimDuration::from_secs(1.0);
        d += SimDuration::from_secs(2.0);
        d -= SimDuration::from_secs(0.5);
        assert_eq!(d.as_secs(), 2.5);
    }
}
