//! Deterministic fork-join thread pool for the parallel world phases.
//!
//! The simulator's parallelism contract is *bit-identical results at
//! any thread count*, so this pool is deliberately not a work-stealing
//! scheduler: work is partitioned into contiguous index bands up front
//! (a pure function of `(item_count, thread_count)`), every band writes
//! only its own output slot, and callers merge outputs in band order.
//! Because per-item work never depends on which band (or thread) ran
//! it, the merged result is identical to a serial left-to-right pass —
//! that is the whole determinism argument, and the thread-count
//! differential tests in `dtn-sim` enforce it end to end.
//!
//! Workers are persistent (spawned once, parked on a condvar between
//! regions) so a per-tick fork-join costs two lock round-trips instead
//! of thread spawns. A pool of one thread runs everything inline on the
//! caller and spawns nothing — the serial reference path.

use std::ops::Range;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A broadcast job: every participant runs it once with its own worker
/// index. The `'static` lifetime is a lie told privately inside
/// [`Pool::run`], which blocks until all workers are done with the
/// borrow.
type Job = &'static (dyn Fn(usize) + Sync);

struct State {
    /// Bumped once per broadcast region; workers pick up a job when the
    /// epoch moves past the one they last served.
    epoch: u64,
    job: Option<Job>,
    /// Background workers still running the current job.
    remaining: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
}

/// A fixed-size fork-join pool. See the module docs for the
/// determinism contract.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Background workers; total participants = `workers + 1` (the
    /// calling thread joins every region).
    workers: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Pool {
    /// Creates a pool with `threads` total participants (clamped to at
    /// least 1). `Pool::new(1)` spawns no OS threads.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dtn-pool-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            workers: threads - 1,
        }
    }

    /// Total participants, the calling thread included.
    pub fn threads(&self) -> usize {
        self.workers + 1
    }

    /// Runs `f(participant_index)` once on every participant
    /// (indices `0..threads()`, the caller runs index 0) and blocks
    /// until all are done. With one thread this is a plain call.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.workers == 0 {
            f(0);
            return;
        }
        // SAFETY: only the lifetime is transmuted. Workers touch `job`
        // exclusively between picking up this epoch and decrementing
        // `remaining`, and we block below until `remaining == 0`, so
        // the borrow strictly outlives every use.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.job = Some(job);
            st.epoch += 1;
            st.remaining = self.workers;
            self.shared.work.notify_all();
        }
        f(0);
        let mut st = self.shared.state.lock().expect("pool lock");
        while st.remaining > 0 {
            st = self.shared.done.wait(st).expect("pool wait");
        }
        st.job = None;
    }

    /// Partitions `0..n` into one contiguous band per participant and
    /// returns `f(band)` for every non-empty band, in band (= index)
    /// order. The band boundaries depend on the thread count but the
    /// concatenated coverage is always exactly `0..n` left to right, so
    /// order-preserving merges are thread-count-invariant.
    pub fn map_bands<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = bands(n, self.threads());
        if self.workers == 0 || ranges.len() <= 1 {
            return ranges.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
        self.run(&|w| {
            if let Some(range) = ranges.get(w) {
                let r = f(range.clone());
                *slots[w].lock().expect("band slot") = Some(r);
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("band slot").expect("band ran"))
            .collect()
    }

    /// Runs `f(offset, a_band, b_band)` over matching contiguous bands
    /// of two equal-length slices, one band per participant. Each item
    /// is visited exactly once; which thread visits it must not matter
    /// (per-item outputs only), which is what keeps the result
    /// identical at any thread count.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn zip_for_each<A, B, F>(&self, a: &mut [A], b: &mut [B], f: F)
    where
        A: Send,
        B: Send,
        F: Fn(usize, &mut [A], &mut [B]) + Sync,
    {
        assert_eq!(a.len(), b.len(), "zip_for_each slice length mismatch");
        let ranges = bands(a.len(), self.threads());
        if self.workers == 0 || ranges.len() <= 1 {
            for range in ranges {
                f(range.start, &mut a[range.clone()], &mut b[range]);
            }
            return;
        }
        type ZipTask<'s, A, B> = Mutex<Option<(usize, &'s mut [A], &'s mut [B])>>;
        let mut tasks: Vec<ZipTask<'_, A, B>> = Vec::new();
        let (mut rest_a, mut rest_b) = (a, b);
        let mut offset = 0;
        for range in &ranges {
            let len = range.len();
            let (band_a, ra) = rest_a.split_at_mut(len);
            let (band_b, rb) = rest_b.split_at_mut(len);
            tasks.push(Mutex::new(Some((offset, band_a, band_b))));
            rest_a = ra;
            rest_b = rb;
            offset += len;
        }
        self.run(&|w| {
            if let Some(slot) = tasks.get(w) {
                if let Some((off, band_a, band_b)) = slot.lock().expect("zip slot").take() {
                    f(off, band_a, band_b);
                }
            }
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("job set with epoch");
                }
                st = shared.work.wait(st).expect("pool wait");
            }
        };
        job(idx);
        let mut st = shared.state.lock().expect("pool lock");
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Splits `0..n` into up to `parts` contiguous near-equal ranges
/// (larger ranges first), skipping empty ones. Pure in `(n, parts)`:
/// the same inputs always produce the same partition.
pub fn bands(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn bands_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 17] {
                let ranges = bands(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap before {r:?} (n={n}, parts={parts})");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n, "coverage short (n={n}, parts={parts})");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(&|w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn every_participant_runs_each_region() {
        let pool = Pool::new(4);
        for _ in 0..50 {
            let hits = AtomicUsize::new(0);
            pool.run(&|_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 4);
        }
    }

    #[test]
    fn map_bands_is_thread_count_invariant() {
        let square = |r: Range<usize>| -> Vec<usize> { r.map(|i| i * i).collect() };
        let serial: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            let merged: Vec<usize> = pool.map_bands(1000, square).into_iter().flatten().collect();
            assert_eq!(merged, serial, "threads={threads}");
        }
    }

    #[test]
    fn zip_for_each_visits_every_item_once() {
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            let mut a: Vec<u64> = (0..777).collect();
            let mut b: Vec<u64> = vec![0; 777];
            pool.zip_for_each(&mut a, &mut b, |offset, aa, bb| {
                for (k, (x, y)) in aa.iter_mut().zip(bb.iter_mut()).enumerate() {
                    *x += 1;
                    *y = (offset + k) as u64;
                }
            });
            assert!(a.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
            assert!(b.iter().enumerate().all(|(i, &y)| y == i as u64));
        }
    }

    #[test]
    fn map_bands_handles_fewer_items_than_threads() {
        let pool = Pool::new(8);
        let out = pool.map_bands(3, |r| r.collect::<Vec<_>>());
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, vec![0, 1, 2]);
        let empty = pool.map_bands(0, |r| r.len());
        assert!(empty.is_empty());
    }
}
