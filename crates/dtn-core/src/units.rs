//! Storage and bandwidth units.
//!
//! The paper quotes buffers in megabytes (2–5 MB), message sizes in
//! megabytes (0.5 MB) and the radio bitrate in kilobits per second
//! (250 kbps). Mixing bytes and bits by hand is a classic source of 8x
//! errors, so both quantities get newtypes and the conversion lives in
//! exactly one place ([`DataRate::transfer_time`]).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A byte count (buffer capacities, message sizes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// From raw bytes.
    #[inline]
    pub const fn new(b: u64) -> Self {
        Bytes(b)
    }

    /// From kilobytes (1 kB = 1000 B, the convention ONE uses).
    #[inline]
    pub fn from_kb(kb: f64) -> Self {
        Bytes((kb * 1_000.0).round() as u64)
    }

    /// From megabytes (1 MB = 1 000 000 B).
    #[inline]
    pub fn from_mb(mb: f64) -> Self {
        Bytes((mb * 1_000_000.0).round() as u64)
    }

    /// Raw byte count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// As megabytes.
    #[inline]
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: Bytes) -> Option<Bytes> {
        self.0.checked_sub(other.0).map(Bytes)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, other: Bytes) -> Bytes {
        Bytes(self.0 + other.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, other: Bytes) {
        self.0 += other.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, other: Bytes) -> Bytes {
        Bytes(
            self.0
                .checked_sub(other.0)
                .expect("Bytes subtraction underflow"),
        )
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, other: Bytes) {
        *self = *self - other;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}MB", self.as_mb())
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A link bitrate, bits per second.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Serialize, Deserialize)]
pub struct DataRate {
    bits_per_sec: f64,
}

impl DataRate {
    /// From bits per second.
    ///
    /// # Panics
    /// Panics unless the rate is strictly positive and finite.
    #[inline]
    pub fn from_bps(bps: f64) -> Self {
        assert!(
            bps > 0.0 && bps.is_finite(),
            "data rate must be positive and finite"
        );
        DataRate { bits_per_sec: bps }
    }

    /// From kilobits per second (the paper's "250Kbps").
    #[inline]
    pub fn from_kbps(kbps: f64) -> Self {
        Self::from_bps(kbps * 1_000.0)
    }

    /// Bits per second.
    #[inline]
    pub fn as_bps(self) -> f64 {
        self.bits_per_sec
    }

    /// Bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.bits_per_sec / 8.0
    }

    /// Time to push `size` through this link.
    ///
    /// 0.5 MB at 250 kbps = 4 000 000 bits / 250 000 bps = 16 s — the
    /// paper's single-message transfer time.
    #[inline]
    pub fn transfer_time(self, size: Bytes) -> SimDuration {
        SimDuration::from_secs(size.as_u64() as f64 * 8.0 / self.bits_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::from_mb(2.5).as_u64(), 2_500_000);
        assert_eq!(Bytes::from_kb(1.5).as_u64(), 1_500);
        assert_eq!(Bytes::from_mb(0.5).as_mb(), 0.5);
    }

    #[test]
    fn byte_arithmetic() {
        let a = Bytes::new(100);
        let b = Bytes::new(30);
        assert_eq!(a + b, Bytes::new(130));
        assert_eq!(a - b, Bytes::new(70));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub(b), Some(Bytes::new(70)));
        let mut c = a;
        c += b;
        c -= Bytes::new(10);
        assert_eq!(c, Bytes::new(120));
        let total: Bytes = [a, b, b].into_iter().sum();
        assert_eq!(total, Bytes::new(160));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn byte_sub_underflow_panics() {
        let _ = Bytes::new(1) - Bytes::new(2);
    }

    #[test]
    fn paper_transfer_time() {
        // Table II: 0.5 MB message over 250 kbps takes 16 s.
        let rate = DataRate::from_kbps(250.0);
        let t = rate.transfer_time(Bytes::from_mb(0.5));
        assert!((t.as_secs() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn rate_accessors() {
        let r = DataRate::from_kbps(250.0);
        assert_eq!(r.as_bps(), 250_000.0);
        assert_eq!(r.bytes_per_sec(), 31_250.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = DataRate::from_bps(0.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Bytes::from_mb(2.5)), "2.50MB");
        assert_eq!(format!("{}", Bytes::new(512)), "512B");
    }
}
