//! Online statistics and histograms.
//!
//! The simulator streams millions of samples (intermeeting times, buffer
//! occupancy, latencies); [`OnlineStats`] accumulates mean/variance in one
//! pass with Welford's algorithm, and [`Histogram`] bins samples for the
//! distribution figures (paper Fig. 3).

use serde::{Deserialize, Serialize};

/// Single-pass mean / variance / min / max accumulator (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or `None` before the first sample.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample variance, or `None` with fewer than two samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean * self.n as f64
    }
}

/// Fixed-width histogram over `[lo, hi)` with an overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` buckets of equal width covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
            total: 0,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Number of bins (excluding under/overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.width
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        self.width
    }

    /// Total samples pushed (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Empirical probability density in bin `i` (normalised so the
    /// in-range density integrates to the in-range mass fraction).
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / (self.total as f64 * self.width)
        }
    }

    /// Merges another histogram with identical binning.
    ///
    /// # Panics
    /// Panics if the bin layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.width, other.width, "histogram width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.underflow += other.underflow;
        self.total += other.total;
    }
}

/// Exact empirical percentile from a mutable sample buffer
/// (`q` in `[0, 1]`, nearest-rank). Returns `None` on an empty slice or
/// a `q` outside `[0, 1]` (including NaN) — an out-of-range quantile is
/// a caller bug, but answering it with a silently clamped sample would
/// hide it, and panicking from a metrics path took down whole sweep
/// cells.
///
/// Boundary semantics: `q = 0` is the minimum, `q = 1` the maximum, and
/// a single-sample buffer answers every valid `q` with that sample.
pub fn percentile(samples: &mut [f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    Some(samples[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_matches_closed_form() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_return_none() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample_has_no_variance() {
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.variance(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        // Merging an empty accumulator is a no-op either way.
        let mut empty = OnlineStats::new();
        empty.merge(&whole);
        assert_eq!(empty.count(), whole.count());
        whole.merge(&OnlineStats::new());
        assert_eq!(whole.count(), 100);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 55.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(0), 2); // 0.0, 1.9
        assert_eq!(h.count(1), 1); // 2.0
        assert_eq!(h.count(4), 1); // 9.99
        assert_eq!(h.total(), 7);
        assert_eq!(h.bins(), 5);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_lo(3), 6.0);
        assert_eq!(h.bin_width(), 2.0);
    }

    #[test]
    fn histogram_density_sums_to_in_range_mass() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..100 {
            h.push(i as f64 / 100.0);
        }
        let integral: f64 = (0..h.bins()).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.push(1.0);
        b.push(1.5);
        b.push(11.0);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn histogram_merge_rejects_different_layout() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 10);
        a.merge(&b);
    }

    #[test]
    fn percentiles() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 0.5), Some(3.0));
        assert_eq!(percentile(&mut v, 0.0), Some(1.0));
        assert_eq!(percentile(&mut v, 1.0), Some(5.0));
        assert_eq!(percentile(&mut [], 0.5), None);
    }

    #[test]
    fn percentile_boundaries() {
        // Single sample: every valid q answers with it.
        for q in [0.0, 1e-9, 0.25, 0.5, 0.999, 1.0] {
            assert_eq!(percentile(&mut [7.0], q), Some(7.0));
        }
        // Two samples: anything in (0, 0.5] is the first, above the second.
        let mut two = [10.0, 20.0];
        assert_eq!(percentile(&mut two, 0.0), Some(10.0));
        assert_eq!(percentile(&mut two, 0.5), Some(10.0));
        assert_eq!(percentile(&mut two, 0.5 + 1e-12), Some(20.0));
        assert_eq!(percentile(&mut two, 1.0), Some(20.0));
        // Out-of-range or NaN q: None, never a clamped sample or a panic.
        let mut v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&mut v, -0.1), None);
        assert_eq!(percentile(&mut v, 1.1), None);
        assert_eq!(percentile(&mut v, f64::NAN), None);
        assert_eq!(percentile(&mut v, f64::INFINITY), None);
        assert_eq!(percentile(&mut v, f64::NEG_INFINITY), None);
        // Empty slice with a bad q is still None (no order of checks
        // can panic).
        assert_eq!(percentile(&mut [], f64::NAN), None);
    }

    proptest! {
        #[test]
        fn prop_merge_associative(
            xs in prop::collection::vec(-1e3f64..1e3, 1..50),
            ys in prop::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            let mut all = OnlineStats::new();
            for &x in xs.iter().chain(&ys) { all.push(x); }
            let mut a = OnlineStats::new();
            for &x in &xs { a.push(x); }
            let mut b = OnlineStats::new();
            for &y in &ys { b.push(y); }
            a.merge(&b);
            prop_assert!((a.mean().unwrap() - all.mean().unwrap()).abs() < 1e-6);
            prop_assert_eq!(a.count(), all.count());
        }

        #[test]
        fn prop_percentile_matches_sorted_reference(
            xs in prop::collection::vec(-1e6f64..1e6, 1..64),
            q in 0.0f64..=1.0,
        ) {
            // Nearest-rank reference: sort, take element ceil(q*n)
            // (1-based), with q = 0 pinned to the minimum.
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            let n = sorted.len();
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let expect = sorted[rank - 1];
            let mut buf = xs.clone();
            prop_assert_eq!(percentile(&mut buf, q), Some(expect));
            // The result is always an actual sample within [min, max].
            let got = percentile(&mut buf, q).unwrap();
            prop_assert!(got >= sorted[0] && got <= sorted[n - 1]);
        }

        #[test]
        fn prop_percentile_rejects_out_of_range_q(
            xs in prop::collection::vec(-1e6f64..1e6, 0..16),
            q in prop_oneof![
                -10.0f64..10.0,
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ],
        ) {
            let mut buf = xs.clone();
            let got = percentile(&mut buf, q);
            if xs.is_empty() || !(0.0..=1.0).contains(&q) {
                prop_assert_eq!(got, None);
            } else {
                prop_assert!(got.is_some());
            }
        }

        #[test]
        fn prop_histogram_conserves_samples(
            xs in prop::collection::vec(-10.0f64..20.0, 0..200),
        ) {
            let mut h = Histogram::new(0.0, 10.0, 7);
            for &x in &xs { h.push(x); }
            let binned: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
            prop_assert_eq!(binned + h.overflow() + h.underflow(), xs.len() as u64);
        }
    }
}
