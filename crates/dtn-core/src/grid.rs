//! Uniform spatial hash grid for neighbour queries.
//!
//! Contact detection needs "which node pairs are within radio range?"
//! every movement tick. A naive scan is O(n^2) per tick; the grid buckets
//! node positions into square cells of side >= the query radius, so each
//! query inspects only the 3x3 cell neighbourhood — amortised O(1) per
//! node for the densities in the paper's scenarios.

use crate::geometry::{Point2, Rect};
use crate::ids::NodeId;

/// A rebuild-per-tick spatial hash grid.
///
/// Usage pattern: call [`rebuild`](SpatialGrid::rebuild) with all node
/// positions each tick, then [`neighbors_within`](SpatialGrid::neighbors_within)
/// or [`pairs_within`](SpatialGrid::pairs_within).
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    bounds: Rect,
    cell: f64,
    cols: usize,
    rows: usize,
    /// CSR layout: `starts[c]..starts[c+1]` indexes into `entries`.
    starts: Vec<u32>,
    entries: Vec<(NodeId, Point2)>,
    scratch_counts: Vec<u32>,
}

impl SpatialGrid {
    /// Creates a grid over `bounds` with cells of at least `cell_size`
    /// metres (typically the radio range).
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn new(bounds: Rect, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let cols = (bounds.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (bounds.height() / cell_size).ceil().max(1.0) as usize;
        SpatialGrid {
            bounds,
            cell: cell_size,
            cols,
            rows,
            starts: vec![0; cols * rows + 1],
            entries: Vec::new(),
            scratch_counts: vec![0; cols * rows],
        }
    }

    #[inline]
    fn cell_of(&self, p: Point2) -> (usize, usize) {
        let q = self.bounds.clamp(p);
        let cx = (((q.x - self.bounds.min.x) / self.cell) as usize).min(self.cols - 1);
        let cy = (((q.y - self.bounds.min.y) / self.cell) as usize).min(self.rows - 1);
        (cx, cy)
    }

    #[inline]
    fn cell_index(&self, cx: usize, cy: usize) -> usize {
        cy * self.cols + cx
    }

    /// Rebuilds the grid from `positions`, a slice indexed by node id.
    /// Positions outside the bounds are clamped into the edge cells.
    pub fn rebuild(&mut self, positions: &[Point2]) {
        let ncells = self.cols * self.rows;
        self.scratch_counts.clear();
        self.scratch_counts.resize(ncells, 0);
        for &p in positions {
            let (cx, cy) = self.cell_of(p);
            let ci = self.cell_index(cx, cy);
            self.scratch_counts[ci] += 1;
        }
        // Prefix sums into starts.
        self.starts.clear();
        self.starts.reserve(ncells + 1);
        let mut acc = 0u32;
        self.starts.push(0);
        for &c in &self.scratch_counts {
            acc += c;
            self.starts.push(acc);
        }
        // Scatter entries (stable within a cell by node id order because we
        // iterate positions in id order and fill cells front-to-back).
        self.entries.clear();
        self.entries
            .resize(positions.len(), (NodeId(0), Point2::default()));
        let mut cursor: Vec<u32> = self.starts[..ncells].to_vec();
        for (i, &p) in positions.iter().enumerate() {
            let (cx, cy) = self.cell_of(p);
            let ci = self.cell_index(cx, cy);
            let slot = cursor[ci] as usize;
            cursor[ci] += 1;
            self.entries[slot] = (NodeId(i as u32), p);
        }
    }

    /// All nodes within `radius` of `p` (excluding `exclude`, typically
    /// the querying node itself), appended to `out` in ascending id order
    /// per cell.
    pub fn neighbors_within(
        &self,
        p: Point2,
        radius: f64,
        exclude: Option<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        let r2 = radius * radius;
        let (cx, cy) = self.cell_of(p);
        let reach = (radius / self.cell).ceil() as isize;
        for dy in -reach..=reach {
            let yy = cy as isize + dy;
            if yy < 0 || yy >= self.rows as isize {
                continue;
            }
            for dx in -reach..=reach {
                let xx = cx as isize + dx;
                if xx < 0 || xx >= self.cols as isize {
                    continue;
                }
                let ci = self.cell_index(xx as usize, yy as usize);
                let range = self.starts[ci] as usize..self.starts[ci + 1] as usize;
                for &(id, q) in &self.entries[range] {
                    if Some(id) == exclude {
                        continue;
                    }
                    if p.distance_sq(q) <= r2 {
                        out.push(id);
                    }
                }
            }
        }
    }

    /// Every unordered pair of distinct nodes within `radius` of each
    /// other, appended to `out` as `(lo, hi)` with `lo < hi`. Each pair is
    /// reported exactly once.
    pub fn pairs_within(&self, radius: f64, out: &mut Vec<(NodeId, NodeId)>) {
        self.pairs_within_rows(radius, 0..self.rows, out);
    }

    /// [`pairs_within`](Self::pairs_within) restricted to the grid rows
    /// in `rows` (a pair is owned by the row of its lexicographically
    /// first cell, so disjoint row bands report disjoint pair sets).
    ///
    /// This is the parallel decomposition point: concatenating the
    /// outputs of any partition of `0..row_count()` into ascending
    /// contiguous bands reproduces the serial `pairs_within` output
    /// byte for byte, because the serial scan already visits rows in
    /// ascending order.
    pub fn pairs_within_rows(
        &self,
        radius: f64,
        rows: std::ops::Range<usize>,
        out: &mut Vec<(NodeId, NodeId)>,
    ) {
        let r2 = radius * radius;
        let reach = (radius / self.cell).ceil() as isize;
        for cy in rows.start..rows.end.min(self.rows) {
            for cx in 0..self.cols {
                let ci = self.cell_index(cx, cy);
                let a_range = self.starts[ci] as usize..self.starts[ci + 1] as usize;
                if a_range.is_empty() {
                    continue;
                }
                for ai in a_range.clone() {
                    let (ida, pa) = self.entries[ai];
                    // Same cell: only later entries, so each in-cell pair
                    // appears once.
                    for bi in (ai + 1)..a_range.end {
                        let (idb, pb) = self.entries[bi];
                        if pa.distance_sq(pb) <= r2 {
                            push_sorted(out, ida, idb);
                        }
                    }
                    // Forward neighbouring cells (strictly greater cell
                    // index) so cross-cell pairs appear once.
                    for dy in 0..=reach {
                        let yy = cy as isize + dy;
                        if yy >= self.rows as isize {
                            continue;
                        }
                        let dx_start = if dy == 0 { 1 } else { -reach };
                        for dx in dx_start..=reach {
                            let xx = cx as isize + dx;
                            if xx < 0 || xx >= self.cols as isize {
                                continue;
                            }
                            let cj = self.cell_index(xx as usize, yy as usize);
                            let b_range = self.starts[cj] as usize..self.starts[cj + 1] as usize;
                            for &(idb, pb) in &self.entries[b_range] {
                                if pa.distance_sq(pb) <= r2 {
                                    push_sorted(out, ida, idb);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Number of cells (diagnostic).
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Number of grid rows — the unit of work for
    /// [`pairs_within_rows`](Self::pairs_within_rows) band partitioning.
    pub fn row_count(&self) -> usize {
        self.rows
    }
}

#[inline]
fn push_sorted(out: &mut Vec<(NodeId, NodeId)>, a: NodeId, b: NodeId) {
    if a < b {
        out.push((a, b));
    } else {
        out.push((b, a));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force_pairs(positions: &[Point2], radius: f64) -> Vec<(NodeId, NodeId)> {
        let mut v = Vec::new();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                if positions[i].distance(positions[j]) <= radius {
                    v.push((NodeId(i as u32), NodeId(j as u32)));
                }
            }
        }
        v.sort();
        v
    }

    #[test]
    fn finds_neighbors() {
        let bounds = Rect::from_size(1000.0, 1000.0);
        let mut g = SpatialGrid::new(bounds, 100.0);
        let pos = vec![
            Point2::new(10.0, 10.0),
            Point2::new(50.0, 10.0),
            Point2::new(500.0, 500.0),
            Point2::new(95.0, 10.0),
        ];
        g.rebuild(&pos);
        let mut out = Vec::new();
        g.neighbors_within(pos[0], 100.0, Some(NodeId(0)), &mut out);
        out.sort();
        assert_eq!(out, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn pairs_match_brute_force_on_cluster() {
        let bounds = Rect::from_size(300.0, 300.0);
        let mut g = SpatialGrid::new(bounds, 100.0);
        let pos = vec![
            Point2::new(0.0, 0.0),
            Point2::new(99.0, 0.0),
            Point2::new(198.0, 0.0),
            Point2::new(99.0, 99.0),
            Point2::new(250.0, 250.0),
        ];
        g.rebuild(&pos);
        let mut out = Vec::new();
        g.pairs_within(100.0, &mut out);
        out.sort();
        assert_eq!(out, brute_force_pairs(&pos, 100.0));
    }

    #[test]
    fn positions_outside_bounds_are_clamped_not_lost() {
        let bounds = Rect::from_size(100.0, 100.0);
        let mut g = SpatialGrid::new(bounds, 50.0);
        let pos = vec![Point2::new(-10.0, 50.0), Point2::new(5.0, 50.0)];
        g.rebuild(&pos);
        let mut out = Vec::new();
        g.pairs_within(20.0, &mut out);
        assert_eq!(out, vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn radius_larger_than_cell_is_handled() {
        // radius spans multiple cells; `reach` must extend the search.
        let bounds = Rect::from_size(1000.0, 1000.0);
        let mut g = SpatialGrid::new(bounds, 50.0);
        let pos = vec![Point2::new(100.0, 100.0), Point2::new(280.0, 100.0)];
        g.rebuild(&pos);
        let mut out = Vec::new();
        g.pairs_within(200.0, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn cell_count_matches_geometry() {
        let g = SpatialGrid::new(Rect::from_size(1000.0, 500.0), 100.0);
        assert_eq!(g.cell_count(), 10 * 5);
        // Non-divisible extents round up.
        let g = SpatialGrid::new(Rect::from_size(1050.0, 510.0), 100.0);
        assert_eq!(g.cell_count(), 11 * 6);
        // A cell larger than the area degenerates to a single cell.
        let g = SpatialGrid::new(Rect::from_size(50.0, 50.0), 100.0);
        assert_eq!(g.cell_count(), 1);
    }

    #[test]
    fn rebuild_clears_previous_state() {
        let mut g = SpatialGrid::new(Rect::from_size(500.0, 500.0), 100.0);
        g.rebuild(&[Point2::new(10.0, 10.0), Point2::new(20.0, 10.0)]);
        let mut out = Vec::new();
        g.pairs_within(50.0, &mut out);
        assert_eq!(out.len(), 1);
        // Rebuild with far-apart points: the old pair must be gone.
        g.rebuild(&[Point2::new(10.0, 10.0), Point2::new(450.0, 450.0)]);
        out.clear();
        g.pairs_within(50.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_grid() {
        let mut g = SpatialGrid::new(Rect::from_size(10.0, 10.0), 5.0);
        g.rebuild(&[]);
        let mut out = Vec::new();
        g.pairs_within(5.0, &mut out);
        assert!(out.is_empty());
        let mut ns = Vec::new();
        g.neighbors_within(Point2::new(1.0, 1.0), 5.0, None, &mut ns);
        assert!(ns.is_empty());
    }

    #[test]
    fn row_bands_concatenate_to_serial_order() {
        // Any contiguous ascending row partition must reproduce the
        // serial pairs_within output exactly — order included. This is
        // the invariant the parallel contact phase rests on.
        let bounds = Rect::from_size(2000.0, 1500.0);
        let mut g = SpatialGrid::new(bounds, 100.0);
        let positions: Vec<Point2> = (0..300)
            .map(|i| Point2::new(((i * 131) % 2000) as f64, ((i * 241) % 1500) as f64))
            .collect();
        g.rebuild(&positions);
        let mut serial = Vec::new();
        g.pairs_within(120.0, &mut serial);
        assert!(!serial.is_empty());
        for parts in [1usize, 2, 3, 5, 8, 64] {
            let mut banded = Vec::new();
            for band in crate::pool::bands(g.row_count(), parts) {
                g.pairs_within_rows(120.0, band, &mut banded);
            }
            assert_eq!(banded, serial, "parts={parts}");
        }
        // A band past the end is harmlessly empty.
        let mut none = Vec::new();
        g.pairs_within_rows(120.0, g.row_count()..g.row_count() + 5, &mut none);
        assert!(none.is_empty());
    }

    proptest! {
        /// Grid pair detection agrees exactly with the O(n^2) brute force
        /// for random point sets and radii.
        #[test]
        fn prop_matches_brute_force(
            pts in prop::collection::vec((0.0f64..2000.0, 0.0f64..1500.0), 0..60),
            radius in 10.0f64..400.0,
        ) {
            let positions: Vec<Point2> =
                pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
            let bounds = Rect::from_size(2000.0, 1500.0);
            let mut g = SpatialGrid::new(bounds, 100.0);
            g.rebuild(&positions);
            let mut got = Vec::new();
            g.pairs_within(radius, &mut got);
            got.sort();
            got.dedup();
            prop_assert_eq!(got, brute_force_pairs(&positions, radius));
        }
    }
}
