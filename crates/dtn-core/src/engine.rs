//! A minimal discrete-event run loop.
//!
//! The engine owns the clock and the [`EventQueue`]; domain logic lives in
//! an [`EventHandler`] implementation. Handlers receive a [`Scheduler`]
//! through which they push follow-up events — this keeps the borrow of the
//! queue disjoint from the borrow of the handler state.
//!
//! ```
//! use dtn_core::engine::{Engine, EventHandler, Scheduler};
//! use dtn_core::time::{SimDuration, SimTime};
//!
//! struct Counter { fired: u32 }
//!
//! impl EventHandler for Counter {
//!     type Event = ();
//!     fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<'_, ()>) {
//!         self.fired += 1;
//!         if self.fired < 5 {
//!             sched.schedule_in(now, SimDuration::from_secs(1.0), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.schedule(SimTime::ZERO, ());
//! engine.run_until(SimTime::from_secs(100.0));
//! assert_eq!(engine.handler().fired, 5);
//! // The clock advances to the horizon even after the last event at t=4.
//! assert_eq!(engine.now(), SimTime::from_secs(100.0));
//! ```

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Scheduling facade handed to [`EventHandler::handle`]; wraps the event
/// queue so handlers can enqueue without owning it.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
}

impl<'a, E> Scheduler<'a, E> {
    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the event being processed —
    /// scheduling into the past would silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < {:?}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` at `base + delay`.
    pub fn schedule_in(&mut self, base: SimTime, delay: SimDuration, event: E) {
        self.schedule(base + delay, event);
    }

    /// The timestamp of the event currently being handled.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

/// Domain logic driven by the engine.
pub trait EventHandler {
    /// Event payload type.
    type Event;

    /// Processes one event at time `now`, possibly scheduling more.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);
}

/// The discrete-event engine: clock + queue + handler.
pub struct Engine<H: EventHandler> {
    queue: EventQueue<H::Event>,
    handler: H,
    now: SimTime,
    processed: u64,
}

impl<H: EventHandler> Engine<H> {
    /// A fresh engine at `t = 0`.
    pub fn new(handler: H) -> Self {
        Engine {
            queue: EventQueue::new(),
            handler,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Seeds an initial event (callable before or between runs).
    pub fn schedule(&mut self, at: SimTime, event: H::Event) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
    }

    /// Runs until the queue drains or the next event would be later than
    /// `end`; events exactly at `end` are processed. Returns the number of
    /// events processed by this call.
    pub fn run_until(&mut self, end: SimTime) -> u64 {
        let before = self.processed;
        while let Some((t, ev)) = self.queue.pop_until(end) {
            self.now = t;
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: t,
            };
            self.handler.handle(t, ev, &mut sched);
            self.processed += 1;
        }
        // The clock advances to `end` even if the tail of the interval was
        // quiet, so repeated `run_until` calls are monotone.
        self.now = self.now.max(end.min(SimTime::INFINITY));
        self.processed - before
    }

    /// Processes exactly one event if one is pending; returns its time.
    pub fn step(&mut self) -> Option<SimTime> {
        let (t, ev) = self.queue.pop()?;
        self.now = t;
        let mut sched = Scheduler {
            queue: &mut self.queue,
            now: t,
        };
        self.handler.handle(t, ev, &mut sched);
        self.processed += 1;
        Some(t)
    }

    /// Current simulation clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed since construction.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Borrow the domain handler.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutably borrow the domain handler.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Consumes the engine, returning the handler.
    pub fn into_handler(self) -> H {
        self.handler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(f64, u32)>,
    }

    impl EventHandler for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.seen.push((now.as_secs(), ev));
            // Event 1 spawns a chain of follow-ups.
            if ev == 1 && self.seen.len() < 4 {
                sched.schedule_in(now, SimDuration::from_secs(2.0), 1);
            }
        }
    }

    #[test]
    fn chain_of_events_runs_in_order() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_secs(1.0), 1);
        e.schedule(SimTime::from_secs(2.0), 9);
        let n = e.run_until(SimTime::from_secs(10.0));
        assert_eq!(n, 4);
        assert_eq!(
            e.handler().seen,
            vec![(1.0, 1), (2.0, 9), (3.0, 1), (5.0, 1)]
        );
        assert_eq!(e.now(), SimTime::from_secs(10.0));
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_secs(1.0), 7);
        e.schedule(SimTime::from_secs(5.0), 8);
        let n = e.run_until(SimTime::from_secs(3.0));
        assert_eq!(n, 1);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.now(), SimTime::from_secs(3.0));
        // Resume.
        let n2 = e.run_until(SimTime::from_secs(5.0));
        assert_eq!(n2, 1);
        assert_eq!(e.processed(), 2);
    }

    #[test]
    fn step_processes_single_event() {
        let mut e = Engine::new(Recorder::default());
        assert_eq!(e.step(), None);
        e.schedule(SimTime::from_secs(2.0), 3);
        assert_eq!(e.step(), Some(SimTime::from_secs(2.0)));
        assert_eq!(e.handler().seen, vec![(2.0, 3)]);
    }

    #[test]
    fn handler_access_and_consumption() {
        let mut e = Engine::new(Recorder::default());
        e.schedule(SimTime::from_secs(1.0), 2);
        e.handler_mut().seen.push((0.0, 0));
        assert_eq!(e.handler().seen.len(), 1);
        e.run_until(SimTime::from_secs(2.0));
        let recorder = e.into_handler();
        assert_eq!(recorder.seen, vec![(0.0, 0), (1.0, 2)]);
    }

    #[test]
    fn scheduler_now_matches_event_time() {
        struct Check;
        impl EventHandler for Check {
            type Event = ();
            fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<'_, ()>) {
                assert_eq!(sched.now(), now);
            }
        }
        let mut e = Engine::new(Check);
        e.schedule(SimTime::from_secs(3.5), ());
        assert_eq!(e.run_until(SimTime::from_secs(10.0)), 1);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl EventHandler for Bad {
            type Event = ();
            fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<'_, ()>) {
                sched.schedule(SimTime::ZERO, ());
            }
        }
        let mut e = Engine::new(Bad);
        e.schedule(SimTime::from_secs(5.0), ());
        e.run_until(SimTime::from_secs(6.0));
    }
}
