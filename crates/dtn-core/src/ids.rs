//! Typed identifiers for nodes and messages.
//!
//! Newtypes prevent the classic "passed a message index where a node index
//! was expected" bug and document intent in signatures. Both ids are dense
//! and start at zero so they double as `Vec` indices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a mobile node. Dense, zero-based: usable as a `Vec` index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a message (unique per generated message, shared by all of
/// its copies). Dense, zero-based in generation order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over the first `n` node ids, `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> + Clone {
        (0..n as u32).map(NodeId)
    }
}

impl MessageId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u64> for MessageId {
    fn from(v: u64) -> Self {
        MessageId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// An unordered pair of distinct nodes, normalised so `(a, b)` and
/// `(b, a)` compare equal. Used as a key for contact bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodePair {
    lo: NodeId,
    hi: NodeId,
}

impl NodePair {
    /// Builds a normalised pair.
    ///
    /// # Panics
    /// Panics if `a == b`: a node never contacts itself.
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "NodePair requires distinct nodes");
        if a < b {
            NodePair { lo: a, hi: b }
        } else {
            NodePair { lo: b, hi: a }
        }
    }

    /// The smaller id.
    #[inline]
    pub fn lo(self) -> NodeId {
        self.lo
    }

    /// The larger id.
    #[inline]
    pub fn hi(self) -> NodeId {
        self.hi
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `node` is not an endpoint of the pair.
    #[inline]
    pub fn peer_of(self, node: NodeId) -> NodeId {
        if node == self.lo {
            self.hi
        } else if node == self.hi {
            self.lo
        } else {
            panic!("{node} is not part of {self:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_pair_normalises() {
        let p1 = NodePair::new(NodeId(3), NodeId(7));
        let p2 = NodePair::new(NodeId(7), NodeId(3));
        assert_eq!(p1, p2);
        assert_eq!(p1.lo(), NodeId(3));
        assert_eq!(p1.hi(), NodeId(7));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn node_pair_rejects_self_pair() {
        let _ = NodePair::new(NodeId(1), NodeId(1));
    }

    #[test]
    fn peer_of() {
        let p = NodePair::new(NodeId(2), NodeId(9));
        assert_eq!(p.peer_of(NodeId(2)), NodeId(9));
        assert_eq!(p.peer_of(NodeId(9)), NodeId(2));
    }

    #[test]
    #[should_panic]
    fn peer_of_foreign_node_panics() {
        let p = NodePair::new(NodeId(2), NodeId(9));
        let _ = p.peer_of(NodeId(4));
    }

    #[test]
    fn ids_index_and_iterate() {
        assert_eq!(NodeId(4).index(), 4);
        assert_eq!(MessageId(11).index(), 11);
        let all: Vec<_> = NodeId::all(3).collect();
        assert_eq!(all, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn pairs_hash_consistently() {
        let mut set = HashSet::new();
        set.insert(NodePair::new(NodeId(1), NodeId(2)));
        assert!(set.contains(&NodePair::new(NodeId(2), NodeId(1))));
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(5).to_string(), "n5");
        assert_eq!(MessageId(8).to_string(), "M8");
    }
}
