//! Pluggable event exporters.
//!
//! A [`Recorder`](crate::recorder::Recorder) can stream every recorded
//! event into an [`EventSink`]: JSONL for full fidelity, CSV for a
//! compact flat projection, or an in-memory sink for tests. Sink errors
//! are reported back to the recorder, which stores the first one rather
//! than panicking mid-simulation.

use crate::event::SimEvent;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives every recorded event as it happens.
pub trait EventSink {
    /// Handles one event. Errors abort further exporting (the recorder
    /// keeps simulating and stores the error).
    fn on_event(&mut self, ev: &SimEvent) -> io::Result<()>;

    /// Flushes buffered output (called once at end of run).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Writes one JSON object per line — the full-fidelity export format
/// (see `SimEvent::to_jsonl` for the schema).
pub struct JsonlSink<W: Write> {
    w: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink {
            w: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn on_event(&mut self, ev: &SimEvent) -> io::Result<()> {
        self.w.write_all(ev.to_jsonl().as_bytes())?;
        self.w.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// Writes the compact CSV projection (`SimEvent::to_csv_row`), header
/// included.
pub struct CsvSink<W: Write> {
    w: W,
    wrote_header: bool,
}

impl CsvSink<BufWriter<File>> {
    /// Creates (truncating) a CSV file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(CsvSink {
            w: BufWriter::new(File::create(path)?),
            wrote_header: false,
        })
    }
}

impl<W: Write> CsvSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(w: W) -> Self {
        CsvSink {
            w,
            wrote_header: false,
        }
    }
}

impl<W: Write> EventSink for CsvSink<W> {
    fn on_event(&mut self, ev: &SimEvent) -> io::Result<()> {
        if !self.wrote_header {
            self.wrote_header = true;
            writeln!(self.w, "{}", SimEvent::CSV_HEADER)?;
        }
        writeln!(self.w, "{}", ev.to_csv_row())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// Collects events into a shared vector — the recorder owns the sink,
/// so tests keep a cloned handle to read the captured stream afterwards.
#[derive(Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<SimEvent>>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything captured so far.
    pub fn events(&self) -> Vec<SimEvent> {
        self.events.lock().expect("sink poisoned").clone()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// True before the first captured event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for MemorySink {
    fn on_event(&mut self, ev: &SimEvent) -> io::Result<()> {
        self.events.lock().expect("sink poisoned").push(ev.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SimEvent> {
        vec![
            SimEvent::ContactUp { t: 1.0, a: 0, b: 1 },
            SimEvent::Delivered {
                t: 2.0,
                msg: 5,
                from: 0,
                hops: 1,
                latency: 2.0,
                first: true,
            },
        ]
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut buf = Vec::new();
        {
            let mut s = JsonlSink::new(&mut buf);
            for ev in sample() {
                s.on_event(&ev).unwrap();
            }
            s.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
            assert!(v["kind"].as_str().is_some());
        }
    }

    #[test]
    fn csv_sink_writes_header_once() {
        let mut buf = Vec::new();
        {
            let mut s = CsvSink::new(&mut buf);
            for ev in sample() {
                s.on_event(&ev).unwrap();
            }
            s.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(SimEvent::CSV_HEADER));
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn memory_sink_shares_captures() {
        let sink = MemorySink::new();
        let mut handle = sink.clone();
        for ev in sample() {
            handle.on_event(&ev).unwrap();
        }
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        assert_eq!(sink.events()[1].kind(), "delivered");
    }
}
