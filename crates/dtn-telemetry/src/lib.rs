//! # dtn-telemetry
//!
//! Low-overhead instrumentation for the SDSRP simulator: a metrics
//! registry, a structured simulation event log, and per-run manifests.
//!
//! * [`metrics`] — monotonic counters, gauges and fixed-bucket
//!   histograms behind integer handles ([`metrics::MetricsRegistry`]).
//! * [`event`] — the [`event::SimEvent`] vocabulary (generation,
//!   replication, delivery, drops, refusals, gossip merges, contacts,
//!   TTL expiry) and the per-kind [`event::EventTotals`].
//! * [`ring`] — a bounded in-memory ring of recent events.
//! * [`sink`] — the pluggable [`sink::EventSink`] trait with JSONL,
//!   CSV and in-memory exporters.
//! * [`recorder`] — the [`recorder::Recorder`] handle the simulator
//!   carries: when disabled, every emission is a single branch and the
//!   event is never even constructed.
//! * [`manifest`] — the per-run [`manifest::RunManifest`] (config hash,
//!   seed, totals, wall clock) with structural diffing.
//! * [`perf`] — process-level probes ([`perf::peak_rss_bytes`]) shared
//!   by the `dtn-bench` harness and the sweep runner.
//! * [`sweep`] — [`sweep::SweepEvent`], the lifecycle vocabulary of
//!   hardened sweep/fuzz runs (cell completed/failed/skipped,
//!   checkpoint resumed).
//! * [`timeseries`] — sampled run histories (occupancy, contacts,
//!   copies), folded in from `dtn-sim` so there is one instrumentation
//!   path.
//!
//! The crate deliberately depends on nothing but the (in-tree) serde
//! stack: events carry primitive `u32`/`u64`/`f64` fields, and the
//! simulator converts its typed ids at the emission site. That keeps
//! `dtn-telemetry` at the bottom of the dependency graph, usable from
//! every other crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod manifest;
pub mod metrics;
pub mod perf;
pub mod recorder;
pub mod ring;
pub mod sink;
pub mod sweep;
pub mod timeseries;

pub use event::{DropReason, EventTotals, SimEvent};
pub use manifest::{hash_config_json, RunManifest};
pub use metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry, MetricsSnapshot};
pub use perf::peak_rss_bytes;
pub use recorder::Recorder;
pub use ring::EventRing;
pub use sink::{CsvSink, EventSink, JsonlSink, MemorySink};
pub use sweep::SweepEvent;
pub use timeseries::{TimePoint, TimeSeries};
