//! Per-tick time-series instrumentation.
//!
//! The paper reports endpoint metrics only; for debugging and for the
//! buffer-occupancy ablation it is useful to watch the system evolve:
//! mean buffer occupancy, live contacts, distinct messages alive and
//! copies in circulation, sampled every `sample_every` simulated
//! seconds. Lives here (rather than in the simulator) so the sampling
//! schedule rides on the [`Recorder`](crate::recorder::Recorder).

use serde::{Deserialize, Serialize};

/// One sampled instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Sample time, seconds.
    pub t: f64,
    /// Mean buffer fill fraction across nodes, `[0, 1]`.
    pub mean_occupancy: f64,
    /// Highest single-node fill fraction.
    pub max_occupancy: f64,
    /// Contacts currently up.
    pub live_contacts: usize,
    /// Distinct messages with at least one live copy.
    pub live_messages: usize,
    /// Total buffered copies across all nodes.
    pub total_copies: usize,
}

/// A sampled run history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    sample_every: f64,
    next_sample: f64,
    points: Vec<TimePoint>,
}

impl TimeSeries {
    /// Samples every `sample_every` simulated seconds.
    ///
    /// # Panics
    /// Panics unless `sample_every` is strictly positive.
    pub fn new(sample_every: f64) -> Self {
        assert!(sample_every > 0.0, "sample interval must be positive");
        TimeSeries {
            sample_every,
            next_sample: 0.0,
            points: Vec::new(),
        }
    }

    /// Whether a sample is due at `now_secs` (the world calls this every
    /// tick).
    pub fn due(&self, now_secs: f64) -> bool {
        now_secs >= self.next_sample
    }

    /// Records a sample and advances the schedule.
    pub fn record(&mut self, point: TimePoint) {
        self.points.push(point);
        self.next_sample = point.t + self.sample_every;
    }

    /// All samples in time order.
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Peak mean occupancy over the run.
    pub fn peak_mean_occupancy(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.mean_occupancy)
            .fold(0.0, f64::max)
    }

    /// CSV rendering (`t,mean_occupancy,max_occupancy,live_contacts,
    /// live_messages,total_copies`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "t,mean_occupancy,max_occupancy,live_contacts,live_messages,total_copies\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                p.t,
                p.mean_occupancy,
                p.max_occupancy,
                p.live_contacts,
                p.live_messages,
                p.total_copies
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(t: f64, occ: f64) -> TimePoint {
        TimePoint {
            t,
            mean_occupancy: occ,
            max_occupancy: occ,
            live_contacts: 1,
            live_messages: 2,
            total_copies: 3,
        }
    }

    #[test]
    fn sampling_schedule() {
        let mut ts = TimeSeries::new(10.0);
        assert!(ts.due(0.0));
        ts.record(pt(0.0, 0.1));
        assert!(!ts.due(5.0));
        assert!(ts.due(10.0));
        ts.record(pt(10.0, 0.5));
        assert_eq!(ts.len(), 2);
        assert!(!ts.is_empty());
        assert_eq!(ts.peak_mean_occupancy(), 0.5);
    }

    #[test]
    fn csv_shape() {
        let mut ts = TimeSeries::new(10.0);
        ts.record(pt(0.0, 0.25));
        let csv = ts.to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("t,mean_occupancy"));
        assert_eq!(lines.next(), Some("0,0.25,0.25,1,2,3"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = TimeSeries::new(0.0);
    }
}
