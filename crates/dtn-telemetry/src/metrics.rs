//! A tiny metrics registry: counters, gauges and fixed-bucket
//! histograms behind integer handles.
//!
//! Registration returns an id; the hot-path operations (`inc`,
//! `set_gauge`, `observe`) are plain `Vec` index updates with no
//! hashing, locking or allocation, so instrumented code stays cheap
//! even when telemetry is enabled.

use serde::{Deserialize, Serialize};

/// Handle to a monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a last-value gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A histogram over fixed upper-bound buckets plus an overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// `counts[i]` observations in `(bounds[i-1], bounds[i]]`; the last
    /// entry (one longer than `bounds`) is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Mean of the observed values (`0` before the first observation).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The registry: named metrics, integer-handle access.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a monotonic counter, returning its handle. Registering
    /// an existing name returns the existing handle.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_owned(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge, returning its handle (idempotent per name).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_owned(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram with the given inclusive upper bounds
    /// (idempotent per name; bounds of the first registration win).
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_owned(), Histogram::new(bounds)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Sets a gauge to `v`.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: f64) {
        self.histograms[id.0].1.observe(v);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// Read access to a histogram.
    pub fn histogram_state(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// True when nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A serialisable snapshot of every metric (manifest payload).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| CounterSnapshot {
                    name: n.clone(),
                    value: *v,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(n, v)| GaugeSnapshot {
                    name: n.clone(),
                    value: *v,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| HistogramSnapshot {
                    name: n.clone(),
                    histogram: h.clone(),
                })
                .collect(),
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last set value.
    pub value: f64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket state.
    pub histogram: Histogram,
}

/// Frozen registry contents, serialised into the run manifest.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, in registration order.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("events");
        let g = m.gauge("live_contacts");
        m.inc(c, 3);
        m.inc(c, 2);
        m.set_gauge(g, 7.5);
        assert_eq!(m.counter_value(c), 5);
        assert_eq!(m.gauge_value(g), 7.5);
        // Re-registration returns the same handle.
        assert_eq!(m.counter("events"), c);
        assert_eq!(m.gauge("live_contacts"), g);
        assert!(!m.is_empty());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut m = MetricsRegistry::new();
        let h = m.histogram("latency", &[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0] {
            m.observe(h, v);
        }
        let state = m.histogram_state(h);
        assert_eq!(state.counts, vec![2, 1, 1, 1]);
        assert_eq!(state.count, 5);
        assert!((state.mean() - 111.3).abs() < 1e-9);
    }

    #[test]
    fn snapshot_roundtrips() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("n");
        m.inc(c, 9);
        let h = m.histogram("h", &[1.0]);
        m.observe(h, 0.5);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counters[0].value, 9);
        assert_eq!(back.histograms[0].histogram.count, 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_bounds_rejected() {
        let mut m = MetricsRegistry::new();
        let _ = m.histogram("bad", &[2.0, 1.0]);
    }
}
