//! A bounded ring buffer of recent events.
//!
//! The ring keeps the tail of the event stream in memory (for
//! inspection, tests and post-run debugging) without unbounded growth:
//! once full, the oldest event is overwritten and counted in
//! [`EventRing::overwritten`].

use crate::event::SimEvent;
use std::collections::VecDeque;

/// Bounded in-memory event history.
#[derive(Debug, Clone, Default)]
pub struct EventRing {
    capacity: usize,
    events: VecDeque<SimEvent>,
    overwritten: u64,
}

impl EventRing {
    /// A ring keeping at most `capacity` events. Capacity `0` keeps
    /// nothing (counting-only telemetry).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            capacity,
            events: VecDeque::with_capacity(capacity.min(1024)),
            overwritten: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: SimEvent) {
        if self.capacity == 0 {
            self.overwritten += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.overwritten += 1;
        }
        self.events.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SimEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events that fell off the front (or were never retained, for a
    /// zero-capacity ring).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64) -> SimEvent {
        SimEvent::ContactUp { t, a: 0, b: 1 }
    }

    #[test]
    fn keeps_the_tail() {
        let mut r = EventRing::new(3);
        for k in 0..5 {
            r.push(ev(k as f64));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 2);
        let times: Vec<f64> = r.iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
        assert_eq!(r.capacity(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn zero_capacity_counts_only() {
        let mut r = EventRing::new(0);
        r.push(ev(1.0));
        r.push(ev(2.0));
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 2);
    }
}
