//! The recorder handle the simulator carries through its hot path.
//!
//! [`Recorder::record`] takes a **closure** producing the event, not the
//! event itself: when the recorder is disabled the closure is never
//! called, so a disabled recorder costs one predictable branch per
//! emission site — no allocation, no formatting, no field conversion.

use crate::event::{EventTotals, SimEvent};
use crate::metrics::MetricsRegistry;
use crate::ring::EventRing;
use crate::sink::EventSink;
use crate::timeseries::{TimePoint, TimeSeries};

/// Telemetry state for one simulation run.
pub struct Recorder {
    enabled: bool,
    totals: EventTotals,
    ring: EventRing,
    sink: Option<Box<dyn EventSink>>,
    sink_error: Option<String>,
    metrics: MetricsRegistry,
    timeseries: Option<TimeSeries>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Recorder {
    /// A recorder that ignores every event — the simulator's default.
    /// Time-series sampling (an independent, explicitly enabled feature)
    /// still works on a disabled recorder.
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            totals: EventTotals::default(),
            ring: EventRing::new(0),
            sink: None,
            sink_error: None,
            metrics: MetricsRegistry::new(),
            timeseries: None,
        }
    }

    /// An enabled recorder retaining the last `ring_capacity` events in
    /// memory (0 for counting-only telemetry).
    pub fn enabled(ring_capacity: usize) -> Self {
        Recorder {
            enabled: true,
            ring: EventRing::new(ring_capacity),
            ..Self::disabled()
        }
    }

    /// Attaches an event sink (builder style).
    pub fn with_sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event. `make` runs only when the recorder is enabled.
    #[inline]
    pub fn record<F: FnOnce() -> SimEvent>(&mut self, make: F) {
        if !self.enabled {
            return;
        }
        self.push(make());
    }

    #[inline(never)]
    fn push(&mut self, ev: SimEvent) {
        self.totals.bump(&ev);
        if let (Some(sink), None) = (self.sink.as_mut(), self.sink_error.as_ref()) {
            if let Err(e) = sink.on_event(&ev) {
                self.sink_error = Some(e.to_string());
            }
        }
        self.ring.push(ev);
    }

    /// Per-kind counters accumulated so far.
    pub fn totals(&self) -> &EventTotals {
        &self.totals
    }

    /// The retained event tail.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Read access to the metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Write access to the metrics registry (registration and updates).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Flushes the sink, capturing any error.
    pub fn flush(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            if let Err(e) = sink.flush() {
                self.sink_error.get_or_insert_with(|| e.to_string());
            }
        }
    }

    /// The first sink error, if exporting failed.
    pub fn sink_error(&self) -> Option<&str> {
        self.sink_error.as_deref()
    }

    // ------------------------------------------------------------------
    // Time series (independent of the event-recording switch).
    // ------------------------------------------------------------------

    /// Enables time-series sampling every `sample_every` simulated
    /// seconds.
    pub fn enable_timeseries(&mut self, sample_every: f64) {
        self.timeseries = Some(TimeSeries::new(sample_every));
    }

    /// Whether time-series sampling is enabled.
    pub fn has_timeseries(&self) -> bool {
        self.timeseries.is_some()
    }

    /// Whether a time-series sample is due at `now_secs`.
    #[inline]
    pub fn timeseries_due(&self, now_secs: f64) -> bool {
        self.timeseries.as_ref().is_some_and(|ts| ts.due(now_secs))
    }

    /// Records one time-series sample.
    pub fn record_timepoint(&mut self, point: TimePoint) {
        if let Some(ts) = self.timeseries.as_mut() {
            ts.record(point);
        }
    }

    /// Takes the sampled series out of the recorder.
    pub fn take_timeseries(&mut self) -> Option<TimeSeries> {
        self.timeseries.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn contact(t: f64) -> SimEvent {
        SimEvent::ContactUp { t, a: 0, b: 1 }
    }

    #[test]
    fn disabled_recorder_never_builds_the_event() {
        let mut r = Recorder::disabled();
        let mut built = false;
        r.record(|| {
            built = true;
            contact(1.0)
        });
        assert!(!built, "closure ran on a disabled recorder");
        assert_eq!(r.totals().total(), 0);
        assert!(r.ring().is_empty());
    }

    #[test]
    fn enabled_recorder_counts_rings_and_sinks() {
        let sink = MemorySink::new();
        let mut r = Recorder::enabled(2).with_sink(Box::new(sink.clone()));
        assert!(r.is_enabled());
        for k in 0..3 {
            r.record(|| contact(k as f64));
        }
        assert_eq!(r.totals().contacts_up, 3);
        assert_eq!(r.ring().len(), 2, "ring bounded");
        assert_eq!(r.ring().overwritten(), 1);
        assert_eq!(sink.len(), 3, "sink sees everything");
        r.flush();
        assert!(r.sink_error().is_none());
    }

    #[test]
    fn sink_errors_are_stored_not_thrown() {
        struct Failing;
        impl EventSink for Failing {
            fn on_event(&mut self, _: &SimEvent) -> std::io::Result<()> {
                Err(std::io::Error::other("disk full"))
            }
        }
        let mut r = Recorder::enabled(4).with_sink(Box::new(Failing));
        r.record(|| contact(1.0));
        r.record(|| contact(2.0));
        assert_eq!(r.totals().contacts_up, 2, "recording continues");
        assert!(r.sink_error().unwrap().contains("disk full"));
    }

    #[test]
    fn timeseries_works_on_a_disabled_recorder() {
        let mut r = Recorder::disabled();
        assert!(!r.has_timeseries());
        assert!(!r.timeseries_due(0.0));
        r.enable_timeseries(10.0);
        assert!(r.timeseries_due(0.0));
        r.record_timepoint(TimePoint {
            t: 0.0,
            mean_occupancy: 0.5,
            max_occupancy: 0.5,
            live_contacts: 1,
            live_messages: 1,
            total_copies: 1,
        });
        assert!(!r.timeseries_due(5.0));
        let ts = r.take_timeseries().unwrap();
        assert_eq!(ts.len(), 1);
        assert!(!r.has_timeseries());
    }

    #[test]
    fn metrics_live_on_the_recorder() {
        let mut r = Recorder::enabled(0);
        let c = r.metrics_mut().counter("events");
        r.metrics_mut().inc(c, 2);
        assert_eq!(r.metrics().counter_value(c), 2);
    }
}
