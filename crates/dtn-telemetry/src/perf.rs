//! Process-level performance probes used by the benchmark harness.
//!
//! Kept here (the bottom of the dependency graph) so `dtn-bench` and
//! the sweep runner report resource usage through one code path.

/// Peak resident-set size of the current process in bytes (`VmHWM`
/// from `/proc/self/status`). This is a monotone process-wide
/// high-water mark: it never decreases, so per-phase readings taken
/// later in a run can only grow. Returns `None` when the platform does
/// not expose it (anything but Linux) or the probe fails.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_and_monotone() {
        let before = peak_rss_bytes().expect("VmHWM readable on linux");
        assert!(before > 0);
        // Touch a few MB so the high-water mark has a chance to move;
        // either way it must never decrease.
        let buf = vec![1u8; 4 << 20];
        std::hint::black_box(&buf);
        let after = peak_rss_bytes().expect("VmHWM readable on linux");
        assert!(after >= before);
    }
}
