//! Per-run provenance: what ran, with which configuration, and what
//! came out.
//!
//! A [`RunManifest`] is written next to any event export so results can
//! be tied back to the exact configuration (via a content hash), seed
//! and policy that produced them, and so two runs can be compared
//! field-by-field with [`RunManifest::diff`].

use crate::event::EventTotals;
use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// FNV-1a 64-bit hash of a canonical config JSON string, rendered as 16
/// lowercase hex digits. Stable across runs and platforms.
pub fn hash_config_json(json: &str) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for byte in json.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

/// Provenance and outcome summary for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Human-readable scenario label (preset or config file name).
    pub scenario: String,
    /// FNV-1a hash of the canonical config JSON.
    pub config_hash: String,
    /// The canonical config JSON itself, embedded so a manifest alone
    /// is enough to re-run (deterministically replay) the scenario.
    /// Absent in manifests written before replay support existed.
    #[serde(default)]
    pub config: Option<String>,
    /// RNG seed the run used.
    pub seed: u64,
    /// Buffer-management policy name.
    pub policy: String,
    /// Routing protocol name.
    pub routing: String,
    /// Simulated duration, seconds.
    pub sim_duration_secs: f64,
    /// Wall-clock duration of the run, seconds.
    pub wall_clock_secs: f64,
    /// Messages created (post-warmup), from the report.
    pub created: u64,
    /// Unique messages delivered, from the report.
    pub delivered: u64,
    /// Buffer drops + incoming rejects, from the report.
    pub dropped: u64,
    /// Per-kind event totals from the recorder.
    pub events: EventTotals,
    /// Total events recorded (sum over `events`).
    pub events_recorded: u64,
    /// Events that fell off the in-memory ring.
    pub ring_overwritten: u64,
    /// Frozen metrics registry contents.
    pub metrics: MetricsSnapshot,
}

impl RunManifest {
    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialises")
    }

    /// Field-by-field comparison with another manifest. Returns one
    /// `"path: mine -> theirs"` line per differing leaf, in a stable
    /// order; empty when the manifests are identical.
    pub fn diff(&self, other: &RunManifest) -> Vec<String> {
        let a = serde_json::to_value(self);
        let b = serde_json::to_value(other);
        let mut out = Vec::new();
        diff_value("", &a, &b, &mut out);
        out
    }
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "?".into())
}

fn diff_value(path: &str, a: &Value, b: &Value, out: &mut Vec<String>) {
    match (a, b) {
        (Value::Object(ka), Value::Object(kb)) => {
            // Manifests share a schema, so key sets match; walk in the
            // serialisation order of `a` and flag any one-sided keys.
            for (key, va) in ka.iter() {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match kb.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                    Some(vb) => diff_value(&sub, va, vb, out),
                    None => out.push(format!("{sub}: {} -> (absent)", render(va))),
                }
            }
            for (key, vb) in kb.iter() {
                if !ka.iter().any(|(k, _)| k == key) {
                    let sub = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    out.push(format!("{sub}: (absent) -> {}", render(vb)));
                }
            }
        }
        (Value::Array(xa), Value::Array(xb)) => {
            let shared = xa.len().min(xb.len());
            for (i, (va, vb)) in xa.iter().zip(xb.iter()).enumerate() {
                diff_value(&format!("{path}[{i}]"), va, vb, out);
            }
            for (i, va) in xa.iter().enumerate().skip(shared) {
                out.push(format!("{path}[{i}]: {} -> (absent)", render(va)));
            }
            for (i, vb) in xb.iter().enumerate().skip(shared) {
                out.push(format!("{path}[{i}]: (absent) -> {}", render(vb)));
            }
        }
        _ => {
            if a != b {
                out.push(format!("{path}: {} -> {}", render(a), render(b)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            scenario: "smoke".into(),
            config_hash: hash_config_json("{\"n\":1}"),
            config: Some("{\"n\":1}".into()),
            seed: 42,
            policy: "sdsrp".into(),
            routing: "spray_and_wait".into(),
            sim_duration_secs: 600.0,
            wall_clock_secs: 0.5,
            created: 10,
            delivered: 7,
            dropped: 3,
            events: EventTotals::default(),
            events_recorded: 0,
            ring_overwritten: 0,
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = hash_config_json("{\"n\":1}");
        assert_eq!(a, hash_config_json("{\"n\":1}"));
        assert_ne!(a, hash_config_json("{\"n\":2}"));
        assert_eq!(a.len(), 16);
        assert!(a.bytes().all(|b| b.is_ascii_hexdigit()));
        // Known FNV-1a 64 vector.
        assert_eq!(hash_config_json(""), "cbf29ce484222325");
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let back: RunManifest = serde_json::from_str(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn diff_reports_changed_leaves_only() {
        let a = sample();
        assert!(a.diff(&a).is_empty());
        let mut b = sample();
        b.seed = 43;
        b.delivered = 8;
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|l| l == "seed: 42 -> 43"));
        assert!(d.iter().any(|l| l == "delivered: 7 -> 8"));
    }

    #[test]
    fn config_field_defaults_when_absent() {
        let mut m = sample();
        m.config = None;
        let json = m.to_json();
        // A pre-replay manifest has no "config" key at all; it must
        // still parse, defaulting to None.
        let stripped: String = json
            .lines()
            .filter(|l| !l.trim_start().starts_with("\"config\""))
            .collect::<Vec<_>>()
            .join("\n");
        let back: RunManifest = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.config, None);
        assert_eq!(back.seed, m.seed);
    }

    #[test]
    fn diff_descends_into_event_totals() {
        let a = sample();
        let mut b = sample();
        b.events.delivered = 5;
        let d = a.diff(&b);
        assert_eq!(d, vec!["events.delivered: 0 -> 5".to_string()]);
    }
}
