//! The structured simulation event vocabulary.
//!
//! Events carry primitive fields only (`u32` node indices, `u64`
//! message ids, `f64` seconds): the simulator converts its typed ids at
//! the emission site, and this crate stays free of upstream
//! dependencies. Every event starts with the simulation time `t` in
//! seconds.

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Why a buffered or incoming message was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// A resident was evicted to make room (Algorithm 1's drop step).
    Evicted,
    /// The incoming message itself was refused admission.
    RejectedIncoming,
    /// A copy of an acknowledged message was purged (immunity
    /// extension).
    ImmunityPurge,
}

impl DropReason {
    /// Stable lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::Evicted => "evicted",
            DropReason::RejectedIncoming => "rejected_incoming",
            DropReason::ImmunityPurge => "immunity_purge",
        }
    }
}

/// One structured simulation event.
///
/// Emission sites mirror the [`crate::manifest::RunManifest`]
/// accounting: message-level events (`MessageGenerated`, `Replicated`,
/// `Delivered`) fire only for messages counted by the run's report
/// (i.e. generated after warm-up), so event totals reconcile exactly
/// with the report's counters.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A new message entered the network at its source.
    MessageGenerated {
        /// Simulation time, seconds.
        t: f64,
        /// Message id.
        msg: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Message size, bytes.
        size: u64,
        /// Initial spray copies `L`.
        copies: u32,
    },
    /// A copy was replicated (or handed off) to a peer.
    Replicated {
        /// Simulation time, seconds.
        t: f64,
        /// Message id.
        msg: u64,
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Copy tokens the receiver obtained.
        copies: u32,
    },
    /// The destination received the message.
    Delivered {
        /// Simulation time, seconds.
        t: f64,
        /// Message id.
        msg: u64,
        /// The node that performed the final hop.
        from: u32,
        /// Hop count of the delivering copy (final hop included).
        hops: u32,
        /// Creation-to-delivery latency, seconds.
        latency: f64,
        /// Whether this is the first delivery of the message.
        first: bool,
    },
    /// A message was dropped by a buffer-management decision.
    Dropped {
        /// Simulation time, seconds.
        t: f64,
        /// Message id.
        msg: u64,
        /// The node that dropped it.
        node: u32,
        /// Name of the buffer policy that decided.
        policy: &'static str,
        /// What kind of drop decision it was.
        reason: DropReason,
    },
    /// A receiver refused a message on its dropped list (paper
    /// Section III-C). Deduplicated per `(node, msg)` pair.
    Refused {
        /// Simulation time, seconds.
        t: f64,
        /// Message id.
        msg: u64,
        /// The refusing node.
        node: u32,
        /// The would-be sender.
        from: u32,
    },
    /// A node merged a peer's dropped-list gossip.
    GossipMerged {
        /// Simulation time, seconds.
        t: f64,
        /// The merging node.
        node: u32,
        /// The peer whose records were offered.
        from: u32,
        /// Records adopted (new or newer than the local copy).
        records: u64,
    },
    /// Two nodes came into radio range.
    ContactUp {
        /// Simulation time, seconds.
        t: f64,
        /// Lower node id of the pair.
        a: u32,
        /// Higher node id of the pair.
        b: u32,
    },
    /// A contact closed.
    ContactDown {
        /// Simulation time, seconds.
        t: f64,
        /// Lower node id of the pair.
        a: u32,
        /// Higher node id of the pair.
        b: u32,
    },
    /// A buffered copy expired (TTL) and was purged.
    TtlExpired {
        /// Simulation time, seconds.
        t: f64,
        /// Message id.
        msg: u64,
        /// The node holding the expired copy.
        node: u32,
    },
    /// Aggregated estimator-vs-ground-truth errors from one validation
    /// sampling sweep (emitted only when validation is enabled).
    EstimatorSample {
        /// Simulation time, seconds.
        t: f64,
        /// Buffered copies sampled in this sweep.
        samples: u64,
        /// Mean relative error of the Eq. 15 `m_i` estimate.
        mean_err_m: f64,
        /// Max relative error of the Eq. 15 `m_i` estimate.
        max_err_m: f64,
        /// Mean relative error of the Eq. 14 `n_i` estimate.
        mean_err_n: f64,
        /// Max relative error of the Eq. 14 `n_i` estimate.
        max_err_n: f64,
    },
    /// A simulation invariant was violated (emitted only when
    /// validation is enabled; a correct simulator never produces one).
    InvariantViolation {
        /// Simulation time, seconds.
        t: f64,
        /// Stable label of the failed check.
        check: &'static str,
        /// The message involved, for per-message checks.
        msg: Option<u64>,
        /// The node involved, for per-node checks.
        node: Option<u32>,
    },
    /// An injected fault crashed a node: its buffer, dropped-list and
    /// estimator state were wiped and its radio went down.
    NodeCrashed {
        /// Simulation time, seconds.
        t: f64,
        /// The crashed node.
        node: u32,
        /// Buffered copies wiped by the crash.
        wiped: u64,
    },
    /// A crashed node finished rebooting (radio back up, state cold).
    NodeRebooted {
        /// Simulation time, seconds.
        t: f64,
        /// The rebooted node.
        node: u32,
    },
    /// An injected radio blackout started (state intact, radio down).
    BlackoutStarted {
        /// Simulation time, seconds.
        t: f64,
        /// The silenced node.
        node: u32,
    },
    /// A radio blackout ended.
    BlackoutEnded {
        /// Simulation time, seconds.
        t: f64,
        /// The node whose radio came back.
        node: u32,
    },
    /// An injected fault aborted a scheduled transfer mid-flight.
    TransferAborted {
        /// Simulation time, seconds.
        t: f64,
        /// The message in flight.
        msg: u64,
        /// Sending node.
        from: u32,
        /// Intended receiving node.
        to: u32,
    },
}

impl SimEvent {
    /// Stable lower-snake-case event-kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::MessageGenerated { .. } => "message_generated",
            SimEvent::Replicated { .. } => "replicated",
            SimEvent::Delivered { .. } => "delivered",
            SimEvent::Dropped { .. } => "dropped",
            SimEvent::Refused { .. } => "refused",
            SimEvent::GossipMerged { .. } => "gossip_merged",
            SimEvent::ContactUp { .. } => "contact_up",
            SimEvent::ContactDown { .. } => "contact_down",
            SimEvent::TtlExpired { .. } => "ttl_expired",
            SimEvent::EstimatorSample { .. } => "estimator_sample",
            SimEvent::InvariantViolation { .. } => "invariant_violation",
            SimEvent::NodeCrashed { .. } => "node_crashed",
            SimEvent::NodeRebooted { .. } => "node_rebooted",
            SimEvent::BlackoutStarted { .. } => "blackout_started",
            SimEvent::BlackoutEnded { .. } => "blackout_ended",
            SimEvent::TransferAborted { .. } => "transfer_aborted",
        }
    }

    /// Simulation time of the event, seconds.
    pub fn time(&self) -> f64 {
        match *self {
            SimEvent::MessageGenerated { t, .. }
            | SimEvent::Replicated { t, .. }
            | SimEvent::Delivered { t, .. }
            | SimEvent::Dropped { t, .. }
            | SimEvent::Refused { t, .. }
            | SimEvent::GossipMerged { t, .. }
            | SimEvent::ContactUp { t, .. }
            | SimEvent::ContactDown { t, .. }
            | SimEvent::TtlExpired { t, .. }
            | SimEvent::EstimatorSample { t, .. }
            | SimEvent::InvariantViolation { t, .. }
            | SimEvent::NodeCrashed { t, .. }
            | SimEvent::NodeRebooted { t, .. }
            | SimEvent::BlackoutStarted { t, .. }
            | SimEvent::BlackoutEnded { t, .. }
            | SimEvent::TransferAborted { t, .. } => t,
        }
    }

    /// Flat JSON value: `{"kind": "...", "t": ..., ...}` — the JSONL
    /// line schema.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("kind".into(), Value::String(self.kind().into())),
            ("t".into(), f64_value(self.time())),
        ];
        let push_u64 = |fields: &mut Vec<(String, Value)>, name: &str, v: u64| {
            fields.push((name.into(), Value::Number(serde::value::Number::U64(v))));
        };
        match *self {
            SimEvent::MessageGenerated {
                msg,
                src,
                dst,
                size,
                copies,
                ..
            } => {
                push_u64(&mut fields, "msg", msg);
                push_u64(&mut fields, "src", src as u64);
                push_u64(&mut fields, "dst", dst as u64);
                push_u64(&mut fields, "size", size);
                push_u64(&mut fields, "copies", copies as u64);
            }
            SimEvent::Replicated {
                msg,
                from,
                to,
                copies,
                ..
            } => {
                push_u64(&mut fields, "msg", msg);
                push_u64(&mut fields, "from", from as u64);
                push_u64(&mut fields, "to", to as u64);
                push_u64(&mut fields, "copies", copies as u64);
            }
            SimEvent::Delivered {
                msg,
                from,
                hops,
                latency,
                first,
                ..
            } => {
                push_u64(&mut fields, "msg", msg);
                push_u64(&mut fields, "from", from as u64);
                push_u64(&mut fields, "hops", hops as u64);
                fields.push(("latency".into(), f64_value(latency)));
                fields.push(("first".into(), Value::Bool(first)));
            }
            SimEvent::Dropped {
                msg,
                node,
                policy,
                reason,
                ..
            } => {
                push_u64(&mut fields, "msg", msg);
                push_u64(&mut fields, "node", node as u64);
                fields.push(("policy".into(), Value::String(policy.into())));
                fields.push(("reason".into(), Value::String(reason.label().into())));
            }
            SimEvent::Refused {
                msg, node, from, ..
            } => {
                push_u64(&mut fields, "msg", msg);
                push_u64(&mut fields, "node", node as u64);
                push_u64(&mut fields, "from", from as u64);
            }
            SimEvent::GossipMerged {
                node,
                from,
                records,
                ..
            } => {
                push_u64(&mut fields, "node", node as u64);
                push_u64(&mut fields, "from", from as u64);
                push_u64(&mut fields, "records", records);
            }
            SimEvent::ContactUp { a, b, .. } | SimEvent::ContactDown { a, b, .. } => {
                push_u64(&mut fields, "a", a as u64);
                push_u64(&mut fields, "b", b as u64);
            }
            SimEvent::TtlExpired { msg, node, .. } => {
                push_u64(&mut fields, "msg", msg);
                push_u64(&mut fields, "node", node as u64);
            }
            SimEvent::EstimatorSample {
                samples,
                mean_err_m,
                max_err_m,
                mean_err_n,
                max_err_n,
                ..
            } => {
                push_u64(&mut fields, "samples", samples);
                fields.push(("mean_err_m".into(), f64_value(mean_err_m)));
                fields.push(("max_err_m".into(), f64_value(max_err_m)));
                fields.push(("mean_err_n".into(), f64_value(mean_err_n)));
                fields.push(("max_err_n".into(), f64_value(max_err_n)));
            }
            SimEvent::InvariantViolation {
                check, msg, node, ..
            } => {
                fields.push(("check".into(), Value::String(check.into())));
                if let Some(m) = msg {
                    push_u64(&mut fields, "msg", m);
                }
                if let Some(n) = node {
                    push_u64(&mut fields, "node", n as u64);
                }
            }
            SimEvent::NodeCrashed { node, wiped, .. } => {
                push_u64(&mut fields, "node", node as u64);
                push_u64(&mut fields, "wiped", wiped);
            }
            SimEvent::NodeRebooted { node, .. }
            | SimEvent::BlackoutStarted { node, .. }
            | SimEvent::BlackoutEnded { node, .. } => {
                push_u64(&mut fields, "node", node as u64);
            }
            SimEvent::TransferAborted { msg, from, to, .. } => {
                push_u64(&mut fields, "msg", msg);
                push_u64(&mut fields, "from", from as u64);
                push_u64(&mut fields, "to", to as u64);
            }
        }
        Value::Object(fields)
    }

    /// One JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("event serialises")
    }

    /// Compact CSV projection: `t,kind,msg,node,peer,info,value`.
    ///
    /// `msg` is empty for contact/gossip events; `node`/`peer` map to
    /// the event's primary/secondary node; `info` carries the policy and
    /// drop reason (`policy:reason`) for drops; `value` carries the
    /// per-kind scalar (copies, latency, adopted records, size).
    pub fn to_csv_row(&self) -> String {
        let (msg, node, peer, info, value) = match *self {
            SimEvent::MessageGenerated {
                msg,
                src,
                dst,
                size,
                copies,
                ..
            } => (
                Some(msg),
                src,
                Some(dst),
                format!("size={size}"),
                copies as f64,
            ),
            SimEvent::Replicated {
                msg,
                from,
                to,
                copies,
                ..
            } => (Some(msg), from, Some(to), String::new(), copies as f64),
            SimEvent::Delivered {
                msg,
                from,
                hops,
                latency,
                first,
                ..
            } => (
                Some(msg),
                from,
                None,
                format!("hops={hops},first={first}"),
                latency,
            ),
            SimEvent::Dropped {
                msg,
                node,
                policy,
                reason,
                ..
            } => (
                Some(msg),
                node,
                None,
                format!("{policy}:{}", reason.label()),
                0.0,
            ),
            SimEvent::Refused {
                msg, node, from, ..
            } => (Some(msg), node, Some(from), String::new(), 0.0),
            SimEvent::GossipMerged {
                node,
                from,
                records,
                ..
            } => (None, node, Some(from), String::new(), records as f64),
            SimEvent::ContactUp { a, b, .. } | SimEvent::ContactDown { a, b, .. } => {
                (None, a, Some(b), String::new(), 0.0)
            }
            SimEvent::TtlExpired { msg, node, .. } => (Some(msg), node, None, String::new(), 0.0),
            SimEvent::EstimatorSample {
                samples,
                mean_err_m,
                max_err_m,
                mean_err_n,
                max_err_n,
                ..
            } => (
                None,
                0,
                None,
                format!(
                    "mean_m={mean_err_m:.4};max_m={max_err_m:.4};\
                     mean_n={mean_err_n:.4};max_n={max_err_n:.4}"
                ),
                samples as f64,
            ),
            SimEvent::InvariantViolation {
                check, msg, node, ..
            } => (msg, node.unwrap_or(0), None, check.to_string(), 0.0),
            SimEvent::NodeCrashed { node, wiped, .. } => {
                (None, node, None, String::new(), wiped as f64)
            }
            SimEvent::NodeRebooted { node, .. }
            | SimEvent::BlackoutStarted { node, .. }
            | SimEvent::BlackoutEnded { node, .. } => (None, node, None, String::new(), 0.0),
            SimEvent::TransferAborted { msg, from, to, .. } => {
                (Some(msg), from, Some(to), String::new(), 0.0)
            }
        };
        format!(
            "{},{},{},{},{},{},{}",
            self.time(),
            self.kind(),
            msg.map(|m| m.to_string()).unwrap_or_default(),
            node,
            peer.map(|p| p.to_string()).unwrap_or_default(),
            info,
            value
        )
    }

    /// The CSV header matching [`to_csv_row`](Self::to_csv_row).
    pub const CSV_HEADER: &'static str = "t,kind,msg,node,peer,info,value";
}

fn f64_value(v: f64) -> Value {
    Value::Number(serde::value::Number::F64(v))
}

/// Per-kind event counters — cheap to bump on every emission, cheap to
/// aggregate across runs, and the accounting backbone of the
/// [`crate::manifest::RunManifest`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventTotals {
    /// `MessageGenerated` events.
    pub generated: u64,
    /// `Replicated` events (replications and handoffs).
    pub replicated: u64,
    /// `Delivered` events, duplicates included.
    pub delivered: u64,
    /// `Delivered` events with `first == true` (unique deliveries).
    pub delivered_first: u64,
    /// `Dropped` events with reason `Evicted`.
    pub dropped_evicted: u64,
    /// `Dropped` events with reason `RejectedIncoming`.
    pub dropped_rejected: u64,
    /// `Dropped` events with reason `ImmunityPurge`.
    pub dropped_immunity: u64,
    /// `Refused` events.
    pub refused: u64,
    /// `GossipMerged` events.
    pub gossip_merges: u64,
    /// Sum of adopted records over all `GossipMerged` events.
    pub gossip_records: u64,
    /// `ContactUp` events.
    pub contacts_up: u64,
    /// `ContactDown` events.
    pub contacts_down: u64,
    /// `TtlExpired` events.
    pub ttl_expired: u64,
    /// `EstimatorSample` events (validated runs only).
    #[serde(default)]
    pub estimator_samples: u64,
    /// `InvariantViolation` events (validated runs only; zero on a
    /// correct simulator).
    #[serde(default)]
    pub invariant_violations: u64,
    /// `NodeCrashed` events (fault-injected runs only).
    #[serde(default)]
    pub node_crashes: u64,
    /// `NodeRebooted` events (fault-injected runs only).
    #[serde(default)]
    pub node_reboots: u64,
    /// `BlackoutStarted` events (fault-injected runs only).
    #[serde(default)]
    pub blackouts: u64,
    /// `BlackoutEnded` events (fewer than `blackouts` when a blackout
    /// outlives the run).
    #[serde(default)]
    pub blackout_ends: u64,
    /// Buffered copies wiped across all `NodeCrashed` events.
    #[serde(default)]
    pub crash_wiped_copies: u64,
    /// `TransferAborted` events (injected mid-flight aborts only;
    /// mobility-caused aborts are counted by the run report).
    #[serde(default)]
    pub fault_aborts: u64,
}

impl EventTotals {
    /// Counts one event.
    pub fn bump(&mut self, ev: &SimEvent) {
        match ev {
            SimEvent::MessageGenerated { .. } => self.generated += 1,
            SimEvent::Replicated { .. } => self.replicated += 1,
            SimEvent::Delivered { first, .. } => {
                self.delivered += 1;
                if *first {
                    self.delivered_first += 1;
                }
            }
            SimEvent::Dropped { reason, .. } => match reason {
                DropReason::Evicted => self.dropped_evicted += 1,
                DropReason::RejectedIncoming => self.dropped_rejected += 1,
                DropReason::ImmunityPurge => self.dropped_immunity += 1,
            },
            SimEvent::Refused { .. } => self.refused += 1,
            SimEvent::GossipMerged { records, .. } => {
                self.gossip_merges += 1;
                self.gossip_records += records;
            }
            SimEvent::ContactUp { .. } => self.contacts_up += 1,
            SimEvent::ContactDown { .. } => self.contacts_down += 1,
            SimEvent::TtlExpired { .. } => self.ttl_expired += 1,
            SimEvent::EstimatorSample { .. } => self.estimator_samples += 1,
            SimEvent::InvariantViolation { .. } => self.invariant_violations += 1,
            SimEvent::NodeCrashed { wiped, .. } => {
                self.node_crashes += 1;
                self.crash_wiped_copies += wiped;
            }
            SimEvent::NodeRebooted { .. } => self.node_reboots += 1,
            SimEvent::BlackoutStarted { .. } => self.blackouts += 1,
            SimEvent::BlackoutEnded { .. } => self.blackout_ends += 1,
            SimEvent::TransferAborted { .. } => self.fault_aborts += 1,
        }
    }

    /// Adds another totals block (sweep aggregation).
    pub fn absorb(&mut self, other: &EventTotals) {
        self.generated += other.generated;
        self.replicated += other.replicated;
        self.delivered += other.delivered;
        self.delivered_first += other.delivered_first;
        self.dropped_evicted += other.dropped_evicted;
        self.dropped_rejected += other.dropped_rejected;
        self.dropped_immunity += other.dropped_immunity;
        self.refused += other.refused;
        self.gossip_merges += other.gossip_merges;
        self.gossip_records += other.gossip_records;
        self.contacts_up += other.contacts_up;
        self.contacts_down += other.contacts_down;
        self.ttl_expired += other.ttl_expired;
        self.estimator_samples += other.estimator_samples;
        self.invariant_violations += other.invariant_violations;
        self.node_crashes += other.node_crashes;
        self.node_reboots += other.node_reboots;
        self.blackouts += other.blackouts;
        self.blackout_ends += other.blackout_ends;
        self.crash_wiped_copies += other.crash_wiped_copies;
        self.fault_aborts += other.fault_aborts;
    }

    /// All drop decisions (evictions + rejections + immunity purges).
    pub fn dropped(&self) -> u64 {
        self.dropped_evicted + self.dropped_rejected + self.dropped_immunity
    }

    /// Total events counted.
    pub fn total(&self) -> u64 {
        self.generated
            + self.replicated
            + self.delivered
            + self.dropped()
            + self.refused
            + self.gossip_merges
            + self.contacts_up
            + self.contacts_down
            + self.ttl_expired
            + self.estimator_samples
            + self.invariant_violations
            + self.node_crashes
            + self.node_reboots
            + self.blackouts
            + self.blackout_ends
            + self.fault_aborts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SimEvent> {
        vec![
            SimEvent::MessageGenerated {
                t: 1.0,
                msg: 7,
                src: 0,
                dst: 3,
                size: 500_000,
                copies: 16,
            },
            SimEvent::Replicated {
                t: 2.0,
                msg: 7,
                from: 0,
                to: 1,
                copies: 8,
            },
            SimEvent::Delivered {
                t: 3.5,
                msg: 7,
                from: 1,
                hops: 2,
                latency: 2.5,
                first: true,
            },
            SimEvent::Delivered {
                t: 4.0,
                msg: 7,
                from: 0,
                hops: 1,
                latency: 3.0,
                first: false,
            },
            SimEvent::Dropped {
                t: 5.0,
                msg: 9,
                node: 2,
                policy: "SDSRP",
                reason: DropReason::Evicted,
            },
            SimEvent::Refused {
                t: 6.0,
                msg: 9,
                node: 2,
                from: 1,
            },
            SimEvent::GossipMerged {
                t: 7.0,
                node: 1,
                from: 2,
                records: 3,
            },
            SimEvent::ContactUp { t: 8.0, a: 0, b: 1 },
            SimEvent::ContactDown { t: 9.0, a: 0, b: 1 },
            SimEvent::TtlExpired {
                t: 10.0,
                msg: 7,
                node: 0,
            },
            SimEvent::EstimatorSample {
                t: 11.0,
                samples: 42,
                mean_err_m: 0.12,
                max_err_m: 0.5,
                mean_err_n: 0.2,
                max_err_n: 0.75,
            },
            SimEvent::InvariantViolation {
                t: 12.0,
                check: "copy_conservation",
                msg: Some(7),
                node: None,
            },
            SimEvent::NodeCrashed {
                t: 13.0,
                node: 4,
                wiped: 3,
            },
            SimEvent::NodeRebooted { t: 14.0, node: 4 },
            SimEvent::BlackoutStarted { t: 15.0, node: 2 },
            SimEvent::BlackoutEnded { t: 16.0, node: 2 },
            SimEvent::TransferAborted {
                t: 17.0,
                msg: 9,
                from: 0,
                to: 2,
            },
        ]
    }

    #[test]
    fn jsonl_lines_carry_kind_and_time() {
        for ev in sample() {
            let line = ev.to_jsonl();
            let v: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
            assert_eq!(v["kind"].as_str().unwrap(), ev.kind());
            assert_eq!(v["t"].as_f64().unwrap(), ev.time());
        }
    }

    #[test]
    fn jsonl_field_fidelity() {
        let ev = SimEvent::Delivered {
            t: 3.5,
            msg: 7,
            from: 1,
            hops: 2,
            latency: 2.5,
            first: true,
        };
        let v: serde_json::Value = serde_json::from_str(&ev.to_jsonl()).unwrap();
        assert_eq!(v["msg"].as_u64(), Some(7));
        assert_eq!(v["hops"].as_u64(), Some(2));
        assert_eq!(v["latency"].as_f64(), Some(2.5));
        assert_eq!(v["first"].as_bool(), Some(true));
    }

    #[test]
    fn csv_rows_have_constant_arity() {
        let cols = SimEvent::CSV_HEADER.split(',').count();
        for ev in sample() {
            // The info column never contains a comma-free guarantee; the
            // drop/delivery info uses commas only inside the last free-form
            // field... keep it simple: count must be >= header arity.
            let row = ev.to_csv_row();
            assert!(row.split(',').count() >= cols, "row too short: {row}");
            assert!(row.contains(ev.kind()));
        }
    }

    #[test]
    fn totals_reconcile() {
        let mut t = EventTotals::default();
        for ev in sample() {
            t.bump(&ev);
        }
        assert_eq!(t.generated, 1);
        assert_eq!(t.replicated, 1);
        assert_eq!(t.delivered, 2);
        assert_eq!(t.delivered_first, 1);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.refused, 1);
        assert_eq!(t.gossip_merges, 1);
        assert_eq!(t.gossip_records, 3);
        assert_eq!(t.contacts_up, 1);
        assert_eq!(t.contacts_down, 1);
        assert_eq!(t.ttl_expired, 1);
        assert_eq!(t.estimator_samples, 1);
        assert_eq!(t.invariant_violations, 1);
        assert_eq!(t.node_crashes, 1);
        assert_eq!(t.node_reboots, 1);
        assert_eq!(t.blackouts, 1);
        assert_eq!(t.blackout_ends, 1);
        assert_eq!(t.crash_wiped_copies, 3);
        assert_eq!(t.fault_aborts, 1);
        assert_eq!(t.total(), 17);

        let mut u = t.clone();
        u.absorb(&t);
        assert_eq!(u.total(), 34);
        assert_eq!(u.gossip_records, 6);
        assert_eq!(u.crash_wiped_copies, 6);
    }

    #[test]
    fn totals_serde_roundtrip() {
        let mut t = EventTotals::default();
        for ev in sample() {
            t.bump(&ev);
        }
        let json = serde_json::to_string(&t).unwrap();
        let back: EventTotals = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
