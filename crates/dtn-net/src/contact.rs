//! Contact detection over sampled node positions.
//!
//! Every movement tick the simulator samples all node positions and feeds
//! them to [`ContactTracker::update`], which diffs the current in-range
//! pair set against the previous tick and emits [`ContactEvent`]s. Events
//! are emitted in deterministic (sorted pair) order so simulation runs
//! are reproducible.

use dtn_core::geometry::{Point2, Rect};
use dtn_core::grid::SpatialGrid;
use dtn_core::ids::{NodeId, NodePair};
use dtn_core::pool::Pool;
use dtn_core::time::SimTime;
use std::collections::BTreeSet;

/// A contact state change between a pair of nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContactEvent {
    /// The pair moved into radio range at `time`.
    Up {
        /// The pair.
        pair: NodePair,
        /// When.
        time: SimTime,
    },
    /// The pair moved out of radio range at `time`.
    Down {
        /// The pair.
        pair: NodePair,
        /// When.
        time: SimTime,
    },
}

impl ContactEvent {
    /// The pair involved.
    pub fn pair(&self) -> NodePair {
        match *self {
            ContactEvent::Up { pair, .. } | ContactEvent::Down { pair, .. } => pair,
        }
    }

    /// The event timestamp.
    pub fn time(&self) -> SimTime {
        match *self {
            ContactEvent::Up { time, .. } | ContactEvent::Down { time, .. } => time,
        }
    }
}

/// Tracks which node pairs are currently in range and diffs tick over
/// tick.
#[derive(Debug, Clone)]
pub struct ContactTracker {
    grid: SpatialGrid,
    range: f64,
    /// Currently-connected pairs (ordered for deterministic iteration).
    current: BTreeSet<NodePair>,
    scratch_pairs: Vec<(NodeId, NodeId)>,
}

impl ContactTracker {
    /// Creates a tracker for a playground `bounds` and radio `range`.
    pub fn new(bounds: Rect, range: f64) -> Self {
        assert!(range > 0.0, "radio range must be positive");
        // Cell size = range gives the classic 3x3-neighbourhood query.
        ContactTracker {
            grid: SpatialGrid::new(bounds, range),
            range,
            current: BTreeSet::new(),
            scratch_pairs: Vec::new(),
        }
    }

    /// Ingests the positions sampled at `time` (indexed by node id) and
    /// appends the resulting Up/Down events to `out` in sorted-pair order
    /// (Down events first, then Up events).
    pub fn update(&mut self, time: SimTime, positions: &[Point2], out: &mut Vec<ContactEvent>) {
        self.update_pooled(time, positions, out, None);
    }

    /// [`update`](Self::update) with the grid pair query fanned out
    /// across `pool` (when given) by contiguous row bands.
    ///
    /// Bit-identical to the serial path at any thread count: bands are
    /// ascending contiguous row ranges merged in band order (which
    /// reproduces the serial scan order exactly — see
    /// [`SpatialGrid::pairs_within_rows`]), and the pair set is diffed
    /// through an ordered set anyway.
    pub fn update_pooled(
        &mut self,
        time: SimTime,
        positions: &[Point2],
        out: &mut Vec<ContactEvent>,
        pool: Option<&Pool>,
    ) {
        self.grid.rebuild(positions);
        self.scratch_pairs.clear();
        match pool {
            Some(pool) if pool.threads() > 1 => {
                let grid = &self.grid;
                let range = self.range;
                let bands = pool.map_bands(grid.row_count(), |rows| {
                    let mut pairs = Vec::new();
                    grid.pairs_within_rows(range, rows, &mut pairs);
                    pairs
                });
                for band in bands {
                    self.scratch_pairs.extend_from_slice(&band);
                }
            }
            _ => self.grid.pairs_within(self.range, &mut self.scratch_pairs),
        }
        let fresh: BTreeSet<NodePair> = self
            .scratch_pairs
            .iter()
            .map(|&(a, b)| NodePair::new(a, b))
            .collect();

        for &pair in self.current.difference(&fresh) {
            out.push(ContactEvent::Down { pair, time });
        }
        for &pair in fresh.difference(&self.current) {
            out.push(ContactEvent::Up { pair, time });
        }
        self.current = fresh;
    }

    /// Whether `pair` is currently in range.
    pub fn connected(&self, pair: NodePair) -> bool {
        self.current.contains(&pair)
    }

    /// Currently connected pairs in sorted order.
    pub fn current_contacts(&self) -> impl Iterator<Item = NodePair> + '_ {
        self.current.iter().copied()
    }

    /// Number of live contacts.
    pub fn contact_count(&self) -> usize {
        self.current.len()
    }

    /// Emits a final Down event for every live contact (end of
    /// simulation), clearing the state.
    pub fn close_all(&mut self, time: SimTime, out: &mut Vec<ContactEvent>) {
        for &pair in &self.current {
            out.push(ContactEvent::Down { pair, time });
        }
        self.current.clear();
    }

    /// Forces every contact involving `node` down at `time` (the node's
    /// radio just died — crash or blackout), emitting Down events in
    /// sorted-pair order. Subsequent [`update`](Self::update) calls see
    /// the pairs as fresh if the node comes back into range.
    pub fn drop_node(&mut self, node: NodeId, time: SimTime, out: &mut Vec<ContactEvent>) {
        // BTreeSet iteration is sorted, so retained order is already
        // deterministic; collect the doomed pairs first to keep the
        // borrow checker happy.
        let doomed: Vec<NodePair> = self
            .current
            .iter()
            .copied()
            .filter(|p| p.lo() == node || p.hi() == node)
            .collect();
        for pair in doomed {
            self.current.remove(&pair);
            out.push(ContactEvent::Down { pair, time });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn tracker() -> ContactTracker {
        ContactTracker::new(Rect::from_size(1000.0, 1000.0), 100.0)
    }

    #[test]
    fn up_then_down() {
        let mut tr = tracker();
        let mut out = Vec::new();

        // Tick 1: apart.
        tr.update(
            t(0.0),
            &[Point2::new(0.0, 0.0), Point2::new(500.0, 0.0)],
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(tr.contact_count(), 0);

        // Tick 2: together.
        tr.update(
            t(1.0),
            &[Point2::new(0.0, 0.0), Point2::new(50.0, 0.0)],
            &mut out,
        );
        let pair = NodePair::new(NodeId(0), NodeId(1));
        assert_eq!(out, vec![ContactEvent::Up { pair, time: t(1.0) }]);
        assert!(tr.connected(pair));

        // Tick 3: still together — no event.
        out.clear();
        tr.update(
            t(2.0),
            &[Point2::new(10.0, 0.0), Point2::new(50.0, 0.0)],
            &mut out,
        );
        assert!(out.is_empty());

        // Tick 4: apart again.
        tr.update(
            t(3.0),
            &[Point2::new(0.0, 0.0), Point2::new(900.0, 0.0)],
            &mut out,
        );
        assert_eq!(out, vec![ContactEvent::Down { pair, time: t(3.0) }]);
        assert!(!tr.connected(pair));
    }

    #[test]
    fn boundary_is_inclusive() {
        let mut tr = tracker();
        let mut out = Vec::new();
        tr.update(
            t(0.0),
            &[Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)],
            &mut out,
        );
        assert_eq!(out.len(), 1, "exactly at range counts as in contact");
    }

    #[test]
    fn multiple_pairs_sorted_order() {
        let mut tr = tracker();
        let mut out = Vec::new();
        // Three nodes in a line, each 50 m apart: pairs (0,1), (1,2), (0,2).
        tr.update(
            t(0.0),
            &[
                Point2::new(0.0, 0.0),
                Point2::new(50.0, 0.0),
                Point2::new(100.0, 0.0),
            ],
            &mut out,
        );
        let pairs: Vec<NodePair> = out.iter().map(|e| e.pair()).collect();
        assert_eq!(
            pairs,
            vec![
                NodePair::new(NodeId(0), NodeId(1)),
                NodePair::new(NodeId(0), NodeId(2)),
                NodePair::new(NodeId(1), NodeId(2)),
            ]
        );
    }

    #[test]
    fn down_events_precede_up_events_in_one_tick() {
        let mut tr = tracker();
        let mut out = Vec::new();
        tr.update(
            t(0.0),
            &[
                Point2::new(0.0, 0.0),
                Point2::new(50.0, 0.0),
                Point2::new(500.0, 500.0),
            ],
            &mut out,
        );
        out.clear();
        // Node 1 leaves node 0, node 2 arrives at node 0.
        tr.update(
            t(1.0),
            &[
                Point2::new(0.0, 0.0),
                Point2::new(400.0, 0.0),
                Point2::new(60.0, 0.0),
            ],
            &mut out,
        );
        assert!(matches!(out[0], ContactEvent::Down { .. }));
        assert!(matches!(out[1], ContactEvent::Up { .. }));
    }

    #[test]
    fn close_all_emits_downs() {
        let mut tr = tracker();
        let mut out = Vec::new();
        tr.update(
            t(0.0),
            &[Point2::new(0.0, 0.0), Point2::new(10.0, 0.0)],
            &mut out,
        );
        out.clear();
        tr.close_all(t(9.0), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], ContactEvent::Down { time, .. } if time == t(9.0)));
        assert_eq!(tr.contact_count(), 0);
    }

    #[test]
    fn drop_node_forces_its_contacts_down() {
        let mut tr = tracker();
        let mut out = Vec::new();
        // Triangle: 0-1, 0-2, 1-2 all in range.
        tr.update(
            t(0.0),
            &[
                Point2::new(0.0, 0.0),
                Point2::new(50.0, 0.0),
                Point2::new(100.0, 0.0),
            ],
            &mut out,
        );
        assert_eq!(tr.contact_count(), 3);
        out.clear();

        // Node 1's radio dies: (0,1) and (1,2) go down, (0,2) survives.
        tr.drop_node(NodeId(1), t(5.0), &mut out);
        assert_eq!(
            out,
            vec![
                ContactEvent::Down {
                    pair: NodePair::new(NodeId(0), NodeId(1)),
                    time: t(5.0)
                },
                ContactEvent::Down {
                    pair: NodePair::new(NodeId(1), NodeId(2)),
                    time: t(5.0)
                },
            ]
        );
        assert_eq!(tr.contact_count(), 1);
        assert!(tr.connected(NodePair::new(NodeId(0), NodeId(2))));

        // If the node is still in range at the next tick, the contacts
        // come back as fresh Up events.
        out.clear();
        tr.update(
            t(6.0),
            &[
                Point2::new(0.0, 0.0),
                Point2::new(50.0, 0.0),
                Point2::new(100.0, 0.0),
            ],
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| matches!(e, ContactEvent::Up { .. })));
        assert_eq!(tr.contact_count(), 3);
    }

    /// The straightforward O(N²) reference: every pair within `range`
    /// (inclusive boundary, exact Euclidean distance).
    fn naive_pairs(positions: &[Point2], range: f64) -> BTreeSet<NodePair> {
        let mut set = BTreeSet::new();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                let dx = positions[i].x - positions[j].x;
                let dy = positions[i].y - positions[j].y;
                if (dx * dx + dy * dy).sqrt() <= range {
                    set.insert(NodePair::new(NodeId(i as u32), NodeId(j as u32)));
                }
            }
        }
        set
    }

    #[test]
    fn grid_matches_naive_scan_at_exact_boundary_and_out_of_bounds() {
        // Hand-picked adversarial layout: pairs exactly at the range
        // boundary, positions far outside the configured playground
        // (real taxi traces exit the sampled window), and a cluster in
        // one grid cell.
        let positions = vec![
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 0.0),     // exactly at range from node 0
            Point2::new(100.0, 100.0),   // sqrt(2)*100 from node 0
            Point2::new(-250.0, -40.0),  // outside bounds (negative)
            Point2::new(-251.0, -40.0),  // near its out-of-bounds neighbour
            Point2::new(5000.0, 5000.0), // far outside on the other side
            Point2::new(5099.9, 5000.0), // just inside range of node 5
        ];
        let range = 100.0;
        let mut tr = ContactTracker::new(Rect::from_size(1000.0, 1000.0), range);
        let mut out = Vec::new();
        tr.update(t(0.0), &positions, &mut out);
        let grid_pairs: BTreeSet<NodePair> = tr.current_contacts().collect();
        assert_eq!(grid_pairs, naive_pairs(&positions, range));
        assert!(grid_pairs.contains(&NodePair::new(NodeId(0), NodeId(1))));
        assert!(grid_pairs.contains(&NodePair::new(NodeId(3), NodeId(4))));
        assert!(grid_pairs.contains(&NodePair::new(NodeId(5), NodeId(6))));
    }

    proptest::proptest! {
        /// Differential property: the grid-backed pair detection agrees
        /// exactly with the naive O(N²) scan over random positions and
        /// ranges — including positions outside the configured
        /// playground bounds and pairs at the exact range boundary
        /// (exercised by snapping some coordinates to a lattice whose
        /// pitch equals the range).
        #[test]
        fn prop_grid_pairs_match_naive_scan(
            raw in proptest::collection::vec((-500.0f64..1500.0, -500.0f64..1500.0, proptest::strategy::any::<bool>()), 2..40),
            range in 10.0f64..300.0,
            bounds_w in 100.0f64..1000.0,
            bounds_h in 100.0f64..1000.0,
        ) {
            // Snap flagged coordinates to multiples of the range so
            // exact-boundary pairs actually occur with non-negligible
            // probability.
            let positions: Vec<Point2> = raw
                .iter()
                .map(|&(x, y, snap)| {
                    if snap {
                        Point2::new((x / range).round() * range, (y / range).round() * range)
                    } else {
                        Point2::new(x, y)
                    }
                })
                .collect();
            let mut tr = ContactTracker::new(Rect::from_size(bounds_w, bounds_h), range);
            let mut out = Vec::new();
            tr.update(t(0.0), &positions, &mut out);
            let grid_pairs: BTreeSet<NodePair> = tr.current_contacts().collect();
            let expect = naive_pairs(&positions, range);
            proptest::prop_assert_eq!(grid_pairs, expect);
        }
    }

    #[test]
    fn pooled_update_matches_serial_at_any_thread_count() {
        let positions = |tick: usize| -> Vec<Point2> {
            (0..120)
                .map(|i| {
                    Point2::new(
                        ((i * 53 + tick * 17) % 900) as f64,
                        ((i * 71 + tick * 29) % 900) as f64,
                    )
                })
                .collect()
        };
        let serial = {
            let mut tr = ContactTracker::new(Rect::from_size(900.0, 900.0), 80.0);
            let mut all = Vec::new();
            for tick in 0..40 {
                tr.update(t(tick as f64), &positions(tick), &mut all);
            }
            all
        };
        assert!(!serial.is_empty());
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            let mut tr = ContactTracker::new(Rect::from_size(900.0, 900.0), 80.0);
            let mut all = Vec::new();
            for tick in 0..40 {
                tr.update_pooled(t(tick as f64), &positions(tick), &mut all, Some(&pool));
            }
            assert_eq!(all, serial, "threads={threads}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let positions = |tick: usize| -> Vec<Point2> {
            (0..20)
                .map(|i| {
                    Point2::new(
                        ((i * 37 + tick * 13) % 500) as f64,
                        ((i * 91 + tick * 7) % 500) as f64,
                    )
                })
                .collect()
        };
        let run = || {
            let mut tr = ContactTracker::new(Rect::from_size(500.0, 500.0), 80.0);
            let mut all = Vec::new();
            for tick in 0..50 {
                tr.update(t(tick as f64), &positions(tick), &mut all);
            }
            all
        };
        assert_eq!(run(), run());
    }
}
