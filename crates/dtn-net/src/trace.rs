//! Contact traces and intermeeting-time statistics.
//!
//! A [`ContactTrace`] records closed contact intervals. From it we derive
//! the quantities the paper's model needs:
//!
//! * **Intermeeting times** `I` (Definition 1): gaps between the end of
//!   one contact and the start of the next *for the same node pair*.
//!   Fig. 3 plots their distribution and fits an exponential.
//! * **Minimum intermeeting times** `I_min` (Definition 2): for a
//!   specific node, the gap between the end of a contact with anyone and
//!   the start of the next contact with anyone. Its mean `E(I_min)`
//!   drives the binary-spray interval in Eqs. 6 and 15; the paper uses
//!   `E(I_min) = E(I)/(N-1)` (Eq. 3).

use crate::contact::ContactEvent;
use dtn_core::ids::{NodeId, NodePair};
use dtn_core::stats::OnlineStats;
use dtn_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One closed contact interval between a node pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContactInterval {
    /// The pair.
    pub pair: NodePair,
    /// Contact start.
    pub start: SimTime,
    /// Contact end.
    pub end: SimTime,
}

impl ContactInterval {
    /// Contact duration, seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.end - self.start).as_secs()
    }
}

/// An append-only record of contact intervals, built from
/// [`ContactEvent`] streams.
#[derive(Debug, Clone, Default)]
pub struct ContactTrace {
    intervals: Vec<ContactInterval>,
    open: HashMap<NodePair, SimTime>,
}

impl ContactTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one contact event.
    ///
    /// # Panics
    /// Panics on a Down without a matching Up, or a duplicate Up —
    /// either indicates a bug in the contact tracker.
    pub fn record(&mut self, event: ContactEvent) {
        match event {
            ContactEvent::Up { pair, time } => {
                let prev = self.open.insert(pair, time);
                assert!(prev.is_none(), "duplicate ContactUp for {pair:?}");
            }
            ContactEvent::Down { pair, time } => {
                let start = self
                    .open
                    .remove(&pair)
                    .unwrap_or_else(|| panic!("ContactDown without Up for {pair:?}"));
                self.intervals.push(ContactInterval {
                    pair,
                    start,
                    end: time,
                });
            }
        }
    }

    /// All closed intervals, in completion order.
    pub fn intervals(&self) -> &[ContactInterval] {
        &self.intervals
    }

    /// Number of closed intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True if no interval has closed yet.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of still-open contacts (unclosed Ups).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Per-pair intermeeting times (Definition 1): for each pair, the
    /// gaps `start[k+1] - end[k]` between consecutive contacts.
    pub fn intermeeting_times(&self) -> Vec<f64> {
        let mut per_pair: HashMap<NodePair, Vec<(SimTime, SimTime)>> = HashMap::new();
        for iv in &self.intervals {
            per_pair
                .entry(iv.pair)
                .or_default()
                .push((iv.start, iv.end));
        }
        let mut gaps = Vec::new();
        // Sort pairs for deterministic output order.
        let mut pairs: Vec<_> = per_pair.keys().copied().collect();
        pairs.sort();
        for pair in pairs {
            let ivs = per_pair.get_mut(&pair).expect("key exists");
            ivs.sort_by_key(|&(start, _)| start);
            for w in ivs.windows(2) {
                gaps.push((w[1].0 - w[0].1).as_secs());
            }
        }
        gaps
    }

    /// Per-node minimum intermeeting times (Definition 2): for each node,
    /// gaps between the end of any contact and the start of the *next*
    /// contact with any node.
    pub fn min_intermeeting_times(&self, n_nodes: usize) -> Vec<f64> {
        // Collect each node's contact intervals as (start, end).
        let mut per_node: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); n_nodes];
        for iv in &self.intervals {
            per_node[iv.pair.lo().index()].push((iv.start, iv.end));
            per_node[iv.pair.hi().index()].push((iv.start, iv.end));
        }
        let mut gaps = Vec::new();
        for ivs in &mut per_node {
            ivs.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            // Walk in start order, tracking the end of the last contact
            // seen; a gap opens only when the node is contact-free.
            let mut last_end: Option<SimTime> = None;
            for &(start, end) in ivs.iter() {
                if let Some(le) = last_end {
                    if start > le {
                        gaps.push((start - le).as_secs());
                    }
                }
                last_end = Some(match last_end {
                    Some(le) => le.max(end),
                    None => end,
                });
            }
        }
        gaps
    }

    /// Mean contact duration stats.
    pub fn duration_stats(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        for iv in &self.intervals {
            s.push(iv.duration_secs());
        }
        s
    }

    /// Total contacts seen by `node`.
    pub fn contacts_of(&self, node: NodeId) -> usize {
        self.intervals
            .iter()
            .filter(|iv| iv.pair.lo() == node || iv.pair.hi() == node)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn pair(a: u32, b: u32) -> NodePair {
        NodePair::new(NodeId(a), NodeId(b))
    }

    fn up(p: NodePair, s: f64) -> ContactEvent {
        ContactEvent::Up {
            pair: p,
            time: t(s),
        }
    }

    fn down(p: NodePair, s: f64) -> ContactEvent {
        ContactEvent::Down {
            pair: p,
            time: t(s),
        }
    }

    #[test]
    fn records_intervals() {
        let mut tr = ContactTrace::new();
        tr.record(up(pair(0, 1), 10.0));
        tr.record(down(pair(0, 1), 25.0));
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.intervals()[0].duration_secs(), 15.0);
        assert_eq!(tr.open_count(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate ContactUp")]
    fn duplicate_up_panics() {
        let mut tr = ContactTrace::new();
        tr.record(up(pair(0, 1), 1.0));
        tr.record(up(pair(0, 1), 2.0));
    }

    #[test]
    #[should_panic(expected = "ContactDown without Up")]
    fn orphan_down_panics() {
        let mut tr = ContactTrace::new();
        tr.record(down(pair(0, 1), 2.0));
    }

    #[test]
    fn intermeeting_per_pair() {
        let mut tr = ContactTrace::new();
        // Pair (0,1): contacts [0,10], [40,50], [90,95] -> gaps 30, 40.
        tr.record(up(pair(0, 1), 0.0));
        tr.record(down(pair(0, 1), 10.0));
        tr.record(up(pair(0, 1), 40.0));
        tr.record(down(pair(0, 1), 50.0));
        tr.record(up(pair(0, 1), 90.0));
        tr.record(down(pair(0, 1), 95.0));
        // Pair (0,2): single contact -> no gap.
        tr.record(up(pair(0, 2), 5.0));
        tr.record(down(pair(0, 2), 6.0));
        let mut gaps = tr.intermeeting_times();
        gaps.sort_by(f64::total_cmp);
        assert_eq!(gaps, vec![30.0, 40.0]);
    }

    #[test]
    fn min_intermeeting_across_peers() {
        let mut tr = ContactTrace::new();
        // Node 0 meets node 1 over [0,10] and node 2 over [18,20]:
        // node 0's min-intermeeting gap is 8.
        tr.record(up(pair(0, 1), 0.0));
        tr.record(down(pair(0, 1), 10.0));
        tr.record(up(pair(0, 2), 18.0));
        tr.record(down(pair(0, 2), 20.0));
        let mut gaps = tr.min_intermeeting_times(3);
        gaps.sort_by(f64::total_cmp);
        // Node 0 contributes 8. Nodes 1 and 2 each saw one contact -> none.
        assert_eq!(gaps, vec![8.0]);
    }

    #[test]
    fn min_intermeeting_ignores_overlapping_contacts() {
        let mut tr = ContactTrace::new();
        // Node 0 in contact with 1 over [0,30] and with 2 over [10,20]
        // (fully nested): no contact-free gap until [30,35].
        tr.record(up(pair(0, 1), 0.0));
        tr.record(up(pair(0, 2), 10.0));
        tr.record(down(pair(0, 2), 20.0));
        tr.record(down(pair(0, 1), 30.0));
        tr.record(up(pair(0, 2), 35.0));
        tr.record(down(pair(0, 2), 36.0));
        let gaps = tr.min_intermeeting_times(3);
        // Node 0: gap 5 (30 -> 35). Node 2: gap 15 (20 -> 35). Node 1: none.
        let mut sorted = gaps.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![5.0, 15.0]);
    }

    #[test]
    fn duration_stats_and_contact_counts() {
        let mut tr = ContactTrace::new();
        tr.record(up(pair(0, 1), 0.0));
        tr.record(down(pair(0, 1), 10.0));
        tr.record(up(pair(1, 2), 0.0));
        tr.record(down(pair(1, 2), 30.0));
        let s = tr.duration_stats();
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Some(20.0));
        assert_eq!(tr.contacts_of(NodeId(1)), 2);
        assert_eq!(tr.contacts_of(NodeId(0)), 1);
    }
}
