//! Radio link parameters.
//!
//! The paper models the ONE simulator's default interface: a disc radio
//! (two nodes are connected iff within `range` metres) with a fixed
//! bitrate shared by every node (Table II: 100 m, 250 kbps).

use dtn_core::time::SimDuration;
use dtn_core::units::{Bytes, DataRate};
use serde::{Deserialize, Serialize};

/// Disc-model radio parameters, uniform across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Radio range, metres.
    pub range: f64,
    /// Link bitrate.
    pub rate: DataRate,
}

impl LinkConfig {
    /// Table II / III settings: 100 m range, 250 kbps.
    pub fn paper() -> Self {
        LinkConfig {
            range: 100.0,
            rate: DataRate::from_kbps(250.0),
        }
    }

    /// Creates a link config.
    ///
    /// # Panics
    /// Panics if `range` is not strictly positive.
    pub fn new(range: f64, rate: DataRate) -> Self {
        assert!(range > 0.0, "radio range must be positive");
        LinkConfig { range, rate }
    }

    /// Time to transfer a message of `size` over this link.
    #[inline]
    pub fn transfer_time(&self, size: Bytes) -> SimDuration {
        self.rate.transfer_time(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings() {
        let l = LinkConfig::paper();
        assert_eq!(l.range, 100.0);
        assert!((l.transfer_time(Bytes::from_mb(0.5)).as_secs() - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_rejected() {
        let _ = LinkConfig::new(0.0, DataRate::from_kbps(250.0));
    }
}
