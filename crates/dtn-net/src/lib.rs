//! # dtn-net
//!
//! The wireless substrate of the SDSRP DTN simulator: disc-model radio
//! links, contact detection over moving nodes, contact traces, and the
//! intermeeting-time statistics the paper's Fig. 3 and the SDSRP λ
//! estimator are built on.
//!
//! * [`link`] — radio parameters (range, bitrate) and transfer timing.
//! * [`contact`] — per-tick contact detection: positions in, ContactUp /
//!   ContactDown events out, via a spatial hash grid.
//! * [`trace`] — recorded contact intervals; replay and intermeeting-time
//!   extraction (global, per-pair, and per-node minimum).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod contact;
pub mod link;
pub mod trace;

pub use contact::{ContactEvent, ContactTracker};
pub use link::LinkConfig;
pub use trace::{ContactInterval, ContactTrace};
