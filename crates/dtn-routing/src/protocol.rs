//! The routing-protocol abstraction.

use dtn_buffer::view::MessageView;
use dtn_core::ids::NodeId;
use dtn_core::time::SimTime;

/// How a message moves across one contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// The peer *is* the destination: transfer the payload; the receiver
    /// registers a delivery. The sender keeps its copy (the paper uses
    /// no ACK/immunity mechanism).
    Delivery,
    /// Copy the message; afterwards the sender holds `sender_keeps`
    /// tokens and the receiver `receiver_gets`. A binary spray sets
    /// `⌈C/2⌉ / ⌊C/2⌋`, Epidemic `C / 1`.
    Replicate {
        /// Tokens the sender retains.
        sender_keeps: u32,
        /// Tokens handed to the receiver.
        receiver_gets: u32,
    },
    /// Move the message: the receiver takes all tokens and the sender
    /// deletes its copy (Spray-and-Focus's focus phase).
    Handoff,
}

/// Per-decision context.
#[derive(Debug, Clone, Copy)]
pub struct RoutingCtx {
    /// The sending node.
    pub me: NodeId,
    /// The peer on the other side of the contact.
    pub peer: NodeId,
    /// Decision time.
    pub now: SimTime,
}

/// A DTN routing protocol: per-message transfer eligibility plus optional
/// distributed state maintained through contact hooks and gossip.
///
/// One instance exists per node (protocols may keep per-node state such
/// as last-encounter timers).
pub trait RoutingProtocol: Send {
    /// Protocol name for reports.
    fn name(&self) -> &'static str;

    /// May `msg` be sent to `ctx.peer`, and how? `peer_has` tells whether
    /// the peer already holds/knows this message (from the summary-vector
    /// exchange); protocols must not re-send those.
    fn eligibility(
        &self,
        ctx: &RoutingCtx,
        msg: &MessageView<'_>,
        peer_has: bool,
    ) -> Option<TransferKind>;

    /// Contact-up hook (update last-encounter timers and the like).
    fn on_contact_up(&mut self, _now: SimTime, _peer: NodeId) {}

    /// Contact-down hook.
    fn on_contact_down(&mut self, _now: SimTime, _peer: NodeId) {}

    /// Control-plane payload offered to a newly met peer (e.g.
    /// Spray-and-Focus encounter timers).
    fn export_gossip(&mut self, _now: SimTime) -> Option<Vec<u8>> {
        None
    }

    /// Ingests a peer's gossip. `peer` identifies the sender.
    fn import_gossip(&mut self, _now: SimTime, _peer: NodeId, _bytes: &[u8]) {}
}

/// Shared helper: the delivery rule every protocol starts with.
#[inline]
pub(crate) fn delivery_if_destination(
    ctx: &RoutingCtx,
    msg: &MessageView<'_>,
    peer_has: bool,
) -> Option<TransferKind> {
    (!peer_has && msg.destination == ctx.peer).then_some(TransferKind::Delivery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_buffer::view::TestMessage;

    #[test]
    fn delivery_helper() {
        let ctx = RoutingCtx {
            me: NodeId(0),
            peer: NodeId(1),
            now: SimTime::ZERO,
        };
        let mut m = TestMessage::sample(1);
        m.destination = NodeId(1);
        assert_eq!(
            delivery_if_destination(&ctx, &m.view(), false),
            Some(TransferKind::Delivery)
        );
        // Peer already has it (e.g. previously delivered): no resend.
        assert_eq!(delivery_if_destination(&ctx, &m.view(), true), None);
        m.destination = NodeId(5);
        assert_eq!(delivery_if_destination(&ctx, &m.view(), false), None);
    }
}
