//! Direct delivery: the source holds its message until it meets the
//! destination. Zero overhead, minimal delivery ratio — the floor every
//! multi-copy scheme is measured against.

use crate::protocol::{delivery_if_destination, RoutingCtx, RoutingProtocol, TransferKind};
use dtn_buffer::view::MessageView;

/// The direct-delivery protocol (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectDelivery;

impl RoutingProtocol for DirectDelivery {
    fn name(&self) -> &'static str {
        "DirectDelivery"
    }

    fn eligibility(
        &self,
        ctx: &RoutingCtx,
        msg: &MessageView<'_>,
        peer_has: bool,
    ) -> Option<TransferKind> {
        delivery_if_destination(ctx, msg, peer_has)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_buffer::view::TestMessage;
    use dtn_core::ids::NodeId;
    use dtn_core::time::SimTime;

    #[test]
    fn only_destination_receives() {
        let p = DirectDelivery;
        let mut m = TestMessage::sample(1);
        m.copies = 32;
        m.destination = NodeId(9);
        let mk = |peer: u32| RoutingCtx {
            me: NodeId(0),
            peer: NodeId(peer),
            now: SimTime::ZERO,
        };
        assert_eq!(p.eligibility(&mk(3), &m.view(), false), None);
        assert_eq!(
            p.eligibility(&mk(9), &m.view(), false),
            Some(TransferKind::Delivery)
        );
        assert_eq!(p.eligibility(&mk(9), &m.view(), true), None);
    }
}
