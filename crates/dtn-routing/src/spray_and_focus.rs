//! Spray-and-Focus (Spyropoulos et al., PerCom-W 2007) — extension.
//!
//! The paper's related work \[18\]: identical spray phase, but instead of
//! passively waiting, a single-token copy is *handed off* (moved, not
//! copied) to relays with fresher information about the destination.
//! Utility is the classic last-encounter timer: node `u` forwards to `v`
//! when `v` saw the destination more recently than `u` by at least
//! `handoff_threshold` seconds.
//!
//! Encounter timers are exchanged as gossip at contact setup, exactly
//! like SDSRP's dropped lists, so the whole protocol stays distributed.

use crate::protocol::{delivery_if_destination, RoutingCtx, RoutingProtocol, TransferKind};
use dtn_buffer::view::MessageView;
use dtn_core::ids::NodeId;
use dtn_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Gossip payload: the sender's last-encounter table.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EncounterGossip {
    // Ordered so the exported bytes are canonical: a HashMap here
    // would serialise in per-instance random order, making the gossip
    // payload bytes (world-state inputs) depend on hasher state.
    last_seen: BTreeMap<NodeId, f64>,
}

/// The Spray-and-Focus protocol state for one node.
#[derive(Debug, Clone)]
pub struct SprayAndFocus {
    /// When this node last met each peer.
    last_seen: HashMap<NodeId, SimTime>,
    /// The encounter table most recently gossiped by each peer.
    peer_tables: HashMap<NodeId, BTreeMap<NodeId, f64>>,
    /// Minimum freshness advantage (seconds) required to hand off.
    handoff_threshold: f64,
}

impl SprayAndFocus {
    /// Creates the protocol with the given focus-handoff threshold
    /// (seconds of last-encounter advantage the relay must have).
    pub fn new(handoff_threshold: f64) -> Self {
        assert!(
            handoff_threshold >= 0.0,
            "handoff threshold must be non-negative"
        );
        SprayAndFocus {
            last_seen: HashMap::new(),
            peer_tables: HashMap::new(),
            handoff_threshold,
        }
    }

    /// This node's last encounter with `node`, if any.
    pub fn last_seen(&self, node: NodeId) -> Option<SimTime> {
        self.last_seen.get(&node).copied()
    }

    fn peer_last_seen(&self, peer: NodeId, dest: NodeId) -> Option<f64> {
        self.peer_tables.get(&peer)?.get(&dest).copied()
    }

    /// The focus rule: should a single-token copy move to `peer`?
    fn should_handoff(&self, peer: NodeId, dest: NodeId) -> bool {
        let Some(peer_saw) = self.peer_last_seen(peer, dest) else {
            return false; // peer knows nothing about the destination
        };
        match self.last_seen.get(&dest) {
            // Peer must be fresher by the threshold.
            Some(mine) => peer_saw >= mine.as_secs() + self.handoff_threshold,
            // We have never met the destination: any knowledge wins.
            None => true,
        }
    }
}

impl RoutingProtocol for SprayAndFocus {
    fn name(&self) -> &'static str {
        "SprayAndFocus"
    }

    fn eligibility(
        &self,
        ctx: &RoutingCtx,
        msg: &MessageView<'_>,
        peer_has: bool,
    ) -> Option<TransferKind> {
        if let Some(d) = delivery_if_destination(ctx, msg, peer_has) {
            return Some(d);
        }
        if peer_has {
            return None;
        }
        if msg.copies > 1 {
            // Spray phase: binary split, as in Spray-and-Wait.
            return Some(TransferKind::Replicate {
                sender_keeps: msg.copies - msg.copies / 2,
                receiver_gets: msg.copies / 2,
            });
        }
        // Focus phase: utility-based handoff.
        self.should_handoff(ctx.peer, msg.destination)
            .then_some(TransferKind::Handoff)
    }

    fn on_contact_up(&mut self, now: SimTime, peer: NodeId) {
        self.last_seen.insert(peer, now);
    }

    fn on_contact_down(&mut self, now: SimTime, peer: NodeId) {
        // The *end* of a contact is the most recent sighting.
        self.last_seen.insert(peer, now);
        // The peer's table snapshot is stale once they leave.
        self.peer_tables.remove(&peer);
    }

    fn export_gossip(&mut self, _now: SimTime) -> Option<Vec<u8>> {
        if self.last_seen.is_empty() {
            return None;
        }
        let payload = EncounterGossip {
            last_seen: self
                .last_seen
                .iter()
                .map(|(&n, &t)| (n, t.as_secs()))
                .collect(),
        };
        Some(serde_json::to_vec(&payload).expect("encounter table serialises"))
    }

    fn import_gossip(&mut self, _now: SimTime, peer: NodeId, bytes: &[u8]) {
        if let Ok(g) = serde_json::from_slice::<EncounterGossip>(bytes) {
            self.peer_tables.insert(peer, g.last_seen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_buffer::view::TestMessage;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn ctx(peer: u32, now: f64) -> RoutingCtx {
        RoutingCtx {
            me: NodeId(0),
            peer: NodeId(peer),
            now: t(now),
        }
    }

    fn single_copy_msg(dest: u32) -> TestMessage {
        let mut m = TestMessage::sample(1);
        m.copies = 1;
        m.destination = NodeId(dest);
        m
    }

    #[test]
    fn spray_phase_matches_spray_and_wait() {
        let p = SprayAndFocus::new(60.0);
        let mut m = TestMessage::sample(1);
        m.copies = 8;
        m.destination = NodeId(9);
        assert_eq!(
            p.eligibility(&ctx(2, 0.0), &m.view(), false),
            Some(TransferKind::Replicate {
                sender_keeps: 4,
                receiver_gets: 4
            })
        );
    }

    #[test]
    fn focus_handoff_requires_fresher_peer() {
        let mut me = SprayAndFocus::new(60.0);
        let mut relay = SprayAndFocus::new(60.0);
        // I met the destination (node 9) at t = 100; the relay met it at
        // t = 500.
        me.on_contact_up(t(100.0), NodeId(9));
        me.on_contact_down(t(110.0), NodeId(9));
        relay.on_contact_up(t(500.0), NodeId(9));
        relay.on_contact_down(t(510.0), NodeId(9));
        // Contact me <-> relay at t = 600 with gossip exchange.
        me.on_contact_up(t(600.0), NodeId(2));
        let payload = relay.export_gossip(t(600.0)).unwrap();
        me.import_gossip(t(600.0), NodeId(2), &payload);

        let m = single_copy_msg(9);
        assert_eq!(
            me.eligibility(&ctx(2, 600.0), &m.view(), false),
            Some(TransferKind::Handoff)
        );
    }

    #[test]
    fn no_handoff_to_stale_peer() {
        let mut me = SprayAndFocus::new(60.0);
        let mut relay = SprayAndFocus::new(60.0);
        me.on_contact_down(t(500.0), NodeId(9));
        relay.on_contact_down(t(100.0), NodeId(9));
        me.on_contact_up(t(600.0), NodeId(2));
        let payload = relay.export_gossip(t(600.0)).unwrap();
        me.import_gossip(t(600.0), NodeId(2), &payload);
        let m = single_copy_msg(9);
        assert_eq!(me.eligibility(&ctx(2, 600.0), &m.view(), false), None);
    }

    #[test]
    fn threshold_blocks_marginal_advantage() {
        let mut me = SprayAndFocus::new(60.0);
        let mut relay = SprayAndFocus::new(60.0);
        me.on_contact_down(t(100.0), NodeId(9));
        relay.on_contact_down(t(130.0), NodeId(9)); // only 30 s fresher
        me.on_contact_up(t(600.0), NodeId(2));
        let payload = relay.export_gossip(t(600.0)).unwrap();
        me.import_gossip(t(600.0), NodeId(2), &payload);
        let m = single_copy_msg(9);
        assert_eq!(me.eligibility(&ctx(2, 600.0), &m.view(), false), None);
    }

    #[test]
    fn handoff_when_i_never_met_destination() {
        let mut me = SprayAndFocus::new(60.0);
        let mut relay = SprayAndFocus::new(60.0);
        relay.on_contact_down(t(400.0), NodeId(9));
        me.on_contact_up(t(600.0), NodeId(2));
        let payload = relay.export_gossip(t(600.0)).unwrap();
        me.import_gossip(t(600.0), NodeId(2), &payload);
        let m = single_copy_msg(9);
        assert_eq!(
            me.eligibility(&ctx(2, 600.0), &m.view(), false),
            Some(TransferKind::Handoff)
        );
    }

    #[test]
    fn no_gossip_no_handoff() {
        let me = SprayAndFocus::new(60.0);
        let m = single_copy_msg(9);
        assert_eq!(me.eligibility(&ctx(2, 600.0), &m.view(), false), None);
    }

    #[test]
    fn contact_down_clears_peer_snapshot() {
        let mut me = SprayAndFocus::new(0.0);
        let mut relay = SprayAndFocus::new(0.0);
        relay.on_contact_down(t(400.0), NodeId(9));
        let payload = relay.export_gossip(t(600.0)).unwrap();
        me.import_gossip(t(600.0), NodeId(2), &payload);
        assert!(me.should_handoff(NodeId(2), NodeId(9)));
        me.on_contact_down(t(700.0), NodeId(2));
        assert!(!me.should_handoff(NodeId(2), NodeId(9)));
    }

    #[test]
    fn empty_table_exports_nothing() {
        let mut p = SprayAndFocus::new(0.0);
        assert_eq!(p.export_gossip(t(0.0)), None);
    }
}
