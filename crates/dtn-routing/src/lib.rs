//! # dtn-routing
//!
//! DTN routing protocols for the SDSRP simulator.
//!
//! A routing protocol answers one question per buffered message whenever
//! a contact is available: *may this message be transferred to this peer,
//! and with what copy semantics?* ([`RoutingProtocol::eligibility`]).
//! The buffer policy (from `dtn-buffer` / `sdsrp-core`) then orders the
//! eligible messages — the separation mirrors the paper, which keeps
//! Spray-and-Wait's forwarding rule fixed and varies only the
//! scheduling/drop strategy.
//!
//! Protocols:
//!
//! * [`spray_and_wait::SprayAndWait`] — the paper's
//!   router: binary (or source) token spraying, direct delivery in the
//!   wait phase.
//! * [`Epidemic`](epidemic::Epidemic) — replicate everything to
//!   everyone; the classic flooding baseline.
//! * [`DirectDelivery`](direct::DirectDelivery) — source holds the
//!   message until it meets the destination; the lower bound.
//! * [`Prophet`](prophet::Prophet) — extension: delivery-predictability
//!   routing with transitivity (PRoPHET, Lindgren et al. 2003).
//! * [`SprayAndFocus`](spray_and_focus::SprayAndFocus) — extension
//!   (paper's related work \[18\]): wait phase replaced by utility-based
//!   single-copy *handoff* using last-encounter timers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod direct;
pub mod epidemic;
pub mod prophet;
pub mod protocol;
pub mod spray_and_focus;
pub mod spray_and_wait;

pub use protocol::{RoutingCtx, RoutingProtocol, TransferKind};
pub use spray_and_wait::{SprayAndWait, SprayMode};
