//! Epidemic routing (Vahdat & Becker, 2000): replicate every message to
//! every node that lacks it. Maximal delivery ratio with unconstrained
//! resources; the congestion baseline the paper's introduction motivates
//! Spray-and-Wait against.

use crate::protocol::{delivery_if_destination, RoutingCtx, RoutingProtocol, TransferKind};
use dtn_buffer::view::MessageView;

/// The Epidemic protocol (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct Epidemic;

impl RoutingProtocol for Epidemic {
    fn name(&self) -> &'static str {
        "Epidemic"
    }

    fn eligibility(
        &self,
        ctx: &RoutingCtx,
        msg: &MessageView<'_>,
        peer_has: bool,
    ) -> Option<TransferKind> {
        if let Some(d) = delivery_if_destination(ctx, msg, peer_has) {
            return Some(d);
        }
        if peer_has {
            return None;
        }
        // Copies are not token-limited: the sender's count is untouched
        // and the receiver starts its own single-token copy.
        Some(TransferKind::Replicate {
            sender_keeps: msg.copies,
            receiver_gets: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_buffer::view::TestMessage;
    use dtn_core::ids::NodeId;
    use dtn_core::time::SimTime;

    fn ctx(peer: u32) -> RoutingCtx {
        RoutingCtx {
            me: NodeId(0),
            peer: NodeId(peer),
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn replicates_to_anyone_lacking() {
        let p = Epidemic;
        let mut m = TestMessage::sample(1);
        m.copies = 1;
        m.destination = NodeId(9);
        assert_eq!(
            p.eligibility(&ctx(3), &m.view(), false),
            Some(TransferKind::Replicate {
                sender_keeps: 1,
                receiver_gets: 1
            })
        );
        assert_eq!(p.eligibility(&ctx(3), &m.view(), true), None);
        assert_eq!(
            p.eligibility(&ctx(9), &m.view(), false),
            Some(TransferKind::Delivery)
        );
    }
}
