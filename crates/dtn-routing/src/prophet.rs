//! PRoPHET — Probabilistic Routing Protocol using History of Encounters
//! and Transitivity (Lindgren, Doria & Schelén, 2003). Extension beyond
//! the paper: the adaptive-spray related work the paper cites (\[19\],
//! \[20\]) builds on exactly this delivery-predictability metric, so a
//! faithful PRoPHET rounds out the routing substrate.
//!
//! Every node maintains delivery predictabilities `P(this, x) ∈ [0, 1]`:
//!
//! * **Direct update** on meeting `b`:
//!   `P(a,b) <- P(a,b) + (1 - P(a,b)) * P_INIT`.
//! * **Aging** with elapsed time:
//!   `P(a,x) <- P(a,x) * γ^(Δt)` (γ per second).
//! * **Transitivity** via the freshly met peer's gossiped table:
//!   `P(a,c) <- max(P(a,c), P(a,b) * P(b,c) * β)`.
//!
//! Forwarding: replicate a message to the peer when the peer's
//! predictability for the destination exceeds ours (copies are not
//! token-limited; the receiver starts a fresh single-token copy, like
//! Epidemic but selective).

use crate::protocol::{delivery_if_destination, RoutingCtx, RoutingProtocol, TransferKind};
use dtn_buffer::view::MessageView;
use dtn_core::ids::NodeId;
use dtn_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// PRoPHET constants (defaults from the original paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProphetConfig {
    /// Predictability boost on a direct encounter (`P_INIT`).
    pub p_init: f64,
    /// Transitivity damping (`β`).
    pub beta: f64,
    /// Aging base per second (`γ`); 1.0 disables aging.
    pub gamma: f64,
}

impl Default for ProphetConfig {
    fn default() -> Self {
        ProphetConfig {
            p_init: 0.75,
            beta: 0.25,
            // The original paper uses γ = 0.98 per time unit; with
            // seconds as the unit that decays far too fast for
            // multi-hour DTN scenarios, so the default here halves
            // predictability roughly every 20 min.
            gamma: 0.9994,
        }
    }
}

impl ProphetConfig {
    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.p_init),
            "P_INIT must be a probability"
        );
        assert!((0.0..=1.0).contains(&self.beta), "beta must be in [0,1]");
        assert!(
            self.gamma > 0.0 && self.gamma <= 1.0,
            "gamma must be in (0,1]"
        );
    }
}

/// Gossip payload: the sender's aged predictability table.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ProphetGossip {
    // Ordered for canonical payload bytes (see EncounterGossip).
    table: BTreeMap<NodeId, f64>,
}

/// The PRoPHET protocol state for one node.
#[derive(Debug, Clone)]
pub struct Prophet {
    cfg: ProphetConfig,
    /// Delivery predictabilities for every known node.
    table: HashMap<NodeId, f64>,
    /// Last time `table` was aged.
    last_aged: SimTime,
    /// Most recent gossiped table per currently-connected peer.
    peer_tables: HashMap<NodeId, BTreeMap<NodeId, f64>>,
}

impl Prophet {
    /// Creates the protocol with the given constants.
    pub fn new(cfg: ProphetConfig) -> Self {
        cfg.validate();
        Prophet {
            cfg,
            table: HashMap::new(),
            last_aged: SimTime::ZERO,
            peer_tables: HashMap::new(),
        }
    }

    /// Ages all predictabilities to `now`.
    fn age(&mut self, now: SimTime) {
        let dt = (now - self.last_aged).as_secs();
        if dt <= 0.0 {
            return;
        }
        if self.cfg.gamma < 1.0 {
            let factor = self.cfg.gamma.powf(dt);
            for p in self.table.values_mut() {
                *p *= factor;
            }
            self.table.retain(|_, p| *p > 1e-6);
        }
        self.last_aged = now;
    }

    /// This node's current predictability for `dest`.
    pub fn predictability(&self, dest: NodeId) -> f64 {
        self.table.get(&dest).copied().unwrap_or(0.0)
    }

    fn peer_predictability(&self, peer: NodeId, dest: NodeId) -> f64 {
        self.peer_tables
            .get(&peer)
            .and_then(|t| t.get(&dest))
            .copied()
            .unwrap_or(0.0)
    }
}

impl RoutingProtocol for Prophet {
    fn name(&self) -> &'static str {
        "PRoPHET"
    }

    fn eligibility(
        &self,
        ctx: &RoutingCtx,
        msg: &MessageView<'_>,
        peer_has: bool,
    ) -> Option<TransferKind> {
        if let Some(d) = delivery_if_destination(ctx, msg, peer_has) {
            return Some(d);
        }
        if peer_has {
            return None;
        }
        let mine = self.predictability(msg.destination);
        let theirs = self.peer_predictability(ctx.peer, msg.destination);
        (theirs > mine).then_some(TransferKind::Replicate {
            sender_keeps: msg.copies,
            receiver_gets: 1,
        })
    }

    fn on_contact_up(&mut self, now: SimTime, peer: NodeId) {
        self.age(now);
        let p = self.table.entry(peer).or_insert(0.0);
        *p += (1.0 - *p) * self.cfg.p_init;
    }

    fn on_contact_down(&mut self, _now: SimTime, peer: NodeId) {
        self.peer_tables.remove(&peer);
    }

    fn export_gossip(&mut self, now: SimTime) -> Option<Vec<u8>> {
        self.age(now);
        if self.table.is_empty() {
            return None;
        }
        let payload = ProphetGossip {
            table: self.table.iter().map(|(&n, &p)| (n, p)).collect(),
        };
        Some(serde_json::to_vec(&payload).expect("prophet table serialises"))
    }

    fn import_gossip(&mut self, now: SimTime, peer: NodeId, bytes: &[u8]) {
        let Ok(g) = serde_json::from_slice::<ProphetGossip>(bytes) else {
            return;
        };
        self.age(now);
        // Transitivity through the peer we are talking to.
        let p_ab = self.predictability(peer);
        for (&c, &p_bc) in &g.table {
            let via = p_ab * p_bc * self.cfg.beta;
            let entry = self.table.entry(c).or_insert(0.0);
            if via > *entry {
                *entry = via;
            }
        }
        self.peer_tables.insert(peer, g.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_buffer::view::TestMessage;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn ctx(peer: u32, now: f64) -> RoutingCtx {
        RoutingCtx {
            me: NodeId(0),
            peer: NodeId(peer),
            now: t(now),
        }
    }

    #[test]
    fn direct_encounters_raise_predictability() {
        let mut p = Prophet::new(ProphetConfig::default());
        assert_eq!(p.predictability(NodeId(5)), 0.0);
        p.on_contact_up(t(10.0), NodeId(5));
        assert!((p.predictability(NodeId(5)) - 0.75).abs() < 1e-12);
        p.on_contact_up(t(20.0), NodeId(5));
        // 0.75 aged for 10 s then boosted: strictly above 0.75.
        assert!(p.predictability(NodeId(5)) > 0.75);
        assert!(p.predictability(NodeId(5)) < 1.0);
    }

    #[test]
    fn predictability_ages() {
        let cfg = ProphetConfig {
            gamma: 0.99, // fast decay for the test
            ..Default::default()
        };
        let mut p = Prophet::new(cfg);
        p.on_contact_up(t(0.0), NodeId(5));
        let before = p.predictability(NodeId(5));
        p.age(t(100.0));
        let after = p.predictability(NodeId(5));
        assert!(after < before * 0.5, "aging too weak: {before} -> {after}");
    }

    #[test]
    fn transitivity_via_gossip() {
        let mut a = Prophet::new(ProphetConfig::default());
        let mut b = Prophet::new(ProphetConfig::default());
        // b knows the destination 9 well.
        b.on_contact_up(t(0.0), NodeId(9));
        // a meets b.
        a.on_contact_up(t(10.0), NodeId(1));
        let payload = b.export_gossip(t(10.0)).unwrap();
        a.import_gossip(t(10.0), NodeId(1), &payload);
        // P(a,9) >= P(a,b) * P(b,9) * beta = 0.75 * ~0.75 * 0.25.
        let p = a.predictability(NodeId(9));
        assert!(p > 0.13, "transitivity too weak: {p}");
        assert!(p < 0.75);
    }

    #[test]
    fn forwards_only_to_better_relays() {
        let mut me = Prophet::new(ProphetConfig::default());
        let mut relay = Prophet::new(ProphetConfig::default());
        relay.on_contact_up(t(0.0), NodeId(9)); // relay knows dest
        me.on_contact_up(t(10.0), NodeId(2)); // me meets relay
        let payload = relay.export_gossip(t(10.0)).unwrap();
        me.import_gossip(t(10.0), NodeId(2), &payload);

        let mut m = TestMessage::sample(1);
        m.destination = NodeId(9);
        m.copies = 1;
        assert_eq!(
            me.eligibility(&ctx(2, 10.0), &m.view(), false),
            Some(TransferKind::Replicate {
                sender_keeps: 1,
                receiver_gets: 1
            })
        );
        // A peer with no knowledge is not a better relay.
        let clueless = Prophet::new(ProphetConfig::default());
        let _ = clueless;
        let mut me2 = Prophet::new(ProphetConfig::default());
        me2.on_contact_up(t(10.0), NodeId(2));
        assert_eq!(me2.eligibility(&ctx(2, 10.0), &m.view(), false), None);
    }

    #[test]
    fn destination_always_gets_delivery() {
        let p = Prophet::new(ProphetConfig::default());
        let mut m = TestMessage::sample(1);
        m.destination = NodeId(9);
        assert_eq!(
            p.eligibility(&ctx(9, 5.0), &m.view(), false),
            Some(TransferKind::Delivery)
        );
        assert_eq!(p.eligibility(&ctx(9, 5.0), &m.view(), true), None);
    }

    #[test]
    fn malformed_gossip_is_ignored() {
        let mut p = Prophet::new(ProphetConfig::default());
        p.import_gossip(t(0.0), NodeId(1), b"not json at all");
        assert_eq!(p.predictability(NodeId(1)), 0.0);
    }

    #[test]
    fn contact_down_clears_peer_table() {
        let mut me = Prophet::new(ProphetConfig::default());
        let mut relay = Prophet::new(ProphetConfig::default());
        relay.on_contact_up(t(0.0), NodeId(9));
        me.on_contact_up(t(10.0), NodeId(2));
        let payload = relay.export_gossip(t(10.0)).unwrap();
        me.import_gossip(t(10.0), NodeId(2), &payload);
        assert!(me.peer_predictability(NodeId(2), NodeId(9)) > 0.0);
        me.on_contact_down(t(20.0), NodeId(2));
        assert_eq!(me.peer_predictability(NodeId(2), NodeId(9)), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_config_rejected() {
        let _ = Prophet::new(ProphetConfig {
            p_init: 1.5,
            ..Default::default()
        });
    }
}
