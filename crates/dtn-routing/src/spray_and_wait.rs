//! Spray-and-Wait (Spyropoulos et al., WDTN 2005) — the paper's router.
//!
//! Every message starts with `L` copy tokens at its source.
//!
//! * **Spray phase** (`C_i > 1`): on meeting a node without the message,
//!   hand over tokens. *Binary* mode gives `⌊C_i/2⌋` and keeps
//!   `⌈C_i/2⌉`; *source* mode gives exactly one token and only lets the
//!   source spray.
//! * **Wait phase** (`C_i = 1`): hold the message and transfer it only on
//!   meeting the destination ("direct transmission").
//!
//! The binary-spray timestamps the SDSRP estimator consumes (Eq. 15) are
//! appended by the simulator whenever a `Replicate` decided here
//! completes.

use crate::protocol::{delivery_if_destination, RoutingCtx, RoutingProtocol, TransferKind};
use dtn_buffer::view::MessageView;
use serde::{Deserialize, Serialize};

/// Token-distribution flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SprayMode {
    /// Binary spray: split tokens in half at every spray (the paper's
    /// setting; optimal for homogeneous mobility per the original
    /// Spray-and-Wait analysis).
    Binary,
    /// Source spray: only the source distributes, one token at a time.
    Source,
}

/// The Spray-and-Wait protocol state for one node.
#[derive(Debug, Clone, Copy)]
pub struct SprayAndWait {
    mode: SprayMode,
}

impl SprayAndWait {
    /// Binary spray-and-wait (the paper's configuration).
    pub fn binary() -> Self {
        SprayAndWait {
            mode: SprayMode::Binary,
        }
    }

    /// Source spray-and-wait.
    pub fn source() -> Self {
        SprayAndWait {
            mode: SprayMode::Source,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> SprayMode {
        self.mode
    }
}

impl RoutingProtocol for SprayAndWait {
    fn name(&self) -> &'static str {
        match self.mode {
            SprayMode::Binary => "SprayAndWait(binary)",
            SprayMode::Source => "SprayAndWait(source)",
        }
    }

    fn eligibility(
        &self,
        ctx: &RoutingCtx,
        msg: &MessageView<'_>,
        peer_has: bool,
    ) -> Option<TransferKind> {
        if let Some(d) = delivery_if_destination(ctx, msg, peer_has) {
            return Some(d);
        }
        if peer_has || msg.copies <= 1 {
            // Wait phase: direct transmission only.
            return None;
        }
        match self.mode {
            SprayMode::Binary => Some(TransferKind::Replicate {
                sender_keeps: msg.copies - msg.copies / 2, // ceil
                receiver_gets: msg.copies / 2,             // floor
            }),
            SprayMode::Source => {
                if msg.source == ctx.me {
                    Some(TransferKind::Replicate {
                        sender_keeps: msg.copies - 1,
                        receiver_gets: 1,
                    })
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_buffer::view::TestMessage;
    use dtn_core::ids::NodeId;
    use dtn_core::time::SimTime;

    fn ctx(me: u32, peer: u32) -> RoutingCtx {
        RoutingCtx {
            me: NodeId(me),
            peer: NodeId(peer),
            now: SimTime::ZERO,
        }
    }

    fn msg(copies: u32, source: u32, dest: u32) -> TestMessage {
        let mut m = TestMessage::sample(1);
        m.copies = copies;
        m.source = NodeId(source);
        m.destination = NodeId(dest);
        m
    }

    #[test]
    fn binary_splits_tokens_floor_ceil() {
        let p = SprayAndWait::binary();
        for (c, keep, give) in [(16u32, 8u32, 8u32), (7, 4, 3), (2, 1, 1), (3, 2, 1)] {
            let m = msg(c, 0, 9);
            assert_eq!(
                p.eligibility(&ctx(0, 1), &m.view(), false),
                Some(TransferKind::Replicate {
                    sender_keeps: keep,
                    receiver_gets: give
                }),
                "C = {c}"
            );
        }
    }

    #[test]
    fn wait_phase_only_delivers() {
        let p = SprayAndWait::binary();
        let m = msg(1, 0, 9);
        // Non-destination peer: nothing.
        assert_eq!(p.eligibility(&ctx(0, 1), &m.view(), false), None);
        // Destination: delivery.
        assert_eq!(
            p.eligibility(&ctx(0, 9), &m.view(), false),
            Some(TransferKind::Delivery)
        );
    }

    #[test]
    fn delivery_takes_precedence_over_spray() {
        let p = SprayAndWait::binary();
        let m = msg(16, 0, 9);
        assert_eq!(
            p.eligibility(&ctx(0, 9), &m.view(), false),
            Some(TransferKind::Delivery)
        );
    }

    #[test]
    fn never_resends_to_holder() {
        let p = SprayAndWait::binary();
        let m = msg(16, 0, 9);
        assert_eq!(p.eligibility(&ctx(0, 1), &m.view(), true), None);
        assert_eq!(p.eligibility(&ctx(0, 9), &m.view(), true), None);
    }

    #[test]
    fn source_mode_only_source_sprays() {
        let p = SprayAndWait::source();
        let m = msg(8, 0, 9);
        // At the source: give exactly one token.
        assert_eq!(
            p.eligibility(&ctx(0, 1), &m.view(), false),
            Some(TransferKind::Replicate {
                sender_keeps: 7,
                receiver_gets: 1
            })
        );
        // At a relay (me != source): wait phase regardless of tokens.
        assert_eq!(p.eligibility(&ctx(3, 1), &m.view(), false), None);
        // Relay still delivers.
        assert_eq!(
            p.eligibility(&ctx(3, 9), &m.view(), false),
            Some(TransferKind::Delivery)
        );
    }

    #[test]
    fn names() {
        assert_eq!(SprayAndWait::binary().name(), "SprayAndWait(binary)");
        assert_eq!(SprayAndWait::source().name(), "SprayAndWait(source)");
        assert_eq!(SprayAndWait::binary().mode(), SprayMode::Binary);
    }
}
