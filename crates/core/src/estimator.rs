//! Distributed estimation of `m_i`, `n_i` and λ — paper Section III-C.
//!
//! The priority (Eq. 10) needs three quantities no DTN node can observe
//! directly:
//!
//! * **`m_i`** — how many nodes have seen message `i`. Estimated from the
//!   binary-spray timestamps carried with each copy (Eq. 15, Fig. 6):
//!   every spray event at time `t_k` seeded a subtree that has itself
//!   been doubling roughly every `E(I_min)` seconds since.
//! * **`d_i`** — how many copies have been *dropped* network-wide.
//!   Observed through the gossiped dropped lists
//!   ([`crate::dropped_list`]); then `n_i = m_i + 1 - d_i` (Eq. 14).
//! * **λ** — the intermeeting rate. Each node measures its own
//!   intermeeting times (Definition 1) online; `λ = 1/E(I)`.

use dtn_core::ids::NodeId;
use dtn_core::stats::OnlineStats;
use dtn_core::time::SimTime;
use std::collections::HashMap;

/// Estimates `m_i` (nodes that have seen message `i`, excluding the
/// source) from the binary-spray timestamps along this copy's path —
/// paper Eq. 15:
///
/// ```text
/// m_i(T_i) = Σ_k 2^⌊(now − t_k) / E(I_min)⌋ + 1
/// ```
///
/// Each recorded spray at `t_k` handed half the tokens to a peer whose
/// own subtree is assumed to have kept binary-spraying every `E(I_min)`
/// seconds (dotted branches in Fig. 6). The `+1` counts the node at the
/// end of the recorded chain itself.
///
/// The estimate is capped at `N - 1` — a message cannot have been seen by
/// more nodes than exist (excluding the source).
///
/// Total over its whole domain: the doubling exponent is clamped to 62
/// (`1u64 << 63` would already overflow; anything past the cap
/// saturates anyway, so long-elapsed timestamps with a tiny `E(I_min)`
/// cannot panic in debug or wrap in release), and a degenerate
/// `E(I_min)` (zero, negative, or NaN — possible when the priority
/// model itself is degenerate) is treated as an instantly-saturated
/// spray tree rather than a crash.
pub fn estimate_m(spray_times: &[SimTime], now: SimTime, e_i_min: f64, n_nodes: usize) -> u32 {
    let cap = (n_nodes.saturating_sub(1)) as u64;
    // NaN also lands here: a NaN `E(I_min)` fails the `>` comparison.
    if !spray_times.is_empty()
        && !matches!(e_i_min.partial_cmp(&0.0), Some(std::cmp::Ordering::Greater))
    {
        return cap as u32;
    }
    let mut total: u64 = 1; // the chain endpoint itself
    for &t_k in spray_times {
        let dt = (now - t_k).as_secs().max(0.0);
        let exp = (dt / e_i_min).floor().clamp(0.0, 62.0) as u32;
        total = total.saturating_add(1u64 << exp);
        if total >= cap {
            return cap as u32;
        }
    }
    total.min(cap) as u32
}

/// `n_i = m_i + 1 - d_i` (Eq. 14), floored at 1: the estimating node
/// itself still holds a copy (it is ranking the message in its own
/// buffer), so fewer than one holder is impossible.
pub fn estimate_n(seen: u32, dropped: u32) -> u32 {
    (seen + 1).saturating_sub(dropped).max(1)
}

/// Online estimator of the intermeeting rate λ.
///
/// Tracks, per peer, when the previous contact ended; each new contact
/// start yields one intermeeting sample (Definition 1). `λ = 1/mean`.
/// Until `min_samples` samples have accumulated the estimator reports
/// the configured prior (cold-start behaviour the paper leaves implicit).
///
/// ## Churn hygiene
///
/// `last_contact_end` entries would otherwise live forever: a peer that
/// crashes, reboots, or sits out a long radio blackout produces one
/// enormous "intermeeting" gap on its next contact, permanently skewing
/// the running mean. Two defences exist:
///
/// * [`with_max_gap`](Self::with_max_gap) ages stale endpoints out —
///   a gap beyond the cutoff is discarded (the endpoint is treated as
///   lost history, not a sample);
/// * [`reset`](Self::reset) / [`forget_peer`](Self::forget_peer) let
///   the owner drop state explicitly when it *observes* churn (its own
///   crash wipe, a peer known to have rebooted).
///
/// The default cutoff is `+∞`, so estimators built through the existing
/// constructors behave bit-identically to before.
#[derive(Debug, Clone)]
pub struct LambdaEstimator {
    last_contact_end: HashMap<NodeId, SimTime>,
    samples: OnlineStats,
    per_peer: HashMap<NodeId, OnlineStats>,
    prior_lambda: f64,
    min_samples: u64,
    max_gap: f64,
}

impl LambdaEstimator {
    /// Creates an estimator with a prior rate used until `min_samples`
    /// real samples exist.
    ///
    /// # Panics
    /// Panics if `prior_lambda` is not strictly positive.
    pub fn new(prior_lambda: f64, min_samples: u64) -> Self {
        assert!(
            prior_lambda > 0.0 && prior_lambda.is_finite(),
            "prior lambda must be positive"
        );
        LambdaEstimator {
            last_contact_end: HashMap::new(),
            samples: OnlineStats::new(),
            per_peer: HashMap::new(),
            prior_lambda,
            min_samples,
            max_gap: f64::INFINITY,
        }
    }

    /// Sets the staleness cutoff: an intermeeting gap longer than
    /// `max_gap` seconds is treated as a lost contact-history endpoint
    /// (the peer was presumably down) and discarded instead of sampled.
    ///
    /// # Panics
    /// Panics if `max_gap` is not strictly positive.
    pub fn with_max_gap(mut self, max_gap: f64) -> Self {
        assert!(max_gap > 0.0, "max gap must be positive");
        self.max_gap = max_gap;
        self
    }

    /// Records a contact coming up with `peer` at `now`. Returns `true`
    /// iff an intermeeting gap was actually sampled — i.e. iff this call
    /// can move [`lambda`](Self::lambda). Callers memoising λ-derived
    /// quantities only need to invalidate when this returns `true`.
    ///
    /// Gaps beyond the [`with_max_gap`](Self::with_max_gap) cutoff are
    /// discarded: the stale endpoint is dropped (not sampled) and the
    /// call returns `false`.
    pub fn on_contact_up(&mut self, now: SimTime, peer: NodeId) -> bool {
        if let Some(end) = self.last_contact_end.get(&peer) {
            let gap = (now - *end).as_secs();
            if gap > self.max_gap {
                // The peer was silent far longer than any plausible
                // intermeeting time: age the endpoint out rather than
                // poison the mean with one enormous bogus sample.
                self.last_contact_end.remove(&peer);
                return false;
            }
            if gap > 0.0 {
                self.samples.push(gap);
                self.per_peer.entry(peer).or_default().push(gap);
                return true;
            }
        }
        false
    }

    /// Drops all contact history *about* `peer` (its pending endpoint
    /// and its per-peer gap statistics); the pooled mean keeps samples
    /// already absorbed. Use when this node learns `peer` has rebooted.
    pub fn forget_peer(&mut self, peer: NodeId) {
        self.last_contact_end.remove(&peer);
        self.per_peer.remove(&peer);
    }

    /// Wipes every sample and endpoint, returning the estimator to its
    /// cold-start state (prior, `min_samples` and the staleness cutoff
    /// are kept). Used when the owning node itself crashes.
    pub fn reset(&mut self) {
        self.last_contact_end.clear();
        self.samples = OnlineStats::new();
        self.per_peer.clear();
    }

    /// Records the contact with `peer` ending at `now`.
    pub fn on_contact_down(&mut self, now: SimTime, peer: NodeId) {
        self.last_contact_end.insert(peer, now);
    }

    /// Current λ estimate (per second).
    pub fn lambda(&self) -> f64 {
        if self.samples.count() < self.min_samples {
            return self.prior_lambda;
        }
        match self.samples.mean() {
            Some(mean) if mean > 0.0 => 1.0 / mean,
            _ => self.prior_lambda,
        }
    }

    /// λ estimate specific to meeting `peer` (extension: SDSRP-H,
    /// heterogeneity-aware SDSRP). Falls back to the pooled
    /// [`lambda`](Self::lambda) until `min_samples` gaps have been
    /// observed *with that peer* — under homogeneous mobility the two
    /// coincide, under clustered/community mobility they diverge by
    /// design.
    pub fn lambda_for(&self, peer: NodeId) -> f64 {
        match self.per_peer.get(&peer) {
            Some(stats) if stats.count() >= self.min_samples => match stats.mean() {
                Some(mean) if mean > 0.0 => 1.0 / mean,
                _ => self.lambda(),
            },
            _ => self.lambda(),
        }
    }

    /// Number of intermeeting samples observed so far.
    pub fn sample_count(&self) -> u64 {
        self.samples.count()
    }

    /// Mean observed intermeeting time, if any samples exist.
    pub fn mean_intermeeting(&self) -> Option<f64> {
        self.samples.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn m_estimate_counts_subtrees() {
        // E(I_min) = 10 s; sprays at t=0 and t=20; now = 40.
        // Subtrees: 2^⌊40/10⌋ = 16 and 2^⌊20/10⌋ = 4; +1 -> 21.
        let m = estimate_m(&[t(0.0), t(20.0)], t(40.0), 10.0, 1000);
        assert_eq!(m, 21);
    }

    #[test]
    fn m_estimate_no_sprays() {
        // A source that never sprayed: only itself has the message beyond
        // the source, i.e. the estimate is the chain endpoint alone.
        assert_eq!(estimate_m(&[], t(100.0), 10.0, 100), 1);
    }

    #[test]
    fn m_estimate_caps_at_population() {
        // Ancient spray: the doubling estimate explodes but must cap.
        let m = estimate_m(&[t(0.0)], t(1e6), 1.0, 100);
        assert_eq!(m, 99);
    }

    #[test]
    fn m_estimate_fresh_spray_counts_one_peer() {
        // Spray just happened: floor(0/E) = 0 -> subtree size 1, +1 = 2.
        let m = estimate_m(&[t(50.0)], t(50.0), 10.0, 100);
        assert_eq!(m, 2);
    }

    #[test]
    fn m_estimate_handles_future_timestamps_gracefully() {
        // Clock skew: spray time after `now` clamps to dt = 0.
        let m = estimate_m(&[t(60.0)], t(50.0), 10.0, 100);
        assert_eq!(m, 2);
    }

    #[test]
    fn m_estimate_huge_elapsed_time_does_not_overflow() {
        // Regression: ⌊(now − t_k)/E(I_min)⌋ can exceed 63 by orders of
        // magnitude (long TTLs, tiny E(I_min)); `1u64 << exp` would
        // panic in debug and wrap in release. The clamp must kick in
        // and the estimate saturate at N−1.
        assert_eq!(estimate_m(&[t(0.0)], t(1e15), 1e-6, 100), 99);
        // Exactly at and just past the shift-overflow boundary.
        assert_eq!(estimate_m(&[t(0.0)], t(63.0), 1.0, 100), 99);
        assert_eq!(estimate_m(&[t(0.0)], t(64.0), 1.0, 100), 99);
        // Many ancient sprays together still saturate, never wrap.
        let sprays: Vec<SimTime> = (0..32).map(|k| t(k as f64)).collect();
        assert_eq!(estimate_m(&sprays, t(1e12), 1e-3, 50), 49);
    }

    #[test]
    fn m_estimate_degenerate_e_i_min_is_total() {
        // Zero, negative, NaN and infinite E(I_min) must not panic.
        assert_eq!(estimate_m(&[t(0.0)], t(10.0), 0.0, 100), 99);
        assert_eq!(estimate_m(&[t(0.0)], t(10.0), -1.0, 100), 99);
        assert_eq!(estimate_m(&[t(0.0)], t(10.0), f64::NAN, 100), 99);
        // Infinite E(I_min) (degenerate 1-node model): no doubling at
        // all — each recorded spray contributes exactly one peer.
        assert_eq!(estimate_m(&[t(0.0)], t(10.0), f64::INFINITY, 100), 2);
        // No sprays recorded: the endpoint alone, whatever E(I_min).
        assert_eq!(estimate_m(&[], t(10.0), 0.0, 100), 1);
        // Degenerate populations cap at N−1 (0 for a 1-node network).
        assert_eq!(estimate_m(&[t(0.0)], t(1e9), 1e-9, 1), 0);
        assert_eq!(estimate_m(&[t(0.0)], t(1e9), 1e-9, 2), 1);
    }

    #[test]
    fn n_estimate_eq14() {
        assert_eq!(estimate_n(5, 2), 4); // 5 + 1 - 2
        assert_eq!(estimate_n(0, 0), 1);
        // More drops recorded than sightings estimated: floor at 1.
        assert_eq!(estimate_n(2, 10), 1);
    }

    #[test]
    fn lambda_cold_start_uses_prior() {
        let est = LambdaEstimator::new(0.01, 5);
        assert_eq!(est.lambda(), 0.01);
        assert_eq!(est.sample_count(), 0);
    }

    #[test]
    fn lambda_learns_from_gaps() {
        let mut est = LambdaEstimator::new(1.0, 1);
        let peer = NodeId(7);
        // Contacts at [0,10], [110,120], [220,230]: gaps of 100 each.
        est.on_contact_up(t(0.0), peer);
        est.on_contact_down(t(10.0), peer);
        est.on_contact_up(t(110.0), peer);
        est.on_contact_down(t(120.0), peer);
        est.on_contact_up(t(220.0), peer);
        assert_eq!(est.sample_count(), 2);
        assert!((est.lambda() - 1.0 / 100.0).abs() < 1e-12);
        assert_eq!(est.mean_intermeeting(), Some(100.0));
    }

    #[test]
    fn lambda_tracks_peers_independently() {
        let mut est = LambdaEstimator::new(1.0, 1);
        est.on_contact_down(t(0.0), NodeId(1));
        est.on_contact_down(t(0.0), NodeId(2));
        est.on_contact_up(t(50.0), NodeId(1)); // gap 50
        est.on_contact_up(t(150.0), NodeId(2)); // gap 150
        assert_eq!(est.sample_count(), 2);
        assert!((est.mean_intermeeting().unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_first_contact_is_not_a_sample() {
        let mut est = LambdaEstimator::new(0.5, 1);
        est.on_contact_up(t(100.0), NodeId(3));
        assert_eq!(est.sample_count(), 0);
        assert_eq!(est.lambda(), 0.5);
    }

    #[test]
    fn lambda_zero_gap_ignored() {
        let mut est = LambdaEstimator::new(0.5, 1);
        est.on_contact_down(t(10.0), NodeId(3));
        est.on_contact_up(t(10.0), NodeId(3));
        assert_eq!(est.sample_count(), 0);
    }

    #[test]
    fn lambda_recovers_after_peer_crash_with_max_gap() {
        // Regression: a peer that goes silent for a whole reboot used to
        // contribute one enormous intermeeting sample that permanently
        // skewed the running mean. With a staleness cutoff the bogus gap
        // is discarded and λ converges back to the true cadence.
        let mut est = LambdaEstimator::new(1.0 / 2000.0, 1).with_max_gap(1000.0);
        let peer = NodeId(7);
        // Healthy cadence: gaps of 100 s.
        est.on_contact_down(t(0.0), peer);
        est.on_contact_up(t(100.0), peer);
        est.on_contact_down(t(110.0), peer);
        est.on_contact_up(t(210.0), peer);
        est.on_contact_down(t(220.0), peer);
        assert!((est.lambda() - 1.0 / 100.0).abs() < 1e-12);

        // The peer crashes and is silent for 50 000 s. Its reappearance
        // must NOT be sampled (gap 50 000 > cutoff 1000).
        let sampled = est.on_contact_up(t(50_220.0), peer);
        assert!(!sampled, "stale gap must not be a sample");
        assert_eq!(est.sample_count(), 2);
        assert!((est.lambda() - 1.0 / 100.0).abs() < 1e-12);

        // Post-reboot cadence resumes at 100 s: λ stays at the truth.
        est.on_contact_down(t(50_230.0), peer);
        est.on_contact_up(t(50_330.0), peer);
        assert_eq!(est.sample_count(), 3);
        assert!((est.lambda() - 1.0 / 100.0).abs() < 1e-12);

        // Counterfactual without the cutoff: the same history would put
        // a 50 000 s sample in the mean and crater λ.
        let mut skewed = LambdaEstimator::new(1.0 / 2000.0, 1);
        skewed.on_contact_down(t(0.0), peer);
        skewed.on_contact_up(t(100.0), peer);
        skewed.on_contact_down(t(110.0), peer);
        skewed.on_contact_up(t(210.0), peer);
        skewed.on_contact_down(t(220.0), peer);
        skewed.on_contact_up(t(50_220.0), peer);
        assert!(skewed.lambda() < 1.0 / 10_000.0, "bug no longer reproduces");
    }

    #[test]
    fn reset_returns_to_cold_start() {
        let mut est = LambdaEstimator::new(0.01, 2);
        est.on_contact_down(t(0.0), NodeId(1));
        est.on_contact_up(t(50.0), NodeId(1));
        est.on_contact_down(t(60.0), NodeId(1));
        est.on_contact_up(t(110.0), NodeId(1));
        assert_eq!(est.sample_count(), 2);
        assert!((est.lambda() - 1.0 / 50.0).abs() < 1e-12);
        est.reset();
        assert_eq!(est.sample_count(), 0);
        assert_eq!(est.lambda(), 0.01, "prior survives the reset");
        // The pre-crash endpoint is gone: the next contact-up is a first
        // contact, not a bogus crash-spanning gap.
        assert!(!est.on_contact_up(t(5000.0), NodeId(1)));
    }

    #[test]
    fn forget_peer_drops_only_that_peer() {
        let mut est = LambdaEstimator::new(1.0, 2);
        for k in 0..3 {
            est.on_contact_up(t(k as f64 * 100.0), NodeId(1));
            est.on_contact_down(t(k as f64 * 100.0 + 10.0), NodeId(1));
            est.on_contact_up(t(k as f64 * 100.0 + 1.0), NodeId(2));
            est.on_contact_down(t(k as f64 * 100.0 + 11.0), NodeId(2));
        }
        let pooled_before = est.lambda();
        est.forget_peer(NodeId(2));
        // Pooled stats keep absorbed samples; peer 2's history is gone.
        assert_eq!(est.lambda(), pooled_before);
        assert_eq!(est.lambda_for(NodeId(2)), est.lambda());
        assert_ne!(est.lambda_for(NodeId(1)), 0.0);
        // Peer 2's next contact is a first contact again.
        assert!(!est.on_contact_up(t(10_000.0), NodeId(2)));
    }

    proptest! {
        /// The m estimate is monotone in elapsed time and always within
        /// [1, N-1].
        #[test]
        fn prop_m_monotone_and_bounded(
            sprays in prop::collection::vec(0.0f64..1000.0, 0..6),
            now in 1000.0f64..5000.0,
            e_min in 1.0f64..500.0,
        ) {
            let times: Vec<SimTime> = sprays.iter().map(|&s| t(s)).collect();
            let m1 = estimate_m(&times, t(now), e_min, 200);
            let m2 = estimate_m(&times, t(now + 100.0), e_min, 200);
            prop_assert!(m1 >= 1);
            prop_assert!(m1 <= 199);
            prop_assert!(m2 >= m1);
        }

        /// n = m + 1 - d stays >= 1 for all inputs.
        #[test]
        fn prop_n_at_least_one(seen in 0u32..1000, dropped in 0u32..1000) {
            prop_assert!(estimate_n(seen, dropped) >= 1);
        }

        /// Extreme corners never panic or escape the cap: huge elapsed
        /// times, microscopic E(I_min), and degenerate populations
        /// (N ∈ {1, 2}) included.
        #[test]
        fn prop_m_total_at_extremes(
            sprays in prop::collection::vec(0.0f64..100.0, 0..8),
            now in 0.0f64..1e18,
            e_min in 1e-9f64..1e9,
            n_nodes in 1usize..300,
        ) {
            let times: Vec<SimTime> = sprays.iter().map(|&s| t(s)).collect();
            let m = estimate_m(&times, t(now), e_min, n_nodes);
            let cap = n_nodes.saturating_sub(1) as u32;
            prop_assert!(m <= cap);
            if !times.is_empty() || cap >= 1 {
                prop_assert!(m >= 1u32.min(cap));
            }
        }
    }
}
