//! The gossiped dropped-message records — paper Fig. 5.
//!
//! Every node maintains one record per *origin node*: the set of messages
//! that origin has dropped, stamped with a record time. On contact the
//! two nodes exchange records and keep, per origin, the one with the
//! **newest record time** ("only the source node can modify the record
//! time, which happens if and only if a new drop action occurs in its
//! buffer"). Summing over records gives `d_i`, the network-wide drop
//! count of message `i` (input to Eq. 14); and "nodes reject receiving
//! the message already in their dropped lists", which prevents a dropped
//! copy from being counted twice.

use dtn_core::ids::{MessageId, NodeId};
use dtn_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One origin's dropped-message record (a row of Fig. 5's structure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroppedRecord {
    /// Messages this origin has dropped.
    pub dropped: BTreeSet<MessageId>,
    /// When the origin last modified the record.
    pub record_time: SimTime,
}

/// A node's view of everyone's dropped lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroppedList {
    /// The node that owns (and may modify) the `own` record.
    owner: NodeId,
    /// Records per origin node, `owner`'s own record included.
    records: BTreeMap<NodeId, DroppedRecord>,
}

impl DroppedList {
    /// An empty list owned by `owner`.
    pub fn new(owner: NodeId) -> Self {
        DroppedList {
            owner,
            records: BTreeMap::new(),
        }
    }

    /// Registers that the owner dropped `msg` at `now` (Fig. 5: only a
    /// new drop action in the owner's buffer updates its record time).
    pub fn record_own_drop(&mut self, now: SimTime, msg: MessageId) {
        let rec = self
            .records
            .entry(self.owner)
            .or_insert_with(|| DroppedRecord {
                dropped: BTreeSet::new(),
                record_time: now,
            });
        rec.dropped.insert(msg);
        rec.record_time = now;
    }

    /// Merges a peer's records: per origin, the record with the newest
    /// record time wins; the owner's own record is never overwritten by
    /// hearsay. Returns the number of records adopted from the peer.
    pub fn merge(&mut self, peer_records: &BTreeMap<NodeId, DroppedRecord>) -> usize {
        let mut adopted = 0;
        for (&origin, rec) in peer_records {
            if origin == self.owner {
                continue;
            }
            match self.records.get(&origin) {
                Some(mine) if mine.record_time >= rec.record_time => {}
                _ => {
                    self.records.insert(origin, rec.clone());
                    adopted += 1;
                }
            }
        }
        adopted
    }

    /// `d_i`: how many distinct nodes are known to have dropped `msg`.
    pub fn drop_count(&self, msg: MessageId) -> u32 {
        self.records
            .values()
            .filter(|r| r.dropped.contains(&msg))
            .count() as u32
    }

    /// Whether any known record lists `msg` (the paper's receive-reject
    /// test).
    pub fn anyone_dropped(&self, msg: MessageId) -> bool {
        self.records.values().any(|r| r.dropped.contains(&msg))
    }

    /// Whether the owner itself dropped `msg`.
    pub fn own_dropped(&self, msg: MessageId) -> bool {
        self.records
            .get(&self.owner)
            .is_some_and(|r| r.dropped.contains(&msg))
    }

    /// The raw records (for gossip serialisation).
    pub fn records(&self) -> &BTreeMap<NodeId, DroppedRecord> {
        &self.records
    }

    /// Number of origins with a record.
    pub fn origin_count(&self) -> usize {
        self.records.len()
    }

    /// Total dropped-message entries across all records (diagnostic —
    /// the paper assumes this stays negligible next to message sizes).
    pub fn entry_count(&self) -> usize {
        self.records.values().map(|r| r.dropped.len()).sum()
    }

    /// Forgets messages for which `expired(msg)` returns true (entries
    /// about TTL-expired messages can never matter again). Records left
    /// empty are removed; record times are untouched, matching the
    /// "only drops modify record time" rule.
    pub fn prune(&mut self, mut expired: impl FnMut(MessageId) -> bool) {
        for rec in self.records.values_mut() {
            rec.dropped.retain(|&m| !expired(m));
        }
        self.records.retain(|_, r| !r.dropped.is_empty());
    }

    /// Serialises records for the contact gossip payload.
    pub fn to_gossip_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(&self.records).expect("dropped list serialises")
    }

    /// Merges a gossip payload produced by
    /// [`to_gossip_bytes`](Self::to_gossip_bytes); malformed payloads are
    /// ignored (a real radio would checksum, but robustness over panic
    /// here). Returns the number of records adopted.
    pub fn merge_gossip_bytes(&mut self, bytes: &[u8]) -> usize {
        match serde_json::from_slice::<BTreeMap<NodeId, DroppedRecord>>(bytes) {
            Ok(records) => self.merge(&records),
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn own_drops_are_recorded() {
        let mut dl = DroppedList::new(NodeId(3));
        assert!(!dl.own_dropped(MessageId(1)));
        dl.record_own_drop(t(10.0), MessageId(1));
        dl.record_own_drop(t(12.0), MessageId(2));
        assert!(dl.own_dropped(MessageId(1)));
        assert_eq!(dl.drop_count(MessageId(1)), 1);
        assert_eq!(dl.entry_count(), 2);
        assert_eq!(dl.origin_count(), 1);
        assert_eq!(dl.records()[&NodeId(3)].record_time, t(12.0));
    }

    #[test]
    fn merge_keeps_newest_record_per_origin() {
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        b.record_own_drop(t(5.0), MessageId(10));
        a.merge(b.records());
        assert!(a.anyone_dropped(MessageId(10)));

        // b updates its record later; the merge replaces a's stale copy.
        b.record_own_drop(t(9.0), MessageId(11));
        a.merge(b.records());
        assert_eq!(a.drop_count(MessageId(11)), 1);

        // A stale version of b's record (record_time 5) must NOT clobber
        // the newer one a already has (record_time 9).
        let mut stale = BTreeMap::new();
        stale.insert(
            NodeId(1),
            DroppedRecord {
                dropped: BTreeSet::from([MessageId(10)]),
                record_time: t(5.0),
            },
        );
        a.merge(&stale);
        assert!(a.anyone_dropped(MessageId(11)), "stale record clobbered");
    }

    #[test]
    fn merge_never_overwrites_own_record() {
        let mut a = DroppedList::new(NodeId(0));
        a.record_own_drop(t(1.0), MessageId(1));
        let mut forged = BTreeMap::new();
        forged.insert(
            NodeId(0),
            DroppedRecord {
                dropped: BTreeSet::from([MessageId(99)]),
                record_time: t(100.0),
            },
        );
        a.merge(&forged);
        assert!(!a.anyone_dropped(MessageId(99)));
        assert!(a.own_dropped(MessageId(1)));
    }

    #[test]
    fn drop_count_sums_across_origins() {
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        let mut c = DroppedList::new(NodeId(2));
        a.record_own_drop(t(1.0), MessageId(7));
        b.record_own_drop(t(2.0), MessageId(7));
        c.merge(a.records());
        c.merge(b.records());
        assert_eq!(c.drop_count(MessageId(7)), 2);
        assert_eq!(c.drop_count(MessageId(8)), 0);
    }

    #[test]
    fn transitive_gossip_propagates() {
        // a -> b -> c without a and c ever meeting.
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        let mut c = DroppedList::new(NodeId(2));
        a.record_own_drop(t(1.0), MessageId(5));
        b.merge(a.records());
        c.merge(b.records());
        assert!(c.anyone_dropped(MessageId(5)));
    }

    #[test]
    fn gossip_bytes_roundtrip() {
        let mut a = DroppedList::new(NodeId(0));
        a.record_own_drop(t(3.0), MessageId(4));
        let bytes = a.to_gossip_bytes();
        let mut b = DroppedList::new(NodeId(1));
        b.merge_gossip_bytes(&bytes);
        assert!(b.anyone_dropped(MessageId(4)));
        // Garbage is ignored.
        b.merge_gossip_bytes(b"definitely not json");
        assert_eq!(b.drop_count(MessageId(4)), 1);
    }

    #[test]
    fn merge_adopts_same_timestamp_records_from_two_sources() {
        // Two distinct origins whose records carry the *same* record
        // time must both be adopted — the newest-wins rule compares per
        // origin, never across origins.
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        let mut c = DroppedList::new(NodeId(2));
        b.record_own_drop(t(7.0), MessageId(10));
        c.record_own_drop(t(7.0), MessageId(11));
        assert_eq!(a.merge(b.records()), 1);
        assert_eq!(a.merge(c.records()), 1);
        assert!(a.anyone_dropped(MessageId(10)));
        assert!(a.anyone_dropped(MessageId(11)));

        // An equal-timestamp copy of an origin we already know is a tie:
        // ours is kept and nothing counts as adopted.
        assert_eq!(a.merge(b.records()), 0);
    }

    #[test]
    fn merge_counts_zero_for_forged_self_records() {
        let mut a = DroppedList::new(NodeId(0));
        let mut forged = BTreeMap::new();
        forged.insert(
            NodeId(0),
            DroppedRecord {
                dropped: BTreeSet::from([MessageId(99)]),
                record_time: t(100.0),
            },
        );
        assert_eq!(a.merge(&forged), 0);
        assert!(!a.anyone_dropped(MessageId(99)));
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        b.record_own_drop(t(4.0), MessageId(6));
        b.record_own_drop(t(5.0), MessageId(7));
        let payload = b.to_gossip_bytes();
        assert_eq!(a.merge_gossip_bytes(&payload), 1);
        let snapshot = a.clone();
        // Re-merging the identical payload adopts nothing and changes
        // nothing.
        assert_eq!(a.merge_gossip_bytes(&payload), 0);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn prune_removes_expired_entries() {
        let mut a = DroppedList::new(NodeId(0));
        a.record_own_drop(t(1.0), MessageId(1));
        a.record_own_drop(t(2.0), MessageId(2));
        let mut b = DroppedList::new(NodeId(1));
        b.record_own_drop(t(3.0), MessageId(1));
        a.merge(b.records());
        a.prune(|m| m == MessageId(1));
        assert!(!a.anyone_dropped(MessageId(1)));
        assert!(a.anyone_dropped(MessageId(2)));
        // b's record only contained message 1 -> whole record removed.
        assert_eq!(a.origin_count(), 1);
    }
}
