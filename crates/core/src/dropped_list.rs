//! The gossiped dropped-message records — paper Fig. 5.
//!
//! Every node maintains one record per *origin node*: the set of messages
//! that origin has dropped, stamped with a record time. On contact the
//! two nodes exchange records and keep, per origin, the one with the
//! **newest record time** ("only the source node can modify the record
//! time, which happens if and only if a new drop action occurs in its
//! buffer"). Summing over records gives `d_i`, the network-wide drop
//! count of message `i` (input to Eq. 14); and "nodes reject receiving
//! the message already in their dropped lists", which prevents a dropped
//! copy from being counted twice.
//!
//! Both `d_i` queries and the gossip payload sit on the simulator's
//! per-contact hot path, so the list maintains two derived caches: a
//! per-message occurrence index (O(1) `drop_count`/`anyone_dropped`)
//! and a memoised wire encoding (see
//! [`DroppedList::encode_records`] for the deterministic binary
//! format). Every mutator keeps them exactly in sync with the records.

use dtn_core::ids::{MessageId, NodeId};
use dtn_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Leading magic of the binary gossip payload (see
/// [`DroppedList::encode_records`]).
const GOSSIP_MAGIC: &[u8; 4] = b"DLG1";

/// One origin's dropped-message record (a row of Fig. 5's structure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroppedRecord {
    /// Messages this origin has dropped.
    pub dropped: BTreeSet<MessageId>,
    /// When the origin last modified the record.
    pub record_time: SimTime,
}

/// A node's view of everyone's dropped lists.
///
/// `records` is the authoritative Fig. 5 state; `counts` and `encoded`
/// are derived caches kept exactly in sync by every mutator, so the hot
/// per-contact queries ([`drop_count`](Self::drop_count),
/// [`anyone_dropped`](Self::anyone_dropped),
/// [`to_gossip_bytes`](Self::to_gossip_bytes)) cost O(1) instead of a
/// scan or re-serialisation over all origins.
#[derive(Debug, Clone)]
pub struct DroppedList {
    /// The node that owns (and may modify) the `own` record.
    owner: NodeId,
    /// Records per origin node, `owner`'s own record included.
    records: BTreeMap<NodeId, DroppedRecord>,
    /// Derived: per message, the number of origins whose record lists it
    /// (`d_i` of Eq. 14). Absent key means zero.
    counts: HashMap<MessageId, u32>,
    /// Derived: memoised gossip encoding of `records`, cleared by any
    /// mutation that changes them.
    encoded: Option<Vec<u8>>,
}

/// Equality is over the authoritative state only; the derived caches
/// (`counts`, `encoded`) are reconstructible and never observable.
impl PartialEq for DroppedList {
    fn eq(&self, other: &Self) -> bool {
        self.owner == other.owner && self.records == other.records
    }
}

/// Wire-format cursor helpers shared by the decoder, the validator and
/// the streaming merge.
fn take<'a>(cur: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if cur.len() < n {
        return None;
    }
    let (head, rest) = cur.split_at(n);
    *cur = rest;
    Some(head)
}

fn u32_at(cur: &mut &[u8]) -> Option<u32> {
    take(cur, 4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

fn u64_at(cur: &mut &[u8]) -> Option<u64> {
    take(cur, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn count_inc(counts: &mut HashMap<MessageId, u32>, msg: MessageId) {
    *counts.entry(msg).or_insert(0) += 1;
}

fn count_dec(counts: &mut HashMap<MessageId, u32>, msg: MessageId) {
    if let Some(c) = counts.get_mut(&msg) {
        *c -= 1;
        if *c == 0 {
            counts.remove(&msg);
        }
    }
}

impl DroppedList {
    /// An empty list owned by `owner`.
    pub fn new(owner: NodeId) -> Self {
        DroppedList {
            owner,
            records: BTreeMap::new(),
            counts: HashMap::new(),
            encoded: None,
        }
    }

    /// Registers that the owner dropped `msg` at `now` (Fig. 5: the
    /// record time moves *if and only if* a new drop action occurs).
    ///
    /// A re-drop of a message already in the owner's record is a no-op:
    /// bumping the time anyway would make every peer's newest-wins merge
    /// re-adopt an unchanged record — a network-wide gossip-adoption and
    /// cache-invalidation storm carrying zero information.
    pub fn record_own_drop(&mut self, now: SimTime, msg: MessageId) {
        let rec = self
            .records
            .entry(self.owner)
            .or_insert_with(|| DroppedRecord {
                dropped: BTreeSet::new(),
                record_time: now,
            });
        if rec.dropped.insert(msg) {
            count_inc(&mut self.counts, msg);
            rec.record_time = now;
            self.encoded = None;
        }
    }

    /// Wipes all records (own and adopted) and the derived caches,
    /// keeping the owner. Models the owner losing its dropped-list state
    /// in a crash: the rebooted node starts gossiping from scratch.
    pub fn clear(&mut self) {
        self.records.clear();
        self.counts.clear();
        self.encoded = None;
    }

    /// Merges a peer's records: per origin, the record with the newest
    /// record time wins; the owner's own record is never overwritten by
    /// hearsay. Returns the number of records adopted from the peer.
    pub fn merge(&mut self, peer_records: &BTreeMap<NodeId, DroppedRecord>) -> usize {
        self.merge_inner(peer_records, None)
    }

    /// [`merge`](Self::merge) that additionally reports, into `changed`,
    /// every message id whose `d_i` count may have moved: the symmetric
    /// difference of old vs new membership for each replaced record,
    /// and every entry of a newly adopted record. Lets callers
    /// invalidate per-message derived state (priority memos) surgically
    /// instead of wholesale. Ids may repeat across adopted records;
    /// `changed` is appended to, not cleared.
    pub fn merge_tracking(
        &mut self,
        peer_records: &BTreeMap<NodeId, DroppedRecord>,
        changed: &mut Vec<MessageId>,
    ) -> usize {
        self.merge_inner(peer_records, Some(changed))
    }

    fn merge_inner(
        &mut self,
        peer_records: &BTreeMap<NodeId, DroppedRecord>,
        mut changed: Option<&mut Vec<MessageId>>,
    ) -> usize {
        let mut adopted = 0;
        for (&origin, rec) in peer_records {
            if origin == self.owner {
                continue;
            }
            match self.records.get(&origin) {
                Some(mine) if mine.record_time >= rec.record_time => {}
                stale => {
                    if let Some(old) = stale {
                        if let Some(changed) = changed.as_deref_mut() {
                            changed.extend(old.dropped.symmetric_difference(&rec.dropped).copied());
                        }
                        for &m in &old.dropped {
                            count_dec(&mut self.counts, m);
                        }
                    } else if let Some(changed) = changed.as_deref_mut() {
                        changed.extend(rec.dropped.iter().copied());
                    }
                    for &m in &rec.dropped {
                        count_inc(&mut self.counts, m);
                    }
                    self.records.insert(origin, rec.clone());
                    adopted += 1;
                }
            }
        }
        if adopted > 0 {
            self.encoded = None;
        }
        adopted
    }

    /// `d_i`: how many distinct nodes are known to have dropped `msg`.
    /// O(1) via the maintained per-message index.
    pub fn drop_count(&self, msg: MessageId) -> u32 {
        self.counts.get(&msg).copied().unwrap_or(0)
    }

    /// Whether any known record lists `msg` (the paper's receive-reject
    /// test). O(1) via the maintained per-message index.
    pub fn anyone_dropped(&self, msg: MessageId) -> bool {
        self.counts.contains_key(&msg)
    }

    /// Whether the owner itself dropped `msg`.
    pub fn own_dropped(&self, msg: MessageId) -> bool {
        self.records
            .get(&self.owner)
            .is_some_and(|r| r.dropped.contains(&msg))
    }

    /// The raw records (for gossip serialisation).
    pub fn records(&self) -> &BTreeMap<NodeId, DroppedRecord> {
        &self.records
    }

    /// Number of origins with a record.
    pub fn origin_count(&self) -> usize {
        self.records.len()
    }

    /// Total dropped-message entries across all records (diagnostic —
    /// the paper assumes this stays negligible next to message sizes).
    pub fn entry_count(&self) -> usize {
        self.records.values().map(|r| r.dropped.len()).sum()
    }

    /// Forgets messages for which `expired(msg)` returns true (entries
    /// about TTL-expired messages can never matter again). Records left
    /// empty are removed; record times are untouched, matching the
    /// "only drops modify record time" rule.
    pub fn prune(&mut self, mut expired: impl FnMut(MessageId) -> bool) {
        let counts = &mut self.counts;
        let mut removed = false;
        for rec in self.records.values_mut() {
            rec.dropped.retain(|&m| {
                if expired(m) {
                    count_dec(counts, m);
                    removed = true;
                    false
                } else {
                    true
                }
            });
        }
        self.records.retain(|_, r| !r.dropped.is_empty());
        if removed {
            self.encoded = None;
        }
    }

    /// Serialises records for the contact gossip payload
    /// ([`encode_records`](Self::encode_records)). The encoding is
    /// memoised: between drops/adoptions every contact reuses the same
    /// buffer, so the per-contact cost is a `Vec` clone, not a
    /// re-serialisation of every record.
    pub fn to_gossip_bytes(&mut self) -> Vec<u8> {
        let records = &self.records;
        self.encoded
            .get_or_insert_with(|| Self::encode_records(records))
            .clone()
    }

    /// Merges a gossip payload produced by
    /// [`to_gossip_bytes`](Self::to_gossip_bytes); malformed payloads are
    /// ignored (a real radio would checksum, but robustness over panic
    /// here). Returns the number of records adopted.
    ///
    /// The merge streams over the wire bytes directly: records are
    /// *compared* in place and only the winners of the newest-wins rule
    /// are materialised into owned sets. In steady state almost every
    /// record a contact carries is one the receiver already has, so the
    /// per-contact cost is a validation scan over the payload — not a
    /// `BTreeSet` allocation per origin as the decode-then-merge path
    /// paid.
    pub fn merge_gossip_bytes(&mut self, bytes: &[u8]) -> usize {
        self.merge_gossip_bytes_inner(bytes, None)
    }

    /// [`merge_gossip_bytes`](Self::merge_gossip_bytes) with
    /// [`merge_tracking`](Self::merge_tracking)'s change reporting.
    pub fn merge_gossip_bytes_tracking(
        &mut self,
        bytes: &[u8],
        changed: &mut Vec<MessageId>,
    ) -> usize {
        self.merge_gossip_bytes_inner(bytes, Some(changed))
    }

    fn merge_gossip_bytes_inner(
        &mut self,
        bytes: &[u8],
        mut changed: Option<&mut Vec<MessageId>>,
    ) -> usize {
        // Pass 1: validate the whole payload without allocating, so a
        // malformation found halfway through cannot leave a partial
        // merge behind (decode-then-merge was all-or-nothing too).
        let Some(sorted) = Self::validate_gossip(bytes) else {
            return 0;
        };
        if !sorted {
            // `encode_records` emits strictly increasing origins; a
            // payload that doesn't is hand-crafted. Fall back to the
            // map-building path so duplicate origins keep
            // `decode_records`' last-occurrence-wins semantics.
            return match Self::decode_records(bytes) {
                Some(records) => self.merge_inner(&records, changed),
                None => 0,
            };
        }
        // Pass 2: stream the records; materialise only the winners.
        let mut cur = &bytes[4..];
        let n_records = u32_at(&mut cur).expect("validated");
        let mut adopted = 0;
        for _ in 0..n_records {
            let origin = NodeId(u32_at(&mut cur).expect("validated"));
            let record_time =
                SimTime::from_secs(f64::from_bits(u64_at(&mut cur).expect("validated")));
            let n_msgs = u32_at(&mut cur).expect("validated") as usize;
            let ids = take(&mut cur, n_msgs * 8).expect("validated");
            if origin == self.owner {
                continue;
            }
            if let Some(mine) = self.records.get(&origin) {
                if mine.record_time >= record_time {
                    continue;
                }
            }
            let dropped: BTreeSet<MessageId> = ids
                .chunks_exact(8)
                .map(|b| MessageId(u64::from_le_bytes(b.try_into().expect("8 bytes"))))
                .collect();
            match self.records.get(&origin) {
                Some(old) => {
                    if let Some(changed) = changed.as_deref_mut() {
                        changed.extend(old.dropped.symmetric_difference(&dropped).copied());
                    }
                    for &m in &old.dropped {
                        count_dec(&mut self.counts, m);
                    }
                }
                None => {
                    if let Some(changed) = changed.as_deref_mut() {
                        changed.extend(dropped.iter().copied());
                    }
                }
            }
            for &m in &dropped {
                count_inc(&mut self.counts, m);
            }
            self.records.insert(
                origin,
                DroppedRecord {
                    dropped,
                    record_time,
                },
            );
            adopted += 1;
        }
        if adopted > 0 {
            self.encoded = None;
        }
        adopted
    }

    /// Structure-checks a gossip payload without allocating. Returns
    /// `None` on any malformation [`decode_records`](Self::decode_records)
    /// would reject, otherwise whether the origin ids are strictly
    /// increasing (what `encode_records` always emits).
    fn validate_gossip(bytes: &[u8]) -> Option<bool> {
        let mut cur = bytes;
        if take(&mut cur, 4)? != GOSSIP_MAGIC {
            return None;
        }
        let n_records = u32_at(&mut cur)?;
        let mut sorted = true;
        let mut prev: Option<u32> = None;
        for _ in 0..n_records {
            let origin = u32_at(&mut cur)?;
            if prev.is_some_and(|p| p >= origin) {
                sorted = false;
            }
            prev = Some(origin);
            let secs = f64::from_bits(u64_at(&mut cur)?);
            if !secs.is_finite() || secs < 0.0 {
                return None;
            }
            let n_msgs = u32_at(&mut cur)? as usize;
            take(&mut cur, n_msgs.checked_mul(8)?)?;
        }
        if cur.is_empty() {
            Some(sorted)
        } else {
            None
        }
    }

    /// Encodes a records map into the compact gossip wire format:
    /// magic `"DLG1"`, a little-endian `u32` record count, then per
    /// record the `u32` origin id, the `u64` bit pattern of its record
    /// time, a `u32` entry count and that many `u64` message ids.
    ///
    /// `BTreeMap`/`BTreeSet` iteration is sorted, so equal maps encode
    /// to byte-identical payloads regardless of insertion history —
    /// required for deterministic replay of recorded gossip.
    pub fn encode_records(records: &BTreeMap<NodeId, DroppedRecord>) -> Vec<u8> {
        let entries: usize = records.values().map(|r| r.dropped.len()).sum();
        let mut out = Vec::with_capacity(8 + records.len() * 16 + entries * 8);
        out.extend_from_slice(GOSSIP_MAGIC);
        out.extend_from_slice(&(records.len() as u32).to_le_bytes());
        for (origin, rec) in records {
            out.extend_from_slice(&origin.0.to_le_bytes());
            out.extend_from_slice(&rec.record_time.as_secs().to_bits().to_le_bytes());
            out.extend_from_slice(&(rec.dropped.len() as u32).to_le_bytes());
            for m in &rec.dropped {
                out.extend_from_slice(&m.0.to_le_bytes());
            }
        }
        out
    }

    /// Decodes an [`encode_records`](Self::encode_records) payload.
    /// Returns `None` on any malformation — wrong magic, truncation,
    /// trailing bytes, or a non-finite/negative record time.
    pub fn decode_records(bytes: &[u8]) -> Option<BTreeMap<NodeId, DroppedRecord>> {
        let mut cur = bytes;
        if take(&mut cur, 4)? != GOSSIP_MAGIC {
            return None;
        }
        let n_records = u32_at(&mut cur)?;
        let mut records = BTreeMap::new();
        for _ in 0..n_records {
            let origin = NodeId(u32_at(&mut cur)?);
            let secs = f64::from_bits(u64_at(&mut cur)?);
            if !secs.is_finite() || secs < 0.0 {
                return None;
            }
            let record_time = SimTime::from_secs(secs);
            let n_msgs = u32_at(&mut cur)?;
            let mut dropped = BTreeSet::new();
            for _ in 0..n_msgs {
                dropped.insert(MessageId(u64_at(&mut cur)?));
            }
            records.insert(
                origin,
                DroppedRecord {
                    dropped,
                    record_time,
                },
            );
        }
        if !cur.is_empty() {
            return None;
        }
        Some(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn own_drops_are_recorded() {
        let mut dl = DroppedList::new(NodeId(3));
        assert!(!dl.own_dropped(MessageId(1)));
        dl.record_own_drop(t(10.0), MessageId(1));
        dl.record_own_drop(t(12.0), MessageId(2));
        assert!(dl.own_dropped(MessageId(1)));
        assert_eq!(dl.drop_count(MessageId(1)), 1);
        assert_eq!(dl.entry_count(), 2);
        assert_eq!(dl.origin_count(), 1);
        assert_eq!(dl.records()[&NodeId(3)].record_time, t(12.0));
    }

    #[test]
    fn redrop_of_known_message_does_not_bump_record_time() {
        // Fig. 5: the record time moves iff a new drop action occurs. A
        // re-drop of an already-recorded message must leave the record
        // (and its memoised encoding) untouched.
        let mut dl = DroppedList::new(NodeId(3));
        dl.record_own_drop(t(10.0), MessageId(1));
        let encoded = dl.to_gossip_bytes();
        dl.record_own_drop(t(50.0), MessageId(1));
        assert_eq!(dl.records()[&NodeId(3)].record_time, t(10.0));
        assert_eq!(dl.drop_count(MessageId(1)), 1);
        assert_eq!(
            dl.to_gossip_bytes(),
            encoded,
            "no-op re-drop must not re-encode"
        );
        // A genuinely new drop still bumps the time.
        dl.record_own_drop(t(60.0), MessageId(2));
        assert_eq!(dl.records()[&NodeId(3)].record_time, t(60.0));
    }

    #[test]
    fn redrop_does_not_cause_merge_storm() {
        // Regression: node A drops message 1 once, gossips it to B, then
        // "re-drops" the same message (e.g. it re-admitted and re-evicted
        // the copy). Before the fix the re-drop bumped A's record time,
        // so A's next export looked newer than B's copy and B adopted an
        // informationally identical record — and so on across the whole
        // network, every re-drop, forever.
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        a.record_own_drop(t(5.0), MessageId(1));
        assert_eq!(b.merge_gossip_bytes(&a.to_gossip_bytes()), 1);

        for k in 0..10 {
            a.record_own_drop(t(10.0 + k as f64), MessageId(1));
            assert_eq!(
                b.merge_gossip_bytes(&a.to_gossip_bytes()),
                0,
                "no-op re-drop #{k} forced a gossip adoption"
            );
        }
        assert_eq!(b.drop_count(MessageId(1)), 1);
    }

    #[test]
    fn clear_wipes_records_and_caches() {
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        b.record_own_drop(t(2.0), MessageId(9));
        a.record_own_drop(t(1.0), MessageId(1));
        a.merge(b.records());
        assert_eq!(a.origin_count(), 2);
        a.clear();
        assert_eq!(a.origin_count(), 0);
        assert_eq!(a.entry_count(), 0);
        assert_eq!(a.drop_count(MessageId(1)), 0);
        assert!(!a.anyone_dropped(MessageId(9)));
        // The cleared list still works: drops re-record, merges re-adopt.
        a.record_own_drop(t(20.0), MessageId(1));
        assert!(a.own_dropped(MessageId(1)));
        assert_eq!(a.merge(b.records()), 1);
    }

    #[test]
    fn merge_keeps_newest_record_per_origin() {
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        b.record_own_drop(t(5.0), MessageId(10));
        a.merge(b.records());
        assert!(a.anyone_dropped(MessageId(10)));

        // b updates its record later; the merge replaces a's stale copy.
        b.record_own_drop(t(9.0), MessageId(11));
        a.merge(b.records());
        assert_eq!(a.drop_count(MessageId(11)), 1);

        // A stale version of b's record (record_time 5) must NOT clobber
        // the newer one a already has (record_time 9).
        let mut stale = BTreeMap::new();
        stale.insert(
            NodeId(1),
            DroppedRecord {
                dropped: BTreeSet::from([MessageId(10)]),
                record_time: t(5.0),
            },
        );
        a.merge(&stale);
        assert!(a.anyone_dropped(MessageId(11)), "stale record clobbered");
    }

    #[test]
    fn merge_never_overwrites_own_record() {
        let mut a = DroppedList::new(NodeId(0));
        a.record_own_drop(t(1.0), MessageId(1));
        let mut forged = BTreeMap::new();
        forged.insert(
            NodeId(0),
            DroppedRecord {
                dropped: BTreeSet::from([MessageId(99)]),
                record_time: t(100.0),
            },
        );
        a.merge(&forged);
        assert!(!a.anyone_dropped(MessageId(99)));
        assert!(a.own_dropped(MessageId(1)));
    }

    #[test]
    fn drop_count_sums_across_origins() {
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        let mut c = DroppedList::new(NodeId(2));
        a.record_own_drop(t(1.0), MessageId(7));
        b.record_own_drop(t(2.0), MessageId(7));
        c.merge(a.records());
        c.merge(b.records());
        assert_eq!(c.drop_count(MessageId(7)), 2);
        assert_eq!(c.drop_count(MessageId(8)), 0);
    }

    #[test]
    fn transitive_gossip_propagates() {
        // a -> b -> c without a and c ever meeting.
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        let mut c = DroppedList::new(NodeId(2));
        a.record_own_drop(t(1.0), MessageId(5));
        b.merge(a.records());
        c.merge(b.records());
        assert!(c.anyone_dropped(MessageId(5)));
    }

    #[test]
    fn gossip_bytes_roundtrip() {
        let mut a = DroppedList::new(NodeId(0));
        a.record_own_drop(t(3.0), MessageId(4));
        let bytes = a.to_gossip_bytes();
        let mut b = DroppedList::new(NodeId(1));
        b.merge_gossip_bytes(&bytes);
        assert!(b.anyone_dropped(MessageId(4)));
        // Garbage is ignored.
        b.merge_gossip_bytes(b"definitely not json");
        assert_eq!(b.drop_count(MessageId(4)), 1);
    }

    #[test]
    fn merge_adopts_same_timestamp_records_from_two_sources() {
        // Two distinct origins whose records carry the *same* record
        // time must both be adopted — the newest-wins rule compares per
        // origin, never across origins.
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        let mut c = DroppedList::new(NodeId(2));
        b.record_own_drop(t(7.0), MessageId(10));
        c.record_own_drop(t(7.0), MessageId(11));
        assert_eq!(a.merge(b.records()), 1);
        assert_eq!(a.merge(c.records()), 1);
        assert!(a.anyone_dropped(MessageId(10)));
        assert!(a.anyone_dropped(MessageId(11)));

        // An equal-timestamp copy of an origin we already know is a tie:
        // ours is kept and nothing counts as adopted.
        assert_eq!(a.merge(b.records()), 0);
    }

    #[test]
    fn merge_counts_zero_for_forged_self_records() {
        let mut a = DroppedList::new(NodeId(0));
        let mut forged = BTreeMap::new();
        forged.insert(
            NodeId(0),
            DroppedRecord {
                dropped: BTreeSet::from([MessageId(99)]),
                record_time: t(100.0),
            },
        );
        assert_eq!(a.merge(&forged), 0);
        assert!(!a.anyone_dropped(MessageId(99)));
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        b.record_own_drop(t(4.0), MessageId(6));
        b.record_own_drop(t(5.0), MessageId(7));
        let payload = b.to_gossip_bytes();
        assert_eq!(a.merge_gossip_bytes(&payload), 1);
        let snapshot = a.clone();
        // Re-merging the identical payload adopts nothing and changes
        // nothing.
        assert_eq!(a.merge_gossip_bytes(&payload), 0);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn merge_tracking_reports_exactly_the_moved_counts() {
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        b.record_own_drop(t(4.0), MessageId(6));
        b.record_own_drop(t(5.0), MessageId(7));

        // Fresh record: every entry is reported.
        let mut changed = Vec::new();
        assert_eq!(
            a.merge_gossip_bytes_tracking(&b.to_gossip_bytes(), &mut changed),
            1
        );
        changed.sort_unstable();
        assert_eq!(changed, vec![MessageId(6), MessageId(7)]);

        // Idempotent re-merge: nothing adopted, nothing reported.
        changed.clear();
        assert_eq!(
            a.merge_gossip_bytes_tracking(&b.to_gossip_bytes(), &mut changed),
            0
        );
        assert_eq!(changed, Vec::new());

        // Replacement: only the symmetric difference is reported (6 and
        // 7 persist in b's record, 8 is new).
        b.record_own_drop(t(9.0), MessageId(8));
        changed.clear();
        assert_eq!(
            a.merge_gossip_bytes_tracking(&b.to_gossip_bytes(), &mut changed),
            1
        );
        assert_eq!(changed, vec![MessageId(8)]);
        assert_eq!(a.drop_count(MessageId(6)), 1);
        assert_eq!(a.drop_count(MessageId(8)), 1);

        // An entry pruned on the peer side is reported once the record
        // is re-adopted: its d_i here drops back.
        let mut c = DroppedList::new(NodeId(2));
        c.merge_gossip_bytes(&b.to_gossip_bytes());
        b.prune(|m| m == MessageId(6));
        b.record_own_drop(t(20.0), MessageId(9));
        changed.clear();
        assert_eq!(
            c.merge_gossip_bytes_tracking(&b.to_gossip_bytes(), &mut changed),
            1
        );
        changed.sort_unstable();
        assert_eq!(changed, vec![MessageId(6), MessageId(9)]);
        assert_eq!(c.drop_count(MessageId(6)), 0);
        assert_eq!(c.drop_count(MessageId(9)), 1);
    }

    /// Recomputes `d_i` by brute force and checks the maintained index
    /// against it for every message the list has ever heard about.
    fn assert_counts_consistent(dl: &DroppedList, msgs: impl IntoIterator<Item = u64>) {
        for id in msgs {
            let m = MessageId(id);
            let brute = dl
                .records()
                .values()
                .filter(|r| r.dropped.contains(&m))
                .count() as u32;
            assert_eq!(dl.drop_count(m), brute, "index drifted for {m:?}");
            assert_eq!(dl.anyone_dropped(m), brute > 0, "index drifted for {m:?}");
        }
    }

    #[test]
    fn counts_index_survives_merge_replacement_and_prune() {
        let mut a = DroppedList::new(NodeId(0));
        let mut b = DroppedList::new(NodeId(1));
        a.record_own_drop(t(1.0), MessageId(1));
        a.record_own_drop(t(1.0), MessageId(1)); // re-drop: no double count
        b.record_own_drop(t(2.0), MessageId(1));
        b.record_own_drop(t(3.0), MessageId(2));
        a.merge(b.records());
        assert_counts_consistent(&a, 1..=3);
        assert_eq!(a.drop_count(MessageId(1)), 2);

        // b revises its record: message 2 pruned away, message 3 added.
        // The replacing merge must retire the old record's entries.
        b.prune(|m| m == MessageId(2));
        b.record_own_drop(t(9.0), MessageId(3));
        a.merge(b.records());
        assert_counts_consistent(&a, 1..=3);
        assert_eq!(a.drop_count(MessageId(2)), 0);

        a.prune(|m| m == MessageId(1));
        assert_counts_consistent(&a, 1..=3);
        assert!(!a.anyone_dropped(MessageId(1)));
    }

    #[test]
    fn gossip_encoding_is_deterministic_and_memoised() {
        let mut a = DroppedList::new(NodeId(0));
        a.record_own_drop(t(3.0), MessageId(4));
        a.record_own_drop(t(5.0), MessageId(2));
        let first = a.to_gossip_bytes();
        assert_eq!(first, a.to_gossip_bytes(), "memoised bytes differ");

        // A fresh list with the same records encodes identically
        // (BTree iteration order, not insertion order).
        let mut b = DroppedList::new(NodeId(1));
        b.merge_gossip_bytes(&first);
        b.record_own_drop(t(7.0), MessageId(9));
        let mut c = DroppedList::new(NodeId(2));
        c.merge_gossip_bytes(&b.to_gossip_bytes());
        assert_eq!(
            DroppedList::encode_records(b.records()),
            DroppedList::encode_records(c.records())
        );

        // Roundtrip is lossless, including record times.
        let decoded = DroppedList::decode_records(&first).unwrap();
        assert_eq!(&decoded, a.records());

        // Truncated and trailing-garbage payloads are rejected whole.
        assert_eq!(DroppedList::decode_records(&first[..first.len() - 1]), None);
        let mut padded = first.clone();
        padded.push(0);
        assert_eq!(DroppedList::decode_records(&padded), None);
    }

    #[test]
    fn prune_removes_expired_entries() {
        let mut a = DroppedList::new(NodeId(0));
        a.record_own_drop(t(1.0), MessageId(1));
        a.record_own_drop(t(2.0), MessageId(2));
        let mut b = DroppedList::new(NodeId(1));
        b.record_own_drop(t(3.0), MessageId(1));
        a.merge(b.records());
        a.prune(|m| m == MessageId(1));
        assert!(!a.anyone_dropped(MessageId(1)));
        assert!(a.anyone_dropped(MessageId(2)));
        // b's record only contained message 1 -> whole record removed.
        assert_eq!(a.origin_count(), 1);
    }
}
