//! The SDSRP priority model — paper Section III-B, Eqs. 3-13.
//!
//! Notation (paper Table I):
//!
//! * `N` — total nodes; `λ` — intermeeting rate (`λ = 1/E(I)`);
//!   `λ_min = (N-1)λ`, so `E(I_min) = 1/((N-1)λ)` (Eq. 3).
//! * For message `i`: `C_i` copies held locally, `R_i` remaining TTL,
//!   `m_i` nodes that have seen it (excl. source), `n_i` nodes holding a
//!   copy.
//!
//! The chain of reasoning:
//!
//! 1. `P(T_i) = m_i / (N-1)` — probability already delivered (Eq. 5).
//! 2. `P(R_i) = 1 - exp(-λ n_i A_i)` — probability an undelivered
//!    message reaches the destination within `R_i` (Eq. 6), with
//!
//!    ```text
//!    A_i = (log2(C_i)+1) R_i - log2(C_i)(log2(C_i)+1) / (2 (N-1) λ)
//!    ```
//!
//!    (the binary-spray process keeps infecting for `log2(C_i)` rounds
//!    spaced `E(I_min)` apart).
//! 3. `U_i = ∂P/∂n_i = (1 - P(T_i)) λ A_i exp(-λ n_i A_i)` — the marginal
//!    delivery-ratio gain of one more copy (Eq. 10). Replication adds
//!    `+1` to `n_i`, dropping adds `-1`, so this derivative is exactly
//!    the message's scheduling *and* drop priority.
//! 4. Equivalently `U_i = (1-P(T_i)) (P(R_i)-1) ln(1-P(R_i)) / n_i`
//!    (Eq. 11), which peaks at `P(R_i) = 1 - 1/e` (Fig. 4): messages
//!    whose expected encounter time just matches their remaining TTL are
//!    top priority.
//! 5. Truncating `ln(1-x) = -Σ x^k/k` gives the cheap Taylor form
//!    (Eq. 13) whose accuracy grows with the number of terms.

use serde::{Deserialize, Serialize};

/// The `P(R_i)` value with maximal priority: `1 - 1/e` (paper Fig. 4).
pub const PEAK_PR: f64 = 1.0 - std::f64::consts::E.recip();

/// Scenario-level constants of the priority model.
///
/// # Example
///
/// Eq. 10 ranks by the *marginal* delivery-ratio gain of one more
/// copy: a message the network has barely seen outranks one that is
/// almost certainly delivered already (high `m_i`, many holders), so
/// the scheduler sends the former first and the drop step evicts the
/// latter first:
///
/// ```
/// use sdsrp_core::priority::PriorityModel;
///
/// // N = 100 nodes, E(I) = 1000 s  =>  λ = 1e-3  (Eq. 3).
/// let model = PriorityModel::new(100, 1e-3);
/// // log_priority(m_i seen, n_i holders, C_i copies, R_i remaining TTL)
/// let fresh = model.log_priority(0, 1, 1, 600.0);
/// let saturated = model.log_priority(90, 40, 1, 600.0);
/// assert!(fresh > saturated);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityModel {
    /// Total number of nodes `N` (≥ 2).
    pub n_nodes: usize,
    /// Intermeeting rate λ = 1/E(I), per second (> 0).
    pub lambda: f64,
}

impl PriorityModel {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics if `n_nodes < 2` or `lambda <= 0`.
    pub fn new(n_nodes: usize, lambda: f64) -> Self {
        assert!(n_nodes >= 2, "need at least two nodes");
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "lambda must be positive and finite"
        );
        PriorityModel { n_nodes, lambda }
    }

    /// `E(I_min) = E(I) / (N-1) = 1 / ((N-1) λ)` — Eq. 3.
    ///
    /// Total for degenerate models (defence in depth behind the
    /// `n_nodes >= 2` checks in [`new`](Self::new) and the scenario
    /// validation): with no other node to meet, the minimum
    /// intermeeting time is infinite, not `1/0`.
    pub fn e_i_min(&self) -> f64 {
        if self.n_nodes <= 1 {
            return f64::INFINITY;
        }
        1.0 / ((self.n_nodes as f64 - 1.0) * self.lambda)
    }

    /// The spray-corrected exposure term `A_i` (the bracket in Eq. 6).
    /// Clamped to zero from below: a negative exposure would mean the
    /// remaining TTL cannot even cover the spray rounds, i.e. no
    /// further delivery value. Zero for degenerate (`N <= 1`) models —
    /// no peer can ever be exposed — so every downstream priority form
    /// is total (0 or `-inf`) instead of ∞/NaN.
    pub fn exposure(&self, copies: u32, remaining_ttl: f64) -> f64 {
        if self.n_nodes <= 1 {
            return 0.0;
        }
        let (lp1, correction) = self.exposure_parts(copies);
        (lp1 * remaining_ttl - correction).max(0.0)
    }

    /// The copy-count-dependent pieces of [`exposure`](Self::exposure):
    /// `(log2(C_i) + 1, log2(C_i)(log2(C_i)+1) / (2 (N-1) λ))`, so that
    /// `A_i = (parts.0 * R_i - parts.1).max(0.0)` bit-for-bit. Lets an
    /// incremental evaluator cache everything that does not depend on
    /// the remaining TTL and finish Eq. 10 with two flops per call.
    ///
    /// # Panics
    /// Panics on degenerate (`N <= 1`) models — callers that tolerate
    /// those must stay on [`exposure`](Self::exposure), which returns 0.
    pub fn exposure_parts(&self, copies: u32) -> (f64, f64) {
        assert!(self.n_nodes >= 2, "need at least two nodes");
        let l = log2_copies(copies);
        let correction = l * (l + 1.0) / (2.0 * (self.n_nodes as f64 - 1.0) * self.lambda);
        (l + 1.0, correction)
    }

    /// `P(T_i)` — probability the message has already been delivered
    /// (Eq. 5), clamped to `[0, 1]`. For a degenerate one-node model
    /// the destination cannot exist, so delivery is treated as certain
    /// (yielding zero priority) rather than `0/0 = NaN`.
    pub fn p_delivered(&self, seen: u32) -> f64 {
        if self.n_nodes <= 1 {
            return 1.0;
        }
        (seen as f64 / (self.n_nodes as f64 - 1.0)).clamp(0.0, 1.0)
    }

    /// `P(R_i)` — probability an undelivered message is delivered within
    /// the remaining TTL (Eq. 6).
    pub fn p_remaining(&self, holders: u32, copies: u32, remaining_ttl: f64) -> f64 {
        let a = self.exposure(copies, remaining_ttl);
        1.0 - (-self.lambda * holders as f64 * a).exp()
    }

    /// `P_i` — total delivery probability of the message (Eq. 7).
    pub fn p_total(&self, seen: u32, holders: u32, copies: u32, remaining_ttl: f64) -> f64 {
        let pt = self.p_delivered(seen);
        pt + (1.0 - pt) * self.p_remaining(holders, copies, remaining_ttl)
    }

    /// The SDSRP priority `U_i` — closed form, Eq. 10.
    ///
    /// * `seen` — `m_i`, nodes that have seen the message (excl. source).
    /// * `holders` — `n_i`, nodes currently holding a copy.
    /// * `copies` — `C_i`, copy tokens held by the ranking node.
    /// * `remaining_ttl` — `R_i`, seconds.
    pub fn priority(&self, seen: u32, holders: u32, copies: u32, remaining_ttl: f64) -> f64 {
        let pt = self.p_delivered(seen);
        let a = self.exposure(copies, remaining_ttl);
        let h = holders.max(1) as f64;
        (1.0 - pt) * self.lambda * a * (-self.lambda * h * a).exp()
    }

    /// `ln U_i` — the closed-form priority (Eq. 10) evaluated in
    /// log-space.
    ///
    /// At paper scale (`λ ≈ 1e-3`, TTL = 18 000 s, several holders) the
    /// factor `exp(-λ n_i A_i)` underflows `f64` to exactly 0, which
    /// would collapse the ranking into ties. Since `ln` is monotone, the
    /// scheduler and the drop rule can compare `ln U_i` instead and keep
    /// full resolution. Messages with zero utility (already seen by
    /// everyone, or no exposure left) map to `-inf`, which orders
    /// correctly and never produces NaN.
    pub fn log_priority(&self, seen: u32, holders: u32, copies: u32, remaining_ttl: f64) -> f64 {
        let pt = self.p_delivered(seen);
        let a = self.exposure(copies, remaining_ttl);
        if pt >= 1.0 || a <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let h = holders.max(1) as f64;
        (1.0 - pt).ln() + self.lambda.ln() + a.ln() - self.lambda * h * a
    }

    /// `ln U_i` with a **destination-specific** meeting rate (extension:
    /// SDSRP-H). Eq. 10's λ plays two roles that coincide only under
    /// homogeneous mobility:
    ///
    /// * the rate at which a copy holder meets *the destination* —
    ///   `lambda_dest` here (the leading factor and the exponent), and
    /// * the network-wide spray tempo `E(I_min) = 1/((N-1)λ)` inside the
    ///   `A_i` correction — still `self.lambda`, the pooled rate,
    ///   because binary spraying involves *any* encounter.
    ///
    /// With `lambda_dest == self.lambda` this reduces exactly to
    /// [`log_priority`](Self::log_priority).
    pub fn log_priority_dest(
        &self,
        seen: u32,
        holders: u32,
        copies: u32,
        remaining_ttl: f64,
        lambda_dest: f64,
    ) -> f64 {
        assert!(
            lambda_dest > 0.0 && lambda_dest.is_finite(),
            "destination lambda must be positive"
        );
        let pt = self.p_delivered(seen);
        let a = self.exposure(copies, remaining_ttl);
        if pt >= 1.0 || a <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let h = holders.max(1) as f64;
        (1.0 - pt).ln() + lambda_dest.ln() + a.ln() - lambda_dest * h * a
    }

    /// `ln` of the Eq. 13 Taylor truncation, evaluated stably: with
    /// `x = λ n_i A_i`, `1 - P(R_i) = e^{-x}` exactly, so
    /// `ln U = ln(1-P(T)) - x + ln(Σ_{j=1..k} P(R)^j / j) - ln n_i`.
    pub fn log_priority_taylor(
        &self,
        seen: u32,
        holders: u32,
        copies: u32,
        remaining_ttl: f64,
        terms: usize,
    ) -> f64 {
        assert!(terms >= 1, "need at least one Taylor term");
        let pt = self.p_delivered(seen);
        let a = self.exposure(copies, remaining_ttl);
        if pt >= 1.0 || a <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let h = holders.max(1) as f64;
        let x = self.lambda * h * a;
        let pr = 1.0 - (-x).exp(); // saturates harmlessly at 1 for large x
        let mut sum = 0.0;
        let mut pow = 1.0;
        for j in 1..=terms {
            pow *= pr;
            sum += pow / j as f64;
        }
        if sum <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (1.0 - pt).ln() - x + sum.ln() - h.ln()
    }

    /// The priority in probability form, Eq. 11:
    /// `U_i = (1-P(T)) (P(R)-1) ln(1-P(R)) / n_i`.
    ///
    /// Identical to [`priority`](Self::priority) when `pt`/`pr` come from
    /// Eqs. 5-6; exposed separately because Fig. 4 plots it directly and
    /// the Taylor form approximates it.
    pub fn priority_from_probabilities(pt: f64, pr: f64, holders: u32) -> f64 {
        assert!((0.0..=1.0).contains(&pt), "pt out of range");
        assert!((0.0..=1.0).contains(&pr), "pr out of range");
        let h = holders.max(1) as f64;
        if pr >= 1.0 {
            // lim_{x->1} (x-1) ln(1-x) = 0.
            return 0.0;
        }
        (1.0 - pt) * (pr - 1.0) * (1.0 - pr).ln() / h
    }

    /// The `k`-term Taylor approximation of Eq. 11 (paper Eq. 13):
    /// `U_i ≈ (1-P(T)) (1-P(R)) Σ_{j=1..k} P(R)^j / j / n_i`.
    ///
    /// Monotonically approaches the exact value from below as `k` grows.
    pub fn priority_taylor(pt: f64, pr: f64, holders: u32, terms: usize) -> f64 {
        assert!((0.0..=1.0).contains(&pt), "pt out of range");
        assert!((0.0..=1.0).contains(&pr), "pr out of range");
        assert!(terms >= 1, "need at least one Taylor term");
        let h = holders.max(1) as f64;
        let mut sum = 0.0;
        let mut pow = 1.0;
        for j in 1..=terms {
            pow *= pr;
            sum += pow / j as f64;
        }
        (1.0 - pt) * (1.0 - pr) * sum / h
    }

    /// Left side minus right side of the peak condition (Eq. 12):
    /// the priority is maximal when `1/(λ n_i)` equals the summed spray
    /// windows `Σ_{k=0}^{log2 C_i} [R_i - k E(I_min)]`. Returns the
    /// residual so tests can locate the root.
    pub fn peak_condition_residual(&self, holders: u32, copies: u32, remaining_ttl: f64) -> f64 {
        let l = log2_copies(copies) as u32;
        let e_min = self.e_i_min();
        let sum: f64 = (0..=l).map(|k| remaining_ttl - k as f64 * e_min).sum();
        1.0 / (self.lambda * holders.max(1) as f64) - sum
    }
}

/// `log2(C_i)` as used throughout the paper; zero for `C_i <= 1`.
#[inline]
pub fn log2_copies(copies: u32) -> f64 {
    if copies <= 1 {
        0.0
    } else {
        (copies as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Paper-scale model: 100 nodes, E(I) ≈ 1000 s.
    fn model() -> PriorityModel {
        PriorityModel::new(100, 1.0 / 1000.0)
    }

    #[test]
    fn e_i_min_matches_eq3() {
        let m = model();
        // E(I_min) = E(I)/(N-1) = 1000/99.
        assert!((m.e_i_min() - 1000.0 / 99.0).abs() < 1e-9);
    }

    #[test]
    fn exposure_reduces_to_r_for_single_copy() {
        let m = model();
        // C_i = 1 -> log2 = 0 -> A = R.
        assert_eq!(m.exposure(1, 5000.0), 5000.0);
    }

    #[test]
    fn exposure_clamps_at_zero() {
        let m = model();
        // Tiny TTL with many copies: correction dominates.
        assert_eq!(m.exposure(64, 0.001), 0.0);
    }

    #[test]
    fn p_delivered_clamps() {
        let m = model();
        assert_eq!(m.p_delivered(0), 0.0);
        assert!((m.p_delivered(33) - 33.0 / 99.0).abs() < 1e-12);
        assert_eq!(m.p_delivered(200), 1.0);
    }

    #[test]
    fn p_remaining_behaviour() {
        let m = model();
        // No holders -> cannot be delivered.
        assert_eq!(m.p_remaining(0, 1, 1000.0), 0.0);
        // More holders -> higher probability.
        let p1 = m.p_remaining(1, 1, 1000.0);
        let p5 = m.p_remaining(5, 1, 1000.0);
        assert!(p5 > p1);
        // Longer TTL -> higher probability.
        let pshort = m.p_remaining(3, 4, 100.0);
        let plong = m.p_remaining(3, 4, 10_000.0);
        assert!(plong > pshort);
        assert!((0.0..=1.0).contains(&p1));
    }

    #[test]
    fn closed_form_matches_probability_form() {
        // Eq. 10 and Eq. 11 must agree when pt/pr derive from Eqs. 5-6.
        let m = model();
        for &(seen, holders, copies, ttl) in &[
            (5u32, 4u32, 8u32, 3000.0),
            (0, 1, 1, 18000.0),
            (50, 20, 32, 600.0),
            (98, 60, 2, 100.0),
        ] {
            let direct = m.priority(seen, holders, copies, ttl);
            let pt = m.p_delivered(seen);
            let pr = m.p_remaining(holders, copies, ttl);
            let via_prob = PriorityModel::priority_from_probabilities(pt, pr, holders);
            assert!(
                (direct - via_prob).abs() < 1e-12 * direct.abs().max(1.0),
                "mismatch for ({seen},{holders},{copies},{ttl}): {direct} vs {via_prob}"
            );
        }
    }

    #[test]
    fn priority_decreases_with_seen() {
        // Eq. 11: "higher delivered probability leads to lower priority".
        let m = model();
        let mut last = f64::INFINITY;
        for seen in [0u32, 10, 30, 60, 90] {
            let u = m.priority(seen, 5, 8, 3000.0);
            assert!(u < last, "priority not decreasing at seen={seen}");
            last = u;
        }
        // Fully seen -> zero priority.
        assert_eq!(m.priority(99, 5, 8, 3000.0), 0.0);
    }

    #[test]
    fn priority_decreases_with_holders_in_saturated_regime() {
        // "a greater amount of copies of message i in the network leads
        // to lower priority" — true once λ n A is past the peak. At this
        // scale the linear form underflows, which is exactly why the
        // policy ranks on log_priority.
        let m = model();
        let mut last = f64::INFINITY;
        for holders in [10u32, 20, 40, 80] {
            let u = m.log_priority(0, holders, 8, 5000.0);
            assert!(u < last, "log-priority not decreasing at n={holders}");
            assert!(u.is_finite());
            last = u;
        }
    }

    #[test]
    fn log_priority_matches_ln_of_linear_form() {
        let m = model();
        for &(seen, holders, copies, ttl) in &[
            (5u32, 2u32, 8u32, 800.0),
            (0, 1, 1, 1500.0),
            (20, 3, 4, 400.0),
        ] {
            let lin = m.priority(seen, holders, copies, ttl);
            let log = m.log_priority(seen, holders, copies, ttl);
            assert!(
                (log - lin.ln()).abs() < 1e-9,
                "log form mismatch: {log} vs ln({lin})"
            );
        }
        // Degenerate cases map to -inf.
        assert_eq!(m.log_priority(99, 1, 8, 800.0), f64::NEG_INFINITY);
        assert_eq!(m.log_priority(0, 1, 64, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn log_taylor_converges_to_log_exact() {
        // Eq. 13's series Σ pr^j/j converges to -ln(1-pr) = λnA, whose
        // /n_i cancels Eq. 11's normalisation, recovering Eq. 10 exactly.
        // Pick a pre-saturation operating point (λnA ≈ 1) so the series
        // converges at practical k.
        let m = model();
        let (seen, holders, copies, ttl) = (10u32, 1u32, 1u32, 1000.0);
        let exact = m.log_priority(seen, holders, copies, ttl);
        let mut last = f64::NEG_INFINITY;
        for k in [1usize, 2, 8, 64] {
            let a = m.log_priority_taylor(seen, holders, copies, ttl, k);
            assert!(a >= last - 1e-12, "not monotone in k");
            assert!(a <= exact + 1e-12, "exceeds exact");
            assert!(a.is_finite());
            last = a;
        }
        assert!(
            (last - exact).abs() < 0.01 * exact.abs() + 1e-6,
            "taylor {last} vs exact {exact}"
        );
    }

    #[test]
    fn peak_is_at_one_minus_inv_e() {
        // Scan P(R) and confirm the probability-form priority peaks at
        // 1 - 1/e (paper Fig. 4).
        let mut best_pr = 0.0;
        let mut best_u = f64::NEG_INFINITY;
        for i in 0..=10_000 {
            let pr = i as f64 / 10_000.0;
            let u = PriorityModel::priority_from_probabilities(0.0, pr, 1);
            if u > best_u {
                best_u = u;
                best_pr = pr;
            }
        }
        assert!(
            (best_pr - PEAK_PR).abs() < 2e-4,
            "peak at {best_pr}, expected {PEAK_PR}"
        );
    }

    #[test]
    fn monotone_up_before_peak_down_after() {
        let us: Vec<f64> = (0..100)
            .map(|i| PriorityModel::priority_from_probabilities(0.0, i as f64 / 100.0, 1))
            .collect();
        let peak_idx = (PEAK_PR * 100.0) as usize;
        for w in us[..peak_idx].windows(2) {
            assert!(w[1] >= w[0], "not increasing before peak");
        }
        for w in us[peak_idx + 1..].windows(2) {
            assert!(w[1] <= w[0], "not decreasing after peak");
        }
    }

    #[test]
    fn taylor_converges_to_exact_from_below() {
        let pt = 0.2;
        let pr = 0.55;
        let exact = PriorityModel::priority_from_probabilities(pt, pr, 3);
        let mut last = 0.0;
        for k in [1usize, 2, 4, 8, 16, 64] {
            let approx = PriorityModel::priority_taylor(pt, pr, 3, k);
            assert!(approx >= last - 1e-15, "not monotone in k");
            assert!(approx <= exact + 1e-12, "overshoots exact value");
            last = approx;
        }
        assert!(
            (last - exact).abs() < 1e-6,
            "64 terms should be accurate: {last} vs {exact}"
        );
    }

    #[test]
    fn taylor_one_term_shape() {
        // k=1: U = (1-pt)(1-pr) pr / n — peaks at pr = 0.5 (Fig. 4's
        // most-skewed curve).
        let mut best = (0.0, f64::NEG_INFINITY);
        for i in 0..=1000 {
            let pr = i as f64 / 1000.0;
            let u = PriorityModel::priority_taylor(0.0, pr, 1, 1);
            if u > best.1 {
                best = (pr, u);
            }
        }
        assert!((best.0 - 0.5).abs() < 2e-3, "k=1 peak at {}", best.0);
    }

    #[test]
    fn pr_one_edge_case() {
        assert_eq!(PriorityModel::priority_from_probabilities(0.0, 1.0, 1), 0.0);
        assert_eq!(PriorityModel::priority_from_probabilities(0.3, 0.0, 1), 0.0);
    }

    #[test]
    fn peak_condition_residual_crosses_zero() {
        // Eq. 12: as remaining TTL grows, the residual goes from positive
        // (TTL too short) to negative (TTL ample) — a root exists.
        let m = model();
        let lo = m.peak_condition_residual(3, 8, 1.0);
        let hi = m.peak_condition_residual(3, 8, 1e6);
        assert!(lo > 0.0 && hi < 0.0);
    }

    #[test]
    fn priority_at_peak_condition_is_near_max() {
        // Find the TTL satisfying Eq. 12 by bisection, then verify the
        // priority there is within a whisker of the scan maximum.
        let m = model();
        let (holders, copies) = (3u32, 8u32);
        let (mut lo, mut hi) = (1.0, 1e6);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if m.peak_condition_residual(holders, copies, mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let ttl_star = 0.5 * (lo + hi);
        let u_star = m.priority(0, holders, copies, ttl_star);
        let u_max = (1..=2000)
            .map(|i| m.priority(0, holders, copies, i as f64 * 50.0))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            u_star >= u_max * 0.999,
            "priority at Eq.12 root {u_star} vs scan max {u_max}"
        );
    }

    #[test]
    fn log2_copies_edge_cases() {
        assert_eq!(log2_copies(0), 0.0);
        assert_eq!(log2_copies(1), 0.0);
        assert_eq!(log2_copies(2), 1.0);
        assert_eq!(log2_copies(32), 5.0);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_single_node() {
        let _ = PriorityModel::new(1, 0.1);
    }

    #[test]
    fn degenerate_models_are_total() {
        // `new()` rejects N < 2, but the struct fields are public, so a
        // degenerate model can still be built (and Eq. 3/5/6 all divide
        // by N−1). Every priority form must stay total: finite-or-inf,
        // never NaN — a NaN would panic the buffer policy's
        // `.expect("NaN priority")` sort far from the root cause.
        for n_nodes in [0usize, 1] {
            let m = PriorityModel {
                n_nodes,
                lambda: 1.0 / 1000.0,
            };
            assert_eq!(m.e_i_min(), f64::INFINITY);
            assert_eq!(m.exposure(8, 3000.0), 0.0);
            assert_eq!(m.p_delivered(0), 1.0);
            for &(seen, holders, copies, ttl) in &[
                (0u32, 0u32, 1u32, 0.0f64),
                (0, 1, 8, 3000.0),
                (5, 3, 64, 1e9),
            ] {
                let u = m.priority(seen, holders, copies, ttl);
                assert_eq!(u, 0.0, "degenerate priority must be exactly 0");
                assert!(!m.p_remaining(holders, copies, ttl).is_nan());
                assert!(!m.p_total(seen, holders, copies, ttl).is_nan());
                assert_eq!(
                    m.log_priority(seen, holders, copies, ttl),
                    f64::NEG_INFINITY
                );
                assert_eq!(
                    m.log_priority_taylor(seen, holders, copies, ttl, 3),
                    f64::NEG_INFINITY
                );
            }
        }
    }

    #[test]
    fn two_node_model_is_well_defined() {
        // The smallest legal network: N−1 = 1, so nothing degenerates,
        // but every divisor sits at its minimum.
        let m = PriorityModel::new(2, 1.0 / 500.0);
        assert_eq!(m.e_i_min(), 500.0);
        assert_eq!(m.p_delivered(0), 0.0);
        assert_eq!(m.p_delivered(1), 1.0);
        let u = m.priority(0, 1, 2, 1000.0);
        assert!(u.is_finite() && u > 0.0);
        assert!(!m.log_priority(0, 1, 2, 1000.0).is_nan());
        // Zero remaining TTL: no exposure left, zero priority.
        assert_eq!(m.priority(0, 1, 1, 0.0), 0.0);
        assert_eq!(m.log_priority(0, 1, 1, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_bad_lambda() {
        let _ = PriorityModel::new(10, 0.0);
    }

    proptest! {
        /// Priorities are always finite and non-negative over the whole
        /// realistic parameter range.
        #[test]
        fn prop_priority_finite_nonneg(
            seen in 0u32..150,
            holders in 0u32..150,
            copies in 1u32..128,
            ttl in 0.0f64..50_000.0,
        ) {
            let m = model();
            let u = m.priority(seen, holders, copies, ttl);
            prop_assert!(u.is_finite());
            prop_assert!(u >= 0.0);
        }

        /// The probability chain stays in [0, 1].
        #[test]
        fn prop_probabilities_in_range(
            seen in 0u32..150,
            holders in 0u32..150,
            copies in 1u32..128,
            ttl in 0.0f64..50_000.0,
        ) {
            let m = model();
            let pt = m.p_delivered(seen);
            let pr = m.p_remaining(holders, copies, ttl);
            let p = m.p_total(seen, holders, copies, ttl);
            prop_assert!((0.0..=1.0).contains(&pt));
            prop_assert!((0.0..=1.0).contains(&pr));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }

        /// Degenerate and minimal node counts (N ∈ {0, 1, 2}) with any
        /// inputs — zero TTL included — never produce NaN anywhere in
        /// the probability chain or either priority form.
        #[test]
        fn prop_degenerate_node_counts_never_nan(
            n_nodes in 0usize..3,
            seen in 0u32..8,
            holders in 0u32..8,
            copies in 1u32..128,
            ttl in prop_oneof![Just(0.0f64), 0.0f64..100_000.0],
        ) {
            let m = PriorityModel { n_nodes, lambda: 1.0 / 1000.0 };
            let u = m.priority(seen, holders, copies, ttl);
            prop_assert!(!u.is_nan());
            prop_assert!(u >= 0.0);
            prop_assert!(!m.log_priority(seen, holders, copies, ttl).is_nan());
            prop_assert!(!m.p_delivered(seen).is_nan());
            prop_assert!(!m.p_remaining(holders, copies, ttl).is_nan());
            prop_assert!(!m.p_total(seen, holders, copies, ttl).is_nan());
            prop_assert!(!m.exposure(copies, ttl).is_nan());
            prop_assert!(m.e_i_min() > 0.0);
        }

        /// Taylor truncation never exceeds the exact Eq. 11 value and
        /// improves with more terms.
        #[test]
        fn prop_taylor_bounded_and_monotone(
            pt in 0.0f64..1.0,
            pr in 0.0f64..0.999,
            holders in 1u32..64,
        ) {
            let exact = PriorityModel::priority_from_probabilities(pt, pr, holders);
            let k1 = PriorityModel::priority_taylor(pt, pr, holders, 1);
            let k4 = PriorityModel::priority_taylor(pt, pr, holders, 4);
            let k16 = PriorityModel::priority_taylor(pt, pr, holders, 16);
            prop_assert!(k1 <= k4 + 1e-15);
            prop_assert!(k4 <= k16 + 1e-15);
            prop_assert!(k16 <= exact + 1e-12);
        }
    }
}
