//! # sdsrp-core — the paper's contribution
//!
//! SDSRP (*Scheduling and Drop Strategy on spray and wait Routing
//! Protocol*, Wang/Yang/Wu/Liu, ICPP 2015) assigns every buffered
//! message a priority equal to the **marginal effect of one replication /
//! one drop on the global delivery ratio**, then schedules the highest
//! priority first and drops the lowest first.
//!
//! The crate mirrors the paper's Section III structure:
//!
//! * [`priority`] — the analytical model (Eqs. 3-13): delivery
//!   probability, the closed-form priority `U_i` (Eq. 10), its
//!   probability form (Eq. 11) with the `1 - 1/e` peak (Fig. 4), and the
//!   Taylor-series approximation (Eq. 13).
//! * [`estimator`] — the distributed estimators (Section III-C): `m_i`
//!   from binary-spray timestamps (Eq. 15, Fig. 6), `n_i = m_i + 1 - d_i`
//!   (Eq. 14), and an online intermeeting-rate (λ) estimator.
//! * [`dropped_list`] — the gossiped dropped-message records (Fig. 5)
//!   that make `d_i` observable without a control channel.
//! * [`policy`] — [`policy::Sdsrp`], wiring the above into the
//!   [`dtn_buffer::BufferPolicy`] trait used by the simulator.
//!
//! ## Example: ranking two messages by Eq. 10
//!
//! ```
//! use sdsrp_core::priority::PriorityModel;
//!
//! // 100 nodes, E(I) = 1000 s  =>  λ = 1e-3 (Table I notation).
//! let model = PriorityModel::new(100, 1e-3);
//!
//! // A fresh message: nobody has seen it, two holders, 8 copy tokens,
//! // 600 s of TTL left...
//! let fresh = model.log_priority(0, 2, 8, 600.0);
//! // ...versus a stale one: seen by 60 nodes, 20 holders, 1 token.
//! let stale = model.log_priority(60, 20, 1, 600.0);
//!
//! // The fresh message is replicated first / dropped last.
//! assert!(fresh > stale);
//!
//! // The Eq. 3 spray interval the estimators use:
//! assert!((model.e_i_min() - 1000.0 / 99.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dropped_list;
pub mod estimator;
pub mod policy;
pub mod priority;

pub use dropped_list::DroppedList;
pub use estimator::{estimate_m, estimate_n, LambdaEstimator};
pub use policy::{LambdaMode, PriorityMode, Sdsrp, SdsrpConfig};
pub use priority::PriorityModel;
