//! The SDSRP buffer policy: Algorithm 1 wired into the
//! [`dtn_buffer::BufferPolicy`] trait.
//!
//! Per ranked message the policy:
//!
//! 1. obtains λ (oracle value or the node's online
//!    [`crate::estimator::LambdaEstimator`]),
//! 2. estimates `m_i` from the copy's binary-spray timestamps (Eq. 15) —
//!    or takes the oracle value when the simulator provides one
//!    (global-knowledge ablation),
//! 3. reads `d_i` from the gossiped [`DroppedList`] and forms
//!    `n_i = m_i + 1 - d_i` (Eq. 14),
//! 4. computes `U_i` — the exact Eq. 10 closed form, or the Eq. 13
//!    Taylor truncation when [`PriorityMode::Taylor`] is configured.
//!
//! The same `U_i` drives scheduling (highest first) and dropping (lowest
//! first); reception of messages present in the dropped list is refused.
//!
//! ## Incremental priority maintenance
//!
//! The ranking hooks route through a per-message [`UtilityEntry`] that
//! separates Eq. 10's inputs by *how they change*:
//!
//! * **Pinned** — copy tokens, spray timestamps, destination, oracle
//!   overrides. Compared exactly on every lookup; any difference forces
//!   a rebuild. (These change rarely: only binary-spray splits and
//!   oracle ablations move them.)
//! * **Event-guarded** — λ and the dropped-list counts `d_i`. The hooks
//!   invalidate surgically: a contact-up that records an intermeeting
//!   sample moves λ and clears everything (λ enters every priority); an
//!   own drop moves `d_i` of one message and evicts that entry; a
//!   gossip import evicts exactly the entries whose `d_i` the adopted
//!   records changed ([`DroppedList::merge_tracking`]); sample-less
//!   contact-ups, contact-downs and adoption-free imports change no
//!   input and leave everything valid.
//! * **Time-derived** — the remaining TTL and the Eq. 15 bucket
//!   estimate of `m_i`. The TTL enters through two final flops per
//!   evaluation (`A_i = (log2 C_i + 1) R_i − correction`), so the entry
//!   caches everything *up to* the TTL. `m_i` only moves when some
//!   spray bucket `floor((now − t_k)/E(I_min))` crosses an integer
//!   boundary; the entry records the earliest such boundary
//!   (`seen_valid_until`, verified against float rounding) and any
//!   evaluation before it finishes from the cached prefixes — the
//!   *incremental* path. The mere passage of time therefore never
//!   invalidates an entry, it only re-runs the two-flop tail.
//!
//! Both the hit path (same instant, value returned verbatim) and the
//! incremental path (new instant, cached prefixes + fresh TTL) return
//! the bit-identical float a full recompute would: the cached prefixes
//! are associated exactly as [`PriorityModel::log_priority`] and
//! friends associate them (see [`UtilityEntry::complete`]). Runs with
//! the memo on and off produce identical simulations, which
//! `tests/priority_cache_differential.rs` enforces
//! fingerprint-for-fingerprint.

use crate::dropped_list::DroppedList;
use crate::estimator::{estimate_m, estimate_n, LambdaEstimator};
use crate::priority::PriorityModel;
use dtn_buffer::policy::{BufferPolicy, PriorityCacheStats};
use dtn_buffer::view::MessageView;
use dtn_core::ids::{MessageId, NodeId};
use dtn_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where the policy gets its intermeeting rate λ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LambdaMode {
    /// A fixed, externally supplied rate (scenario-level oracle; used by
    /// the ablation benches to isolate estimator error).
    Oracle(f64),
    /// Learn online from this node's own contact history, reporting
    /// `prior` until `min_samples` intermeeting samples accumulate.
    Online {
        /// Rate assumed before enough history exists, per second.
        prior: f64,
        /// Number of samples before the estimate is trusted.
        min_samples: u64,
    },
    /// Extension (SDSRP-H): like `Online`, but each message is ranked
    /// with the λ specific to *its destination* (falling back to the
    /// pooled rate until enough per-destination gaps exist). Matters
    /// under heterogeneous mobility (communities, taxi hotspots) where
    /// Eq. 3's single-λ assumption breaks.
    OnlinePerDestination {
        /// Rate assumed before enough history exists, per second.
        prior: f64,
        /// Samples required before a (pooled or per-peer) estimate is
        /// trusted.
        min_samples: u64,
    },
}

/// Which form of the priority the policy evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriorityMode {
    /// The exact Eq. 10 closed form, evaluated in log space.
    Exact,
    /// The Eq. 13 Taylor truncation — the paper's cheap approximation,
    /// whose accuracy grows with the number of terms (Fig. 4).
    Taylor {
        /// Number of series terms, `>= 1`.
        terms: usize,
    },
}

impl PriorityMode {
    /// Maps the `Option<usize>` encoding (`None` = exact) that the
    /// scenario-file `SdsrpCustom` variant has used since before this
    /// enum existed; kept so on-disk configs and their hashes are
    /// unchanged.
    pub fn from_terms(terms: Option<usize>) -> Self {
        match terms {
            None => PriorityMode::Exact,
            Some(k) => PriorityMode::Taylor { terms: k },
        }
    }

    /// Inverse of [`from_terms`](Self::from_terms).
    pub fn taylor_terms(&self) -> Option<usize> {
        match self {
            PriorityMode::Exact => None,
            PriorityMode::Taylor { terms } => Some(*terms),
        }
    }
}

/// SDSRP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdsrpConfig {
    /// Total nodes `N` in the network (the paper assumes this is known).
    pub n_nodes: usize,
    /// λ source.
    pub lambda: LambdaMode,
    /// Exact Eq. 10 or the Eq. 13 Taylor fast path.
    pub mode: PriorityMode,
    /// Refuse to receive messages present in the dropped list
    /// (paper Section III-C). Disable for ablation.
    pub reject_dropped: bool,
    /// Exchange dropped-list records on contact. Disable for ablation
    /// (then `d_i` only reflects the node's own drops).
    pub gossip: bool,
}

impl SdsrpConfig {
    /// The paper's configuration for a network of `n_nodes`: online λ
    /// estimation, exact closed-form priority, gossip and receive-reject
    /// enabled.
    ///
    /// The λ prior corresponds to E(I) = 2000 s, a mid-range guess for
    /// the paper's scenarios; it only matters for the first few contacts.
    pub fn paper(n_nodes: usize) -> Self {
        SdsrpConfig {
            n_nodes,
            lambda: LambdaMode::Online {
                prior: 1.0 / 2000.0,
                min_samples: 5,
            },
            mode: PriorityMode::Exact,
            reject_dropped: true,
            gossip: true,
        }
    }
}

/// Cap on pinned spray timestamps per memo entry. A copy accumulates
/// one timestamp per binary-spray split in its lineage — at most
/// `log2(initial copies)` — so 12 covers initial copy counts up to
/// 4096. Views with longer histories are evaluated without memoising.
const SPRAY_PIN_CAP: usize = 12;

/// Encodes the oracle `(m_i, n_i)` overrides for pinning (0 = absent).
fn oracle_key_of(msg: &MessageView<'_>) -> u64 {
    let encode = |v: Option<u32>| v.map_or(0u64, |x| x as u64 + 1);
    encode(msg.oracle_seen) << 33 | encode(msg.oracle_holders)
}

/// One message's memoised evaluation state: the pinned inputs it was
/// derived from (any difference forces a rebuild), derived prefixes
/// valid for every instant in `[computed_at, seen_valid_until)`, and
/// the finished value at the most recent evaluation instant.
#[derive(Debug, Clone, Copy)]
struct UtilityEntry {
    // Pinned inputs, compared exactly on every lookup.
    copies: u32,
    spray_len: u32,
    spray_bits: [u64; SPRAY_PIN_CAP],
    destination: NodeId,
    oracle_key: u64,
    // Derived prefixes. Valid while the pinned inputs match, no
    // invalidation hook fired, and `now ∈ [computed_at, seen_valid_until)`
    // (the window certifying the Eq. 15 `m_i` buckets are unchanged).
    computed_at: f64,
    seen_valid_until: f64,
    pt_dead: bool,
    /// 0 = exact closed form (pooled or per-destination λ baked into
    /// `base`/`lh`); `k >= 1` = Eq. 13 with `k` terms.
    taylor_terms: usize,
    base: f64,
    lh: f64,
    h_ln: f64,
    lp1: f64,
    correction: f64,
    // Same-instant memo.
    now_bits: u64,
    value: f64,
}

impl UtilityEntry {
    /// Whether every pinned input still matches the view.
    fn matches(&self, msg: &MessageView<'_>) -> bool {
        self.copies == msg.copies
            && self.destination == msg.destination
            && self.oracle_key == oracle_key_of(msg)
            && self.spray_len as usize == msg.spray_times.len()
            && msg
                .spray_times
                .iter()
                .zip(&self.spray_bits)
                .all(|(t, &b)| t.as_secs().to_bits() == b)
    }

    /// Finishes the evaluation for remaining TTL `r` from the cached
    /// prefixes. Bit-identical to the full forms by expression-tree
    /// identity: `base`, `lh` and `h_ln` are the leading partial sums
    /// of [`PriorityModel::log_priority`] / `log_priority_dest` /
    /// `log_priority_taylor`, associated exactly as those functions
    /// associate them, and `(lp1 * r - correction).max(0.0)` is
    /// [`PriorityModel::exposure`] with its copy-dependent parts
    /// precomputed ([`PriorityModel::exposure_parts`]).
    fn complete(&self, r: f64) -> f64 {
        let a = (self.lp1 * r - self.correction).max(0.0);
        if self.pt_dead || a <= 0.0 {
            return f64::NEG_INFINITY;
        }
        match self.taylor_terms {
            0 => self.base + a.ln() - self.lh * a,
            terms => {
                let x = self.lh * a;
                let pr = 1.0 - (-x).exp();
                let mut sum = 0.0;
                let mut pow = 1.0;
                for j in 1..=terms {
                    pow *= pr;
                    sum += pow / j as f64;
                }
                if sum <= 0.0 {
                    return f64::NEG_INFINITY;
                }
                self.base - x + sum.ln() - self.h_ln
            }
        }
    }
}

/// The largest float strictly below `x` (`f64::next_down`, reimplemented
/// for MSRV). Must not be fed NaN.
fn next_down(x: f64) -> f64 {
    debug_assert!(!x.is_nan());
    if x == f64::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits - 1)
    } else {
        f64::from_bits(bits + 1)
    }
}

/// The smallest float strictly above `x` (`f64::next_up` for MSRV).
/// Must not be fed NaN.
fn next_up(x: f64) -> f64 {
    debug_assert!(!x.is_nan());
    if x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// First future instant at which the Eq. 15 estimate `m_i` could move:
/// the smallest spray-bucket boundary strictly after `now_s`.
///
/// `estimate_m` is non-decreasing in `now` and depends on time only
/// through the per-spray buckets `floor((now − t_k)/E(I_min))`, so the
/// memoised `seen` — and everything derived from it — is exact for
/// every instant in `[now_s, horizon)`. Each candidate boundary is
/// verified against float rounding in both directions: stepped down
/// while the instant just below it already lands in the new bucket,
/// and stepped up while the candidate itself still lands in the old
/// one (e.g. `100.0 + 1.0 * 0.1` rounds *below* the true `0.1`-bucket
/// boundary). Subtraction, division and floor are all monotone in
/// `now`, so `bucket(next_down(b)) <= exp < bucket(b)` certifies the
/// whole half-open window.
fn seen_horizon(
    spray_times: &[SimTime],
    now_s: f64,
    e_min: f64,
    seen: u32,
    n_nodes: usize,
    oracle: bool,
) -> f64 {
    if oracle {
        // `m_i` is pinned by the oracle key; time cannot move it.
        return f64::INFINITY;
    }
    let cap = (n_nodes.saturating_sub(1)) as u32;
    if seen >= cap || spray_times.is_empty() || !e_min.is_finite() || e_min <= 0.0 {
        // Saturated estimates stay saturated (monotonicity), an empty
        // spray history always estimates 1, and a degenerate E(I_min)
        // pegs the estimate at the cap — none can move with time.
        return f64::INFINITY;
    }
    let bucket = |x: f64, tk: f64| ((x - tk).max(0.0) / e_min).floor().clamp(0.0, 62.0);
    let mut horizon = f64::INFINITY;
    for &t_k in spray_times {
        let tk = t_k.as_secs();
        let exp = bucket(now_s, tk);
        if exp >= 62.0 {
            // Clamped: this spray's bucket can never advance again.
            continue;
        }
        let mut b = tk + (exp + 1.0) * e_min;
        while b > now_s && bucket(next_down(b), tk) > exp {
            b = next_down(b);
        }
        if b <= now_s {
            // No certifiable window at all: expire the entry
            // immediately (every later instant rebuilds).
            return now_s;
        }
        while b.is_finite() && bucket(b, tk) <= exp {
            b = next_up(b);
        }
        horizon = horizon.min(b);
    }
    horizon
}

/// Per-message incremental memo of [`Sdsrp::utility`] evaluations, plus
/// the [`PriorityModel`] shared by every evaluation between λ changes.
///
/// The hot path re-ranks the same `(node, message)` pairs many times —
/// every transfer completion re-arms all idle links of both endpoints,
/// and each re-arm walks both buffers — mostly at *new* instants, since
/// simulated time advances between events. Entries therefore survive
/// the passage of time: a lookup at a fresh instant takes the
/// incremental path (cached prefixes + the two-flop TTL tail) as long
/// as the pinned inputs match and no spray bucket boundary has been
/// crossed. See the module docs for the per-event invalidation rules.
struct UtilityCache {
    enabled: bool,
    entries: HashMap<MessageId, UtilityEntry>,
    model: Option<PriorityModel>,
    hits: u64,
    incremental: u64,
    misses: u64,
    /// Scratch for [`DroppedList::merge_tracking`]'s change reports.
    changed: Vec<MessageId>,
}

impl UtilityCache {
    fn new() -> Self {
        UtilityCache {
            enabled: true,
            entries: HashMap::new(),
            model: None,
            hits: 0,
            incremental: 0,
            misses: 0,
            changed: Vec::new(),
        }
    }

    /// Drops every memoised value (λ or wholesale policy state changed).
    fn invalidate(&mut self) {
        self.entries.clear();
        self.model = None;
    }
}

/// The SDSRP policy state for one node.
pub struct Sdsrp {
    cfg: SdsrpConfig,
    lambda_est: LambdaEstimator,
    dropped: DroppedList,
    cache: UtilityCache,
}

impl Sdsrp {
    /// Creates the policy for `node`.
    ///
    /// # Panics
    /// Panics on nonsensical configuration (fewer than 2 nodes,
    /// non-positive λ, zero Taylor terms).
    pub fn new(node: NodeId, cfg: SdsrpConfig) -> Self {
        assert!(cfg.n_nodes >= 2, "need at least two nodes");
        if let PriorityMode::Taylor { terms } = cfg.mode {
            assert!(terms >= 1, "need at least one Taylor term");
        }
        let lambda_est = match cfg.lambda {
            LambdaMode::Oracle(l) => {
                assert!(l > 0.0 && l.is_finite(), "oracle lambda must be positive");
                // Estimator never consulted in oracle mode, but keep it
                // consistent.
                LambdaEstimator::new(l, u64::MAX)
            }
            LambdaMode::Online { prior, min_samples }
            | LambdaMode::OnlinePerDestination { prior, min_samples } => {
                LambdaEstimator::new(prior, min_samples)
            }
        };
        Sdsrp {
            cfg,
            lambda_est,
            dropped: DroppedList::new(node),
            cache: UtilityCache::new(),
        }
    }

    /// The current (pooled) λ in use.
    pub fn lambda(&self) -> f64 {
        match self.cfg.lambda {
            LambdaMode::Oracle(l) => l,
            LambdaMode::Online { .. } | LambdaMode::OnlinePerDestination { .. } => {
                self.lambda_est.lambda()
            }
        }
    }

    /// The current priority model (λ may drift as the estimator learns).
    pub fn model(&self) -> PriorityModel {
        PriorityModel::new(self.cfg.n_nodes, self.lambda())
    }

    /// Access to the dropped list (tests/diagnostics).
    pub fn dropped_list(&self) -> &DroppedList {
        &self.dropped
    }

    /// Computes the message's ranking value — the core of Algorithm 1
    /// lines 1-2 ("map C_i, R_i to Priority_i").
    ///
    /// Returned in **log-space** (`ln U_i`): at paper scale the linear
    /// `U_i` of Eq. 10 underflows `f64` to 0 for well-spread messages,
    /// which would collapse the ranking into ties; `ln` is monotone so
    /// all comparisons are unchanged. Zero-utility messages map to
    /// `-inf`.
    pub fn utility(&self, now: SimTime, msg: &MessageView<'_>) -> f64 {
        self.utility_with(self.model(), now, msg)
    }

    /// [`Self::utility`] through the incremental memo — the form the
    /// [`BufferPolicy`] ranking hooks use. Both the verbatim-hit and the
    /// incremental path return the exact float a recompute would
    /// produce (see [`UtilityEntry::complete`]); simulation results are
    /// bit-identical with the cache on or off.
    fn utility_cached(&mut self, now: SimTime, msg: &MessageView<'_>) -> f64 {
        if !self.cache.enabled {
            // Bypass: the memo is never consulted, so nothing counts as
            // a hit or a miss — uncached runs report all-zero stats.
            return self.utility(now, msg);
        }
        let ts = now.as_secs();
        if let Some(e) = self.cache.entries.get_mut(&msg.id) {
            if e.matches(msg) {
                if e.now_bits == ts.to_bits() {
                    self.cache.hits += 1;
                    return e.value;
                }
                if ts >= e.computed_at && ts < e.seen_valid_until {
                    // Every input that moved since `computed_at` is a
                    // pure function of time, and the bucket horizon
                    // certifies `m_i` did not move: finish from the
                    // cached prefixes.
                    let r = msg.remaining_ttl.as_secs().max(0.0);
                    let value = e.complete(r);
                    e.now_bits = ts.to_bits();
                    e.value = value;
                    self.cache.incremental += 1;
                    return value;
                }
            }
        }
        let model = match self.cache.model {
            Some(m) => m,
            None => {
                let m = self.model();
                self.cache.model = Some(m);
                m
            }
        };
        self.cache.misses += 1;
        if msg.spray_times.len() > SPRAY_PIN_CAP {
            // Too much history to pin: evaluate without memoising.
            return self.utility_with(model, now, msg);
        }
        let entry = self.build_entry(model, now, msg);
        let value = entry.value;
        self.cache.entries.insert(msg.id, entry);
        value
    }

    /// Miss-path rebuild: evaluates exactly as
    /// [`utility_with`](Self::utility_with) would and records the
    /// prefixes and validity horizon the incremental path needs.
    fn build_entry(
        &self,
        model: PriorityModel,
        now: SimTime,
        msg: &MessageView<'_>,
    ) -> UtilityEntry {
        let ts = now.as_secs();
        let e_min = model.e_i_min();
        let seen = msg
            .oracle_seen
            .unwrap_or_else(|| estimate_m(msg.spray_times, now, e_min, self.cfg.n_nodes));
        let holders = msg
            .oracle_holders
            .unwrap_or_else(|| estimate_n(seen, self.dropped.drop_count(msg.id)));
        let r = msg.remaining_ttl.as_secs().max(0.0);
        let pt = model.p_delivered(seen);
        let h = holders.max(1) as f64;
        let (lp1, correction) = model.exposure_parts(msg.copies);
        let (taylor_terms, base, lh, h_ln) = match self.cfg.mode {
            PriorityMode::Exact => {
                if let LambdaMode::OnlinePerDestination { .. } = self.cfg.lambda {
                    // SDSRP-H: the destination-specific rate takes the
                    // leading factor and the exponent; the pooled λ
                    // stays inside A_i (already in `correction`).
                    let l_dest = self.lambda_est.lambda_for(msg.destination);
                    (0, (1.0 - pt).ln() + l_dest.ln(), l_dest * h, 0.0)
                } else {
                    (
                        0,
                        (1.0 - pt).ln() + model.lambda.ln(),
                        model.lambda * h,
                        0.0,
                    )
                }
            }
            PriorityMode::Taylor { terms } => (terms, (1.0 - pt).ln(), model.lambda * h, h.ln()),
        };
        let mut spray_bits = [0u64; SPRAY_PIN_CAP];
        for (slot, t) in spray_bits.iter_mut().zip(msg.spray_times) {
            *slot = t.as_secs().to_bits();
        }
        let entry = UtilityEntry {
            copies: msg.copies,
            spray_len: msg.spray_times.len() as u32,
            spray_bits,
            destination: msg.destination,
            oracle_key: oracle_key_of(msg),
            computed_at: ts,
            seen_valid_until: seen_horizon(
                msg.spray_times,
                ts,
                e_min,
                seen,
                self.cfg.n_nodes,
                msg.oracle_seen.is_some(),
            ),
            pt_dead: pt >= 1.0,
            taylor_terms,
            base,
            lh,
            h_ln,
            lp1,
            correction,
            now_bits: ts.to_bits(),
            value: 0.0,
        };
        let value = entry.complete(r);
        debug_assert_eq!(
            value.to_bits(),
            self.utility_with(model, now, msg).to_bits(),
            "prefix evaluation diverged from the full form"
        );
        UtilityEntry { value, ..entry }
    }

    fn utility_with(&self, model: PriorityModel, now: SimTime, msg: &MessageView<'_>) -> f64 {
        // m_i: oracle if provided, else the Eq. 15 spray-tree estimate.
        let seen = msg
            .oracle_seen
            .unwrap_or_else(|| estimate_m(msg.spray_times, now, model.e_i_min(), self.cfg.n_nodes));
        // n_i: oracle if provided, else Eq. 14 with the gossiped d_i.
        let holders = msg
            .oracle_holders
            .unwrap_or_else(|| estimate_n(seen, self.dropped.drop_count(msg.id)));
        let r = msg.remaining_ttl.as_secs().max(0.0);
        // SDSRP-H: rank with the destination-specific meeting rate.
        if let LambdaMode::OnlinePerDestination { .. } = self.cfg.lambda {
            if self.cfg.mode == PriorityMode::Exact {
                let l_dest = self.lambda_est.lambda_for(msg.destination);
                return model.log_priority_dest(seen, holders, msg.copies, r, l_dest);
            }
        }
        match self.cfg.mode {
            PriorityMode::Exact => model.log_priority(seen, holders, msg.copies, r),
            PriorityMode::Taylor { terms } => {
                model.log_priority_taylor(seen, holders, msg.copies, r, terms)
            }
        }
    }
}

impl BufferPolicy for Sdsrp {
    fn name(&self) -> &'static str {
        "SDSRP"
    }

    fn send_priority(&mut self, now: SimTime, msg: &MessageView<'_>) -> f64 {
        self.utility_cached(now, msg)
    }

    fn accepts(&mut self, _now: SimTime, msg: MessageId) -> bool {
        !(self.cfg.reject_dropped && self.dropped.anyone_dropped(msg))
    }

    fn on_contact_up(&mut self, now: SimTime, peer: NodeId) {
        // λ only moves when an intermeeting gap is actually sampled
        // (first contacts and zero gaps change nothing); only then is
        // the memo stale — wholesale, since λ enters every priority.
        if self.lambda_est.on_contact_up(now, peer) {
            self.cache.invalidate();
        }
    }

    fn on_contact_down(&mut self, now: SimTime, peer: NodeId) {
        // Closing a contact only stamps the estimator's
        // `last_contact_end`; no utility input changes, the memo stays
        // exact.
        self.lambda_est.on_contact_down(now, peer);
    }

    fn on_drop(&mut self, now: SimTime, msg: MessageId) {
        // An own drop changes d_i (Eq. 14) of *this* message only — λ
        // and every other message's inputs are untouched, so evict the
        // single entry and keep the memoised model.
        self.dropped.record_own_drop(now, msg);
        self.cache.entries.remove(&msg);
    }

    fn on_node_reset(&mut self, _now: SimTime) {
        // A crash wipes all distributed state: the λ estimator returns
        // to its prior (contact-history endpoints included — otherwise
        // the first post-reboot contact would sample one enormous bogus
        // intermeeting gap), the dropped list restarts empty (its
        // gossip record times restart with it), and the priority memo
        // is rebuilt from scratch.
        self.lambda_est.reset();
        self.dropped.clear();
        self.cache.invalidate();
    }

    fn export_gossip(&mut self, _now: SimTime) -> Option<Vec<u8>> {
        if self.cfg.gossip && self.dropped.origin_count() > 0 {
            Some(self.dropped.to_gossip_bytes())
        } else {
            None
        }
    }

    fn import_gossip(&mut self, _now: SimTime, bytes: &[u8]) -> usize {
        if !self.cfg.gossip {
            return 0;
        }
        if !self.cache.enabled {
            // Reference path: the pre-optimisation algorithm decoded the
            // whole payload into owned records and then merged. The
            // differential suite runs it against the streaming merge
            // below and demands bit-identical fingerprints, so the two
            // merge strategies verify each other on every CI run.
            return match DroppedList::decode_records(bytes) {
                Some(records) => self.dropped.merge(&records),
                None => 0,
            };
        }
        // Adopted records move d_i of exactly the reported messages; λ
        // and every other memo entry stay valid.
        let mut changed = std::mem::take(&mut self.cache.changed);
        changed.clear();
        let adopted = self
            .dropped
            .merge_gossip_bytes_tracking(bytes, &mut changed);
        for id in changed.drain(..) {
            self.cache.entries.remove(&id);
        }
        self.cache.changed = changed;
        adopted
    }

    fn set_priority_cache(&mut self, enabled: bool) {
        self.cache.enabled = enabled;
        self.cache.invalidate();
        // Counters restart with the new setting so the reported stats
        // describe a single cache configuration, never a mix.
        self.cache.hits = 0;
        self.cache.incremental = 0;
        self.cache.misses = 0;
    }

    fn priority_cache_stats(&self) -> Option<PriorityCacheStats> {
        Some(PriorityCacheStats {
            hits: self.cache.hits,
            incremental: self.cache.incremental,
            misses: self.cache.misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_buffer::policy::{plan_admission, schedule_order, AdmissionPlan};
    use dtn_buffer::view::TestMessage;
    use dtn_core::time::SimDuration;
    use dtn_core::units::Bytes;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn oracle_cfg() -> SdsrpConfig {
        SdsrpConfig {
            n_nodes: 100,
            lambda: LambdaMode::Oracle(1.0 / 1000.0),
            mode: PriorityMode::Exact,
            reject_dropped: true,
            gossip: true,
        }
    }

    fn policy() -> Sdsrp {
        Sdsrp::new(NodeId(0), oracle_cfg())
    }

    /// Builds a message with the spray history implied by "sprayed once
    /// `ago` seconds before now".
    fn msg_with(
        id: u64,
        copies: u32,
        remaining_mins: f64,
        spray_ago: &[f64],
        now: f64,
    ) -> TestMessage {
        let mut m = TestMessage::sample(id);
        m.copies = copies;
        m.remaining_ttl = SimDuration::from_mins(remaining_mins);
        m.spray_times = spray_ago
            .iter()
            .map(|&ago| t((now - ago).max(0.0)))
            .collect();
        m
    }

    #[test]
    fn fresh_unsprayed_message_outranks_saturated_one() {
        let mut p = policy();
        let now = t(1000.0);
        // Fresh: no sprays recorded, full TTL, lots of copies.
        let fresh = msg_with(1, 32, 300.0, &[], 1000.0);
        // Saturated: sprayed long ago repeatedly, little TTL left.
        let old = msg_with(2, 1, 3.0, &[900.0, 700.0, 500.0], 1000.0);
        let uf = p.send_priority(now, &fresh.view());
        let uo = p.send_priority(now, &old.view());
        assert!(uf > uo, "fresh {uf} <= saturated {uo}");
    }

    /// Sparse-network config: E(I) = 100 000 s, so delivery within the
    /// remaining TTL is genuinely uncertain (P(R) below the 1-1/e peak)
    /// and extra copies carry value — the regime Fig. 2's "early"
    /// decision lives in.
    fn sparse_cfg() -> SdsrpConfig {
        SdsrpConfig {
            n_nodes: 100,
            lambda: LambdaMode::Oracle(1e-5),
            mode: PriorityMode::Exact,
            reject_dropped: true,
            gossip: true,
        }
    }

    #[test]
    fn fig2_reversal_small_c_and_r_can_win() {
        // Paper Fig. 2: in node c (early), M_i with larger C and R wins;
        // in node e (late), the same comparison flips because M_i's
        // infection estimate has exploded while M_j stays small.
        let p = Sdsrp::new(NodeId(0), sparse_cfg());
        // Early: neither message has sprayed yet; bigger C & R -> more
        // to gain.
        let now_early = t(100.0);
        let mi_early = msg_with(1, 16, 250.0, &[], 100.0);
        let mj_early = msg_with(2, 4, 120.0, &[], 100.0);
        let ui = p.utility(now_early, &mi_early.view());
        let uj = p.utility(now_early, &mj_early.view());
        assert!(ui > uj, "early: U_i {ui} should exceed U_j {uj}");

        // Late: M_i was sprayed long ago -> huge m_i estimate -> its
        // priority collapses below M_j's.
        let now_late = t(10_000.0);
        let mi_late = msg_with(1, 16, 60.0, &[9800.0, 9000.0], 10_000.0);
        let mj_late = msg_with(2, 4, 30.0, &[300.0], 10_000.0);
        let ui = p.utility(now_late, &mi_late.view());
        let uj = p.utility(now_late, &mj_late.view());
        assert!(uj > ui, "late: U_j {uj} should exceed U_i {ui}");
    }

    #[test]
    fn schedule_and_drop_use_same_ranking() {
        let mut p = policy();
        let now = t(500.0);
        let a = msg_with(1, 32, 300.0, &[], 500.0);
        let b = msg_with(2, 1, 2.0, &[400.0, 300.0, 200.0], 500.0);
        let views = vec![a.view(), b.view()];
        let order = schedule_order(&mut p, now, &views);
        assert_eq!(order[0], MessageId(1));
        // Overflow with a high-priority newcomer: evict the tail of the
        // schedule order.
        let incoming = msg_with(9, 32, 300.0, &[], 500.0);
        let plan = plan_admission(
            &mut p,
            now,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(2)]
            }
        );
    }

    #[test]
    fn dropped_messages_are_refused() {
        let mut p = policy();
        assert!(p.accepts(t(0.0), MessageId(7)));
        p.on_drop(t(10.0), MessageId(7));
        assert!(!p.accepts(t(11.0), MessageId(7)));
    }

    #[test]
    fn reject_dropped_can_be_disabled() {
        let mut cfg = oracle_cfg();
        cfg.reject_dropped = false;
        let mut p = Sdsrp::new(NodeId(0), cfg);
        p.on_drop(t(10.0), MessageId(7));
        assert!(p.accepts(t(11.0), MessageId(7)));
    }

    #[test]
    fn gossip_propagates_drop_knowledge() {
        let mut a = policy();
        let mut b = Sdsrp::new(NodeId(1), oracle_cfg());
        a.on_drop(t(5.0), MessageId(3));
        let payload = a.export_gossip(t(6.0)).expect("has records");
        b.import_gossip(t(6.0), &payload);
        assert!(!b.accepts(t(7.0), MessageId(3)));
        assert_eq!(b.dropped_list().drop_count(MessageId(3)), 1);
    }

    #[test]
    fn gossip_disabled_exports_nothing() {
        let mut cfg = oracle_cfg();
        cfg.gossip = false;
        let mut p = Sdsrp::new(NodeId(0), cfg);
        p.on_drop(t(5.0), MessageId(3));
        assert_eq!(p.export_gossip(t(6.0)), None);
    }

    #[test]
    fn empty_dropped_list_exports_nothing() {
        let mut p = policy();
        assert_eq!(p.export_gossip(t(0.0)), None);
    }

    #[test]
    fn drops_lower_n_estimate_and_raise_priority() {
        // Eq. 14: recorded drops reduce n_i, which (in the saturated
        // regime) *raises* the message's priority — fewer live copies
        // mean a copy is worth more.
        let mut with_drops = Sdsrp::new(NodeId(0), sparse_cfg());
        let without_drops = Sdsrp::new(NodeId(0), sparse_cfg());
        let now = t(2000.0);
        let m = msg_with(1, 4, 100.0, &[1500.0, 1000.0], 2000.0);
        let u_before = without_drops.utility(now, &m.view());
        // Two other nodes report dropping message 1.
        let mut peer1 = Sdsrp::new(NodeId(5), sparse_cfg());
        let mut peer2 = Sdsrp::new(NodeId(6), sparse_cfg());
        peer1.on_drop(t(100.0), MessageId(1));
        peer2.on_drop(t(100.0), MessageId(1));
        with_drops.import_gossip(now, &peer1.export_gossip(now).unwrap());
        with_drops.import_gossip(now, &peer2.export_gossip(now).unwrap());
        let u_after = with_drops.utility(now, &m.view());
        assert!(
            u_after > u_before,
            "drops should raise priority: {u_after} vs {u_before}"
        );
    }

    #[test]
    fn oracle_views_override_estimators() {
        let p = policy();
        let now = t(1000.0);
        let mut m = msg_with(1, 8, 100.0, &[900.0, 800.0], 1000.0);
        m.oracle_seen = Some(2);
        m.oracle_holders = Some(3);
        let u_oracle = p.utility(now, &m.view());
        let model = p.model();
        let expect = model.log_priority(2, 3, 8, 100.0 * 60.0);
        assert!((u_oracle - expect).abs() < 1e-12);
    }

    #[test]
    fn taylor_mode_approximates_exact() {
        let exact = Sdsrp::new(NodeId(0), sparse_cfg());
        let mut cfg = sparse_cfg();
        cfg.mode = PriorityMode::Taylor { terms: 64 };
        let approx = Sdsrp::new(NodeId(0), cfg);
        let now = t(3000.0);
        let m = msg_with(1, 8, 150.0, &[2500.0], 3000.0);
        let ue = exact.utility(now, &m.view());
        let ua = approx.utility(now, &m.view());
        assert!(ua <= ue + 1e-12, "Taylor must lower-bound exact");
        assert!(
            (ue - ua) <= ue.abs() * 0.05 + 1e-6,
            "64-term Taylor too far off: {ua} vs {ue}"
        );
    }

    #[test]
    fn online_lambda_feeds_priority() {
        let mut cfg = oracle_cfg();
        cfg.lambda = LambdaMode::Online {
            prior: 1.0 / 2000.0,
            min_samples: 1,
        };
        let mut p = Sdsrp::new(NodeId(0), cfg);
        assert!((p.lambda() - 1.0 / 2000.0).abs() < 1e-15);
        // Two contacts with a 500 s gap teach λ = 1/500.
        p.on_contact_up(t(0.0), NodeId(1));
        p.on_contact_down(t(10.0), NodeId(1));
        p.on_contact_up(t(510.0), NodeId(1));
        assert!((p.lambda() - 1.0 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn per_destination_lambda_differentiates_messages() {
        // A node that meets node 1 every 100 s but node 2 every 5000 s:
        // two otherwise-identical messages destined to 1 vs 2 must rank
        // differently under SDSRP-H (and identically under pooled λ).
        let mut cfg = oracle_cfg();
        cfg.lambda = LambdaMode::OnlinePerDestination {
            prior: 1.0 / 2000.0,
            min_samples: 2,
        };
        let mut p = Sdsrp::new(NodeId(0), cfg);
        // Three gaps of 100 s with node 1.
        for k in 0..4 {
            p.on_contact_up(t(k as f64 * 110.0), NodeId(1));
            p.on_contact_down(t(k as f64 * 110.0 + 10.0), NodeId(1));
        }
        // Three gaps of 5000 s with node 2.
        for k in 0..4 {
            p.on_contact_up(t(k as f64 * 5010.0), NodeId(2));
            p.on_contact_down(t(k as f64 * 5010.0 + 10.0), NodeId(2));
        }
        let now = t(20_100.0);
        let mut to_fast = msg_with(1, 4, 100.0, &[], 20_100.0);
        to_fast.destination = NodeId(1);
        let mut to_slow = msg_with(2, 4, 100.0, &[], 20_100.0);
        to_slow.destination = NodeId(2);
        let u_fast = p.utility(now, &to_fast.view());
        let u_slow = p.utility(now, &to_slow.view());
        assert_ne!(u_fast, u_slow, "per-destination λ had no effect");

        // Pooled mode ranks them identically.
        let mut pooled_cfg = oracle_cfg();
        pooled_cfg.lambda = LambdaMode::Online {
            prior: 1.0 / 2000.0,
            min_samples: 2,
        };
        let pooled = Sdsrp::new(NodeId(0), pooled_cfg);
        assert_eq!(
            pooled.utility(now, &to_fast.view()),
            pooled.utility(now, &to_slow.view())
        );
    }

    #[test]
    fn per_destination_reduces_to_pooled_when_uniform() {
        // All peers met at the same cadence: lambda_for == lambda, so
        // SDSRP-H and plain SDSRP agree exactly.
        let mk = |mode: LambdaMode| {
            let mut cfg = oracle_cfg();
            cfg.lambda = mode;
            let mut p = Sdsrp::new(NodeId(0), cfg);
            for peer in 1..4u32 {
                for k in 0..4 {
                    p.on_contact_up(t(k as f64 * 500.0 + peer as f64), NodeId(peer));
                    p.on_contact_down(t(k as f64 * 500.0 + peer as f64 + 1.0), NodeId(peer));
                }
            }
            p
        };
        let h = mk(LambdaMode::OnlinePerDestination {
            prior: 1.0 / 2000.0,
            min_samples: 2,
        });
        let plain = mk(LambdaMode::Online {
            prior: 1.0 / 2000.0,
            min_samples: 2,
        });
        let now = t(3000.0);
        let mut m = msg_with(1, 8, 200.0, &[], 3000.0);
        m.destination = NodeId(2);
        let a = h.utility(now, &m.view());
        let b = plain.utility(now, &m.view());
        assert!(a.is_finite() && b.is_finite(), "degenerate test inputs");
        assert!(
            (a - b).abs() < 1e-2 * b.abs(),
            "uniform cadence should make SDSRP-H ~= SDSRP: {a} vs {b}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one Taylor term")]
    fn zero_taylor_terms_rejected() {
        let mut cfg = oracle_cfg();
        cfg.mode = PriorityMode::Taylor { terms: 0 };
        let _ = Sdsrp::new(NodeId(0), cfg);
    }

    /// Online-λ config so contacts actually move λ (the harshest case
    /// for the memo: every λ sample invalidates wholesale).
    fn online_cfg() -> SdsrpConfig {
        SdsrpConfig {
            n_nodes: 100,
            lambda: LambdaMode::Online {
                prior: 1.0 / 2000.0,
                min_samples: 1,
            },
            mode: PriorityMode::Exact,
            reject_dropped: true,
            gossip: true,
        }
    }

    #[test]
    fn cached_ranking_is_bit_identical_to_uncached() {
        // Twin policies fed the same event stream; one with the memo
        // disabled. Every ranking must agree to the last bit, including
        // repeats at the same instant (hits), repeats at fresh instants
        // (incremental completions) and across λ / drop / gossip
        // invalidations.
        let mut cached = Sdsrp::new(NodeId(0), online_cfg());
        let mut plain = Sdsrp::new(NodeId(0), online_cfg());
        plain.set_priority_cache(false);

        let mut peer = Sdsrp::new(NodeId(9), online_cfg());
        peer.on_drop(t(40.0), MessageId(2));
        let gossip = peer.export_gossip(t(50.0)).unwrap();

        let msgs = [
            msg_with(1, 16, 200.0, &[], 500.0),
            msg_with(2, 4, 90.0, &[450.0, 200.0], 500.0),
            msg_with(3, 1, 5.0, &[480.0, 300.0, 100.0], 500.0),
        ];
        let check = |cached: &mut Sdsrp, plain: &mut Sdsrp, now: SimTime| {
            for m in &msgs {
                // Twice: the second call is a guaranteed memo hit.
                for _ in 0..2 {
                    let a = cached.send_priority(now, &m.view());
                    let b = plain.send_priority(now, &m.view());
                    assert_eq!(a.to_bits(), b.to_bits(), "diverged on {:?}", m.id);
                }
            }
        };

        check(&mut cached, &mut plain, t(500.0));
        for p in [&mut cached, &mut plain] {
            p.on_contact_up(t(600.0), NodeId(3));
            p.on_contact_down(t(620.0), NodeId(3));
            p.on_contact_up(t(900.0), NodeId(3)); // λ sample lands
        }
        check(&mut cached, &mut plain, t(950.0));
        for p in [&mut cached, &mut plain] {
            p.on_drop(t(1000.0), MessageId(1));
            p.import_gossip(t(1010.0), &gossip);
        }
        check(&mut cached, &mut plain, t(1050.0));
        // Time moves with no intervening event: the incremental path
        // must still agree bit-for-bit.
        check(&mut cached, &mut plain, t(1051.0));

        let stats = cached.priority_cache_stats().unwrap();
        assert!(stats.hits > 0, "memo never hit: {stats:?}");
        assert!(
            stats.incremental > 0,
            "incremental path never ran: {stats:?}"
        );
        assert_eq!(plain.priority_cache_stats().unwrap(), Default::default());
    }

    #[test]
    fn time_passage_takes_incremental_path_not_miss() {
        // The point of the incremental design: advancing the clock with
        // no intervening event must NOT rebuild entries. Sparse config
        // so the Eq. 15 bucket (E(I_min) ≈ 1010 s) comfortably spans
        // the probe instants.
        let mut p = Sdsrp::new(NodeId(0), sparse_cfg());
        let m = msg_with(1, 4, 200.0, &[500.0], 1000.0);
        p.send_priority(t(1000.0), &m.view());
        let after_warm = p.priority_cache_stats().unwrap();
        assert_eq!((after_warm.misses, after_warm.incremental), (1, 0));

        for (k, now) in [1001.0, 1002.5, 1040.0, 1300.0].into_iter().enumerate() {
            let v = p.send_priority(t(now), &m.view());
            let stats = p.priority_cache_stats().unwrap();
            assert_eq!(stats.misses, 1, "time passage caused a rebuild");
            assert_eq!(stats.incremental as usize, k + 1);
            // Incremental completion == cold recompute, bit for bit.
            let cold = Sdsrp::new(NodeId(0), sparse_cfg());
            assert_eq!(v.to_bits(), cold.utility(t(now), &m.view()).to_bits());
        }
    }

    #[test]
    fn bucket_boundary_crossing_forces_rebuild_and_stays_exact() {
        // Oracle-λ model: E(I_min) = 1000/99 ≈ 10.101 s. A spray at
        // t=0 moves buckets every E(I_min); probing across many
        // boundaries must re-estimate m_i exactly like a cold policy.
        let mut p = policy();
        let e_min = p.model().e_i_min();
        let spray_at = 0.0;
        for step in 1..40 {
            let now = spray_at + e_min * step as f64 * 0.75;
            let m = msg_with(1, 8, 120.0, &[now - spray_at], now);
            let warm = p.send_priority(t(now), &m.view());
            let cold = Sdsrp::new(NodeId(0), oracle_cfg());
            assert_eq!(
                warm.to_bits(),
                cold.utility(t(now), &m.view()).to_bits(),
                "diverged at step {step}"
            );
        }
        let stats = p.priority_cache_stats().unwrap();
        assert!(
            stats.misses > 1,
            "bucket boundaries never forced a rebuild: {stats:?}"
        );
        assert!(
            stats.incremental > 0,
            "within-bucket probes never took the fast path: {stats:?}"
        );
    }

    #[test]
    fn eviction_ranking_uses_consistent_now_snapshot() {
        // Regression (stale-TTL ranking): warm the memo at t0, then
        // plan an eviction at t1 where TTL decay has flipped the order
        // of two residents. The warm policy must pick the same victim
        // as a cold policy ranking everything freshly at t1.
        let now0 = t(100.0);
        let now1 = t(4000.0);
        // Resident A: long TTL, sprayed (lower priority early).
        // Resident B: short TTL, unsprayed (higher priority early, but
        // its exposure collapses as the TTL burns down).
        let a = msg_with(1, 2, 300.0, &[50.0], 100.0);
        let b = msg_with(2, 16, 68.0, &[], 100.0);
        let incoming = msg_with(9, 32, 300.0, &[], 100.0);
        let views = vec![a.view(), b.view()];

        let plan_at = |p: &mut Sdsrp, now: SimTime| {
            plan_admission(
                p,
                now,
                &incoming.view(),
                &views,
                Bytes::ZERO,
                Bytes::from_mb(1.0),
            )
        };

        let mut warm = Sdsrp::new(NodeId(0), sparse_cfg());
        // Warm every entry at t0...
        warm.send_priority(now0, &a.view());
        warm.send_priority(now0, &b.view());
        warm.send_priority(now0, &incoming.view());
        // ...then rank at t1.
        let warm_plan = plan_at(&mut warm, now1);
        let mut cold = Sdsrp::new(NodeId(0), sparse_cfg());
        let cold_plan = plan_at(&mut cold, now1);
        assert_eq!(warm_plan, cold_plan, "stale-TTL ranking divergence");

        // Non-vacuity: the same decision taken at t0 differs, i.e. the
        // TTL decay between t0 and t1 really flips the order.
        let mut cold0 = Sdsrp::new(NodeId(0), sparse_cfg());
        assert_ne!(plan_at(&mut cold0, now0), cold_plan);
    }

    #[test]
    fn gossip_import_invalidates_only_reported_messages() {
        let mut p = Sdsrp::new(NodeId(0), sparse_cfg());
        let now = t(1000.0);
        let m1 = msg_with(1, 4, 100.0, &[500.0], 1000.0);
        let m2 = msg_with(2, 4, 100.0, &[500.0], 1000.0);
        p.send_priority(now, &m1.view());
        p.send_priority(now, &m2.view());

        // A peer gossips a drop of message 1 only.
        let mut peer = Sdsrp::new(NodeId(9), sparse_cfg());
        peer.on_drop(t(40.0), MessageId(1));
        let adopted = p.import_gossip(t(1001.0), &peer.export_gossip(t(1001.0)).unwrap());
        assert_eq!(adopted, 1);

        let before = p.priority_cache_stats().unwrap();
        // Message 2's entry survived: same-instant probe is a hit.
        p.send_priority(now, &m2.view());
        // Message 1's entry was evicted: this is a rebuild.
        p.send_priority(now, &m1.view());
        let after = p.priority_cache_stats().unwrap();
        assert_eq!(after.hits, before.hits + 1, "m2 entry was evicted");
        assert_eq!(after.misses, before.misses + 1, "m1 entry survived");
        // And the rebuilt value reflects the new d_i.
        let cold = {
            let mut c = Sdsrp::new(NodeId(0), sparse_cfg());
            c.import_gossip(t(1001.0), &peer.export_gossip(t(1001.0)).unwrap());
            c
        };
        assert_eq!(
            p.send_priority(now, &m1.view()).to_bits(),
            cold.utility(now, &m1.view()).to_bits()
        );
    }

    #[test]
    fn disabling_cache_resets_stats_and_counts_nothing() {
        let mut p = Sdsrp::new(NodeId(0), sparse_cfg());
        let m = msg_with(1, 4, 100.0, &[500.0], 1000.0);
        p.send_priority(t(1000.0), &m.view());
        p.send_priority(t(1000.0), &m.view());
        assert_ne!(p.priority_cache_stats().unwrap(), Default::default());

        p.set_priority_cache(false);
        assert_eq!(p.priority_cache_stats().unwrap(), Default::default());
        p.send_priority(t(1000.0), &m.view());
        p.send_priority(t(1001.0), &m.view());
        // Bypass evaluations are not misses — the memo was never asked.
        assert_eq!(p.priority_cache_stats().unwrap(), Default::default());

        // Re-enabling also restarts the counters.
        p.set_priority_cache(true);
        p.send_priority(t(1002.0), &m.view());
        let stats = p.priority_cache_stats().unwrap();
        assert_eq!((stats.hits, stats.incremental, stats.misses), (0, 0, 1));
    }

    #[test]
    fn node_reset_returns_policy_to_cold_state() {
        let mut p = Sdsrp::new(NodeId(0), online_cfg());
        // Teach λ, record drops, import gossip.
        p.on_contact_up(t(0.0), NodeId(1));
        p.on_contact_down(t(10.0), NodeId(1));
        p.on_contact_up(t(510.0), NodeId(1));
        p.on_drop(t(600.0), MessageId(3));
        let mut peer = Sdsrp::new(NodeId(9), online_cfg());
        peer.on_drop(t(40.0), MessageId(2));
        p.import_gossip(t(650.0), &peer.export_gossip(t(650.0)).unwrap());
        assert!((p.lambda() - 1.0 / 500.0).abs() < 1e-12);
        assert!(!p.accepts(t(700.0), MessageId(3)));
        assert!(!p.accepts(t(700.0), MessageId(2)));

        p.on_node_reset(t(700.0));

        // λ back to the prior, dropped list empty, acceptance restored.
        assert!((p.lambda() - 1.0 / 2000.0).abs() < 1e-15);
        assert!(p.accepts(t(710.0), MessageId(3)));
        assert!(p.accepts(t(710.0), MessageId(2)));
        assert_eq!(p.export_gossip(t(710.0)), None);
        // The rebooted node behaves like a fresh construction: first
        // contact after reboot is not an intermeeting sample.
        p.on_contact_up(t(800.0), NodeId(1));
        assert!((p.lambda() - 1.0 / 2000.0).abs() < 1e-15);
    }

    #[test]
    fn cache_key_distinguishes_spray_history_at_same_instant() {
        // Same id, same copies, same now — only the spray timestamps
        // differ. The pinned inputs must force a recompute (distinct
        // value).
        let mut p = Sdsrp::new(NodeId(0), sparse_cfg());
        let now = t(5000.0);
        let a = msg_with(1, 4, 100.0, &[4000.0], 5000.0);
        let b = msg_with(1, 4, 100.0, &[500.0], 5000.0);
        let ua = p.send_priority(now, &a.view());
        let ub = p.send_priority(now, &b.view());
        assert_ne!(ua, ub, "spray-history change not reflected");
    }

    #[test]
    fn seen_horizon_is_exact_at_bucket_boundaries() {
        // Brute-force check of the certification: for a range of spray
        // times and E(I_min) values, estimate_m must be constant on
        // [now, horizon) and different (or the entry rebuilt) at the
        // horizon itself.
        for &(tk, e_min, now_s) in &[
            (0.0, 10.0, 25.0),
            (3.0, 1010.10101010101, 500.0),
            (100.0, 0.1, 100.05),
            (7.0, 3.3333333333333335, 7.0),
            (0.0, 1e-3, 0.0617),
        ] {
            let spray = [t(tk)];
            let seen = estimate_m(&spray, t(now_s), e_min, 100);
            let horizon = seen_horizon(&spray, now_s, e_min, seen, 100, false);
            assert!(horizon > now_s, "empty window for tk={tk} e={e_min}");
            if horizon.is_finite() {
                // Just below the horizon: same estimate.
                let probe = next_down(horizon);
                assert_eq!(
                    estimate_m(&spray, t(probe), e_min, 100),
                    seen,
                    "estimate moved inside the certified window (tk={tk}, e={e_min})"
                );
                // At the horizon: the estimate moves (that is what the
                // boundary means).
                assert_ne!(
                    estimate_m(&spray, t(horizon), e_min, 100),
                    seen,
                    "horizon is not actually a boundary (tk={tk}, e={e_min})"
                );
            }
        }
    }

    #[test]
    fn next_down_is_strictly_below() {
        for &x in &[1.0, 0.0, -1.0, 1e300, 1e-300, 25.000000000000004] {
            let y = next_down(x);
            assert!(y < x, "next_down({x}) = {y} not below");
            assert_eq!(f64::from_bits(y.to_bits()), y);
            let z = next_up(x);
            assert!(z > x, "next_up({x}) = {z} not above");
            assert_eq!(next_up(y), x, "next_up does not undo next_down at {x}");
        }
        assert_eq!(next_down(f64::INFINITY), f64::MAX);
        assert_eq!(next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
    }
}
