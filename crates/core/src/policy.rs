//! The SDSRP buffer policy: Algorithm 1 wired into the
//! [`dtn_buffer::BufferPolicy`] trait.
//!
//! Per ranked message the policy:
//!
//! 1. obtains λ (oracle value or the node's online
//!    [`crate::estimator::LambdaEstimator`]),
//! 2. estimates `m_i` from the copy's binary-spray timestamps (Eq. 15) —
//!    or takes the oracle value when the simulator provides one
//!    (global-knowledge ablation),
//! 3. reads `d_i` from the gossiped [`DroppedList`] and forms
//!    `n_i = m_i + 1 - d_i` (Eq. 14),
//! 4. computes `U_i` (Eq. 10 closed form, or the Eq. 13 Taylor
//!    truncation when configured).
//!
//! The same `U_i` drives scheduling (highest first) and dropping (lowest
//! first); reception of messages present in the dropped list is refused.
//!
//! ## Priority memoisation
//!
//! The ranking hooks route through an exact-key memo (`UtilityCache`):
//! per message the evaluated priority is cached together with every
//! input it was derived from (`UtilityKey`), and invalidation is tied
//! to the precise events that can change the remaining (policy-internal)
//! inputs:
//!
//! * a contact-up that actually records an intermeeting sample moves λ
//!   → clear everything (λ enters every priority);
//! * an own drop moves `d_i` of that one message → evict its entry;
//! * a gossip import that adopts ≥ 1 record may move any `d_i` → clear
//!   the values but keep the (λ-only) model;
//! * contact-down, sample-less contact-ups and adoption-free imports
//!   change no input → the memo stays valid.
//!
//! A hit therefore returns the bit-identical float a recompute would —
//! runs with the memo on and off produce identical simulations, which
//! `tests/priority_cache_differential.rs` enforces
//! fingerprint-for-fingerprint.

use crate::dropped_list::DroppedList;
use crate::estimator::{estimate_m, estimate_n, LambdaEstimator};
use crate::priority::PriorityModel;
use dtn_buffer::policy::{BufferPolicy, PriorityCacheStats};
use dtn_buffer::view::MessageView;
use dtn_core::ids::{MessageId, NodeId};
use dtn_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where the policy gets its intermeeting rate λ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LambdaMode {
    /// A fixed, externally supplied rate (scenario-level oracle; used by
    /// the ablation benches to isolate estimator error).
    Oracle(f64),
    /// Learn online from this node's own contact history, reporting
    /// `prior` until `min_samples` intermeeting samples accumulate.
    Online {
        /// Rate assumed before enough history exists, per second.
        prior: f64,
        /// Number of samples before the estimate is trusted.
        min_samples: u64,
    },
    /// Extension (SDSRP-H): like `Online`, but each message is ranked
    /// with the λ specific to *its destination* (falling back to the
    /// pooled rate until enough per-destination gaps exist). Matters
    /// under heterogeneous mobility (communities, taxi hotspots) where
    /// Eq. 3's single-λ assumption breaks.
    OnlinePerDestination {
        /// Rate assumed before enough history exists, per second.
        prior: f64,
        /// Samples required before a (pooled or per-peer) estimate is
        /// trusted.
        min_samples: u64,
    },
}

/// SDSRP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdsrpConfig {
    /// Total nodes `N` in the network (the paper assumes this is known).
    pub n_nodes: usize,
    /// λ source.
    pub lambda: LambdaMode,
    /// `Some(k)` evaluates the Eq. 13 Taylor form with `k` terms instead
    /// of the exact Eq. 10 closed form.
    pub taylor_terms: Option<usize>,
    /// Refuse to receive messages present in the dropped list
    /// (paper Section III-C). Disable for ablation.
    pub reject_dropped: bool,
    /// Exchange dropped-list records on contact. Disable for ablation
    /// (then `d_i` only reflects the node's own drops).
    pub gossip: bool,
}

impl SdsrpConfig {
    /// The paper's configuration for a network of `n_nodes`: online λ
    /// estimation, exact closed-form priority, gossip and receive-reject
    /// enabled.
    ///
    /// The λ prior corresponds to E(I) = 2000 s, a mid-range guess for
    /// the paper's scenarios; it only matters for the first few contacts.
    pub fn paper(n_nodes: usize) -> Self {
        SdsrpConfig {
            n_nodes,
            lambda: LambdaMode::Online {
                prior: 1.0 / 2000.0,
                min_samples: 5,
            },
            taylor_terms: None,
            reject_dropped: true,
            gossip: true,
        }
    }
}

/// Exact inputs of one memoised [`Sdsrp::utility`] evaluation. Two
/// evaluations with equal keys are guaranteed to produce the *same
/// float*: every quantity `utility` reads is either fixed per message
/// id (source, destination, size, created, TTL, initial copies), a pure
/// function of `now` (remaining TTL, the Eq. 15 floor buckets), part of
/// the key (copy tokens, spray timestamps, oracle `(m, n)`), or policy
/// state guarded by the event-exact invalidation hooks (λ samples,
/// dropped-list counts — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct UtilityKey {
    /// Bit pattern of the evaluation instant.
    now_bits: u64,
    /// Copy tokens held (changes on binary-spray splits).
    copies: u32,
    /// Spray-timestamp count plus an FNV-1a hash over the raw bit
    /// patterns — together they pin the Eq. 15 input exactly.
    spray_len: u32,
    spray_hash: u64,
    /// Encoded oracle `(m_i, n_i)` override (0 when absent).
    oracle_key: u64,
}

impl UtilityKey {
    fn of(now: SimTime, msg: &MessageView<'_>) -> Self {
        let mut spray_hash = 0xcbf2_9ce4_8422_2325u64;
        for t in msg.spray_times {
            for b in t.as_secs().to_bits().to_le_bytes() {
                spray_hash = (spray_hash ^ b as u64).wrapping_mul(0x0100_0000_01b3);
            }
        }
        let encode = |v: Option<u32>| v.map_or(0u64, |x| x as u64 + 1);
        UtilityKey {
            now_bits: now.as_secs().to_bits(),
            copies: msg.copies,
            spray_len: msg.spray_times.len() as u32,
            spray_hash,
            oracle_key: encode(msg.oracle_seen) << 33 | encode(msg.oracle_holders),
        }
    }
}

/// Per-message memo of [`Sdsrp::utility`] results, plus the
/// [`PriorityModel`] shared by every evaluation between invalidations.
///
/// The hot path re-ranks the same `(node, message)` pairs many times at
/// the same instant — every transfer completion re-arms all idle links
/// of both endpoints, and each re-arm walks both buffers — so most
/// lookups hit. Invalidation is event-based *and* exact: the hooks
/// ([`BufferPolicy::on_contact_up`], `on_drop`, `import_gossip`) clear
/// exactly the entries whose inputs (λ, `d_i`) their event can move —
/// see the module docs for the per-event rules — and [`UtilityKey`]
/// catches every remaining input (time, copy splits, spray history,
/// oracle overrides), making a hit bit-identical to a recompute by
/// construction.
struct UtilityCache {
    enabled: bool,
    entries: HashMap<MessageId, (UtilityKey, f64)>,
    model: Option<PriorityModel>,
    hits: u64,
    misses: u64,
}

impl UtilityCache {
    fn new() -> Self {
        UtilityCache {
            enabled: true,
            entries: HashMap::new(),
            model: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Drops every memoised value (λ or dropped-list state changed).
    fn invalidate(&mut self) {
        self.entries.clear();
        self.model = None;
    }
}

/// The SDSRP policy state for one node.
pub struct Sdsrp {
    cfg: SdsrpConfig,
    lambda_est: LambdaEstimator,
    dropped: DroppedList,
    cache: UtilityCache,
}

impl Sdsrp {
    /// Creates the policy for `node`.
    ///
    /// # Panics
    /// Panics on nonsensical configuration (fewer than 2 nodes,
    /// non-positive λ, zero Taylor terms).
    pub fn new(node: NodeId, cfg: SdsrpConfig) -> Self {
        assert!(cfg.n_nodes >= 2, "need at least two nodes");
        if let Some(k) = cfg.taylor_terms {
            assert!(k >= 1, "need at least one Taylor term");
        }
        let lambda_est = match cfg.lambda {
            LambdaMode::Oracle(l) => {
                assert!(l > 0.0 && l.is_finite(), "oracle lambda must be positive");
                // Estimator never consulted in oracle mode, but keep it
                // consistent.
                LambdaEstimator::new(l, u64::MAX)
            }
            LambdaMode::Online { prior, min_samples }
            | LambdaMode::OnlinePerDestination { prior, min_samples } => {
                LambdaEstimator::new(prior, min_samples)
            }
        };
        Sdsrp {
            cfg,
            lambda_est,
            dropped: DroppedList::new(node),
            cache: UtilityCache::new(),
        }
    }

    /// The current (pooled) λ in use.
    pub fn lambda(&self) -> f64 {
        match self.cfg.lambda {
            LambdaMode::Oracle(l) => l,
            LambdaMode::Online { .. } | LambdaMode::OnlinePerDestination { .. } => {
                self.lambda_est.lambda()
            }
        }
    }

    /// The current priority model (λ may drift as the estimator learns).
    pub fn model(&self) -> PriorityModel {
        PriorityModel::new(self.cfg.n_nodes, self.lambda())
    }

    /// Access to the dropped list (tests/diagnostics).
    pub fn dropped_list(&self) -> &DroppedList {
        &self.dropped
    }

    /// Computes the message's ranking value — the core of Algorithm 1
    /// lines 1-2 ("map C_i, R_i to Priority_i").
    ///
    /// Returned in **log-space** (`ln U_i`): at paper scale the linear
    /// `U_i` of Eq. 10 underflows `f64` to 0 for well-spread messages,
    /// which would collapse the ranking into ties; `ln` is monotone so
    /// all comparisons are unchanged. Zero-utility messages map to
    /// `-inf`.
    pub fn utility(&self, now: SimTime, msg: &MessageView<'_>) -> f64 {
        self.utility_with(self.model(), now, msg)
    }

    /// [`Self::utility`] through the per-message memo — the form the
    /// [`BufferPolicy`] ranking hooks use. A hit returns the exact float
    /// a recompute would produce (see [`UtilityKey`]); simulation
    /// results are bit-identical with the cache on or off.
    fn utility_cached(&mut self, now: SimTime, msg: &MessageView<'_>) -> f64 {
        if !self.cache.enabled {
            return self.utility(now, msg);
        }
        let key = UtilityKey::of(now, msg);
        if let Some((cached_key, value)) = self.cache.entries.get(&msg.id) {
            if *cached_key == key {
                self.cache.hits += 1;
                return *value;
            }
        }
        let model = match self.cache.model {
            Some(m) => m,
            None => {
                let m = self.model();
                self.cache.model = Some(m);
                m
            }
        };
        let value = self.utility_with(model, now, msg);
        self.cache.misses += 1;
        self.cache.entries.insert(msg.id, (key, value));
        value
    }

    fn utility_with(&self, model: PriorityModel, now: SimTime, msg: &MessageView<'_>) -> f64 {
        // m_i: oracle if provided, else the Eq. 15 spray-tree estimate.
        let seen = msg
            .oracle_seen
            .unwrap_or_else(|| estimate_m(msg.spray_times, now, model.e_i_min(), self.cfg.n_nodes));
        // n_i: oracle if provided, else Eq. 14 with the gossiped d_i.
        let holders = msg
            .oracle_holders
            .unwrap_or_else(|| estimate_n(seen, self.dropped.drop_count(msg.id)));
        let r = msg.remaining_ttl.as_secs().max(0.0);
        // SDSRP-H: rank with the destination-specific meeting rate.
        if let LambdaMode::OnlinePerDestination { .. } = self.cfg.lambda {
            if self.cfg.taylor_terms.is_none() {
                let l_dest = self.lambda_est.lambda_for(msg.destination);
                return model.log_priority_dest(seen, holders, msg.copies, r, l_dest);
            }
        }
        match self.cfg.taylor_terms {
            None => model.log_priority(seen, holders, msg.copies, r),
            Some(k) => model.log_priority_taylor(seen, holders, msg.copies, r, k),
        }
    }
}

impl BufferPolicy for Sdsrp {
    fn name(&self) -> &'static str {
        "SDSRP"
    }

    fn send_priority(&mut self, now: SimTime, msg: &MessageView<'_>) -> f64 {
        self.utility_cached(now, msg)
    }

    fn accepts(&mut self, _now: SimTime, msg: MessageId) -> bool {
        !(self.cfg.reject_dropped && self.dropped.anyone_dropped(msg))
    }

    fn on_contact_up(&mut self, now: SimTime, peer: NodeId) {
        // λ only moves when an intermeeting gap is actually sampled
        // (first contacts and zero gaps change nothing); only then is
        // the memo stale — wholesale, since λ enters every priority.
        if self.lambda_est.on_contact_up(now, peer) {
            self.cache.invalidate();
        }
    }

    fn on_contact_down(&mut self, now: SimTime, peer: NodeId) {
        // Closing a contact only stamps the estimator's
        // `last_contact_end`; no utility input changes, the memo stays
        // exact.
        self.lambda_est.on_contact_down(now, peer);
    }

    fn on_drop(&mut self, now: SimTime, msg: MessageId) {
        // An own drop changes d_i (Eq. 14) of *this* message only — λ
        // and every other message's inputs are untouched, so evict the
        // single entry and keep the memoised model.
        self.dropped.record_own_drop(now, msg);
        self.cache.entries.remove(&msg);
    }

    fn on_node_reset(&mut self, _now: SimTime) {
        // A crash wipes all distributed state: the λ estimator returns
        // to its prior (contact-history endpoints included — otherwise
        // the first post-reboot contact would sample one enormous bogus
        // intermeeting gap), the dropped list restarts empty (its
        // gossip record times restart with it), and the priority memo
        // is rebuilt from scratch.
        self.lambda_est.reset();
        self.dropped.clear();
        self.cache.invalidate();
    }

    fn export_gossip(&mut self, _now: SimTime) -> Option<Vec<u8>> {
        if self.cfg.gossip && self.dropped.origin_count() > 0 {
            Some(self.dropped.to_gossip_bytes())
        } else {
            None
        }
    }

    fn import_gossip(&mut self, _now: SimTime, bytes: &[u8]) -> usize {
        if !self.cfg.gossip {
            return 0;
        }
        let adopted = self.dropped.merge_gossip_bytes(bytes);
        if adopted > 0 {
            // Adopted records can change any message's d_i, but λ is
            // untouched: drop the memoised values, keep the model.
            self.cache.entries.clear();
        }
        adopted
    }

    fn set_priority_cache(&mut self, enabled: bool) {
        self.cache.enabled = enabled;
        self.cache.invalidate();
    }

    fn priority_cache_stats(&self) -> Option<PriorityCacheStats> {
        Some(PriorityCacheStats {
            hits: self.cache.hits,
            misses: self.cache.misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_buffer::policy::{plan_admission, schedule_order, AdmissionPlan};
    use dtn_buffer::view::TestMessage;
    use dtn_core::time::SimDuration;
    use dtn_core::units::Bytes;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn oracle_cfg() -> SdsrpConfig {
        SdsrpConfig {
            n_nodes: 100,
            lambda: LambdaMode::Oracle(1.0 / 1000.0),
            taylor_terms: None,
            reject_dropped: true,
            gossip: true,
        }
    }

    fn policy() -> Sdsrp {
        Sdsrp::new(NodeId(0), oracle_cfg())
    }

    /// Builds a message with the spray history implied by "sprayed once
    /// `ago` seconds before now".
    fn msg_with(
        id: u64,
        copies: u32,
        remaining_mins: f64,
        spray_ago: &[f64],
        now: f64,
    ) -> TestMessage {
        let mut m = TestMessage::sample(id);
        m.copies = copies;
        m.remaining_ttl = SimDuration::from_mins(remaining_mins);
        m.spray_times = spray_ago
            .iter()
            .map(|&ago| t((now - ago).max(0.0)))
            .collect();
        m
    }

    #[test]
    fn fresh_unsprayed_message_outranks_saturated_one() {
        let mut p = policy();
        let now = t(1000.0);
        // Fresh: no sprays recorded, full TTL, lots of copies.
        let fresh = msg_with(1, 32, 300.0, &[], 1000.0);
        // Saturated: sprayed long ago repeatedly, little TTL left.
        let old = msg_with(2, 1, 3.0, &[900.0, 700.0, 500.0], 1000.0);
        let uf = p.send_priority(now, &fresh.view());
        let uo = p.send_priority(now, &old.view());
        assert!(uf > uo, "fresh {uf} <= saturated {uo}");
    }

    /// Sparse-network config: E(I) = 100 000 s, so delivery within the
    /// remaining TTL is genuinely uncertain (P(R) below the 1-1/e peak)
    /// and extra copies carry value — the regime Fig. 2's "early"
    /// decision lives in.
    fn sparse_cfg() -> SdsrpConfig {
        SdsrpConfig {
            n_nodes: 100,
            lambda: LambdaMode::Oracle(1e-5),
            taylor_terms: None,
            reject_dropped: true,
            gossip: true,
        }
    }

    #[test]
    fn fig2_reversal_small_c_and_r_can_win() {
        // Paper Fig. 2: in node c (early), M_i with larger C and R wins;
        // in node e (late), the same comparison flips because M_i's
        // infection estimate has exploded while M_j stays small.
        let p = Sdsrp::new(NodeId(0), sparse_cfg());
        // Early: neither message has sprayed yet; bigger C & R -> more
        // to gain.
        let now_early = t(100.0);
        let mi_early = msg_with(1, 16, 250.0, &[], 100.0);
        let mj_early = msg_with(2, 4, 120.0, &[], 100.0);
        let ui = p.utility(now_early, &mi_early.view());
        let uj = p.utility(now_early, &mj_early.view());
        assert!(ui > uj, "early: U_i {ui} should exceed U_j {uj}");

        // Late: M_i was sprayed long ago -> huge m_i estimate -> its
        // priority collapses below M_j's.
        let now_late = t(10_000.0);
        let mi_late = msg_with(1, 16, 60.0, &[9800.0, 9000.0], 10_000.0);
        let mj_late = msg_with(2, 4, 30.0, &[300.0], 10_000.0);
        let ui = p.utility(now_late, &mi_late.view());
        let uj = p.utility(now_late, &mj_late.view());
        assert!(uj > ui, "late: U_j {uj} should exceed U_i {ui}");
    }

    #[test]
    fn schedule_and_drop_use_same_ranking() {
        let mut p = policy();
        let now = t(500.0);
        let a = msg_with(1, 32, 300.0, &[], 500.0);
        let b = msg_with(2, 1, 2.0, &[400.0, 300.0, 200.0], 500.0);
        let views = vec![a.view(), b.view()];
        let order = schedule_order(&mut p, now, &views);
        assert_eq!(order[0], MessageId(1));
        // Overflow with a high-priority newcomer: evict the tail of the
        // schedule order.
        let incoming = msg_with(9, 32, 300.0, &[], 500.0);
        let plan = plan_admission(
            &mut p,
            now,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(2)]
            }
        );
    }

    #[test]
    fn dropped_messages_are_refused() {
        let mut p = policy();
        assert!(p.accepts(t(0.0), MessageId(7)));
        p.on_drop(t(10.0), MessageId(7));
        assert!(!p.accepts(t(11.0), MessageId(7)));
    }

    #[test]
    fn reject_dropped_can_be_disabled() {
        let mut cfg = oracle_cfg();
        cfg.reject_dropped = false;
        let mut p = Sdsrp::new(NodeId(0), cfg);
        p.on_drop(t(10.0), MessageId(7));
        assert!(p.accepts(t(11.0), MessageId(7)));
    }

    #[test]
    fn gossip_propagates_drop_knowledge() {
        let mut a = policy();
        let mut b = Sdsrp::new(NodeId(1), oracle_cfg());
        a.on_drop(t(5.0), MessageId(3));
        let payload = a.export_gossip(t(6.0)).expect("has records");
        b.import_gossip(t(6.0), &payload);
        assert!(!b.accepts(t(7.0), MessageId(3)));
        assert_eq!(b.dropped_list().drop_count(MessageId(3)), 1);
    }

    #[test]
    fn gossip_disabled_exports_nothing() {
        let mut cfg = oracle_cfg();
        cfg.gossip = false;
        let mut p = Sdsrp::new(NodeId(0), cfg);
        p.on_drop(t(5.0), MessageId(3));
        assert_eq!(p.export_gossip(t(6.0)), None);
    }

    #[test]
    fn empty_dropped_list_exports_nothing() {
        let mut p = policy();
        assert_eq!(p.export_gossip(t(0.0)), None);
    }

    #[test]
    fn drops_lower_n_estimate_and_raise_priority() {
        // Eq. 14: recorded drops reduce n_i, which (in the saturated
        // regime) *raises* the message's priority — fewer live copies
        // mean a copy is worth more.
        let mut with_drops = Sdsrp::new(NodeId(0), sparse_cfg());
        let without_drops = Sdsrp::new(NodeId(0), sparse_cfg());
        let now = t(2000.0);
        let m = msg_with(1, 4, 100.0, &[1500.0, 1000.0], 2000.0);
        let u_before = without_drops.utility(now, &m.view());
        // Two other nodes report dropping message 1.
        let mut peer1 = Sdsrp::new(NodeId(5), sparse_cfg());
        let mut peer2 = Sdsrp::new(NodeId(6), sparse_cfg());
        peer1.on_drop(t(100.0), MessageId(1));
        peer2.on_drop(t(100.0), MessageId(1));
        with_drops.import_gossip(now, &peer1.export_gossip(now).unwrap());
        with_drops.import_gossip(now, &peer2.export_gossip(now).unwrap());
        let u_after = with_drops.utility(now, &m.view());
        assert!(
            u_after > u_before,
            "drops should raise priority: {u_after} vs {u_before}"
        );
    }

    #[test]
    fn oracle_views_override_estimators() {
        let p = policy();
        let now = t(1000.0);
        let mut m = msg_with(1, 8, 100.0, &[900.0, 800.0], 1000.0);
        m.oracle_seen = Some(2);
        m.oracle_holders = Some(3);
        let u_oracle = p.utility(now, &m.view());
        let model = p.model();
        let expect = model.log_priority(2, 3, 8, 100.0 * 60.0);
        assert!((u_oracle - expect).abs() < 1e-12);
    }

    #[test]
    fn taylor_mode_approximates_exact() {
        let exact = Sdsrp::new(NodeId(0), sparse_cfg());
        let mut cfg = sparse_cfg();
        cfg.taylor_terms = Some(64);
        let approx = Sdsrp::new(NodeId(0), cfg);
        let now = t(3000.0);
        let m = msg_with(1, 8, 150.0, &[2500.0], 3000.0);
        let ue = exact.utility(now, &m.view());
        let ua = approx.utility(now, &m.view());
        assert!(ua <= ue + 1e-12, "Taylor must lower-bound exact");
        assert!(
            (ue - ua) <= ue.abs() * 0.05 + 1e-6,
            "64-term Taylor too far off: {ua} vs {ue}"
        );
    }

    #[test]
    fn online_lambda_feeds_priority() {
        let mut cfg = oracle_cfg();
        cfg.lambda = LambdaMode::Online {
            prior: 1.0 / 2000.0,
            min_samples: 1,
        };
        let mut p = Sdsrp::new(NodeId(0), cfg);
        assert!((p.lambda() - 1.0 / 2000.0).abs() < 1e-15);
        // Two contacts with a 500 s gap teach λ = 1/500.
        p.on_contact_up(t(0.0), NodeId(1));
        p.on_contact_down(t(10.0), NodeId(1));
        p.on_contact_up(t(510.0), NodeId(1));
        assert!((p.lambda() - 1.0 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn per_destination_lambda_differentiates_messages() {
        // A node that meets node 1 every 100 s but node 2 every 5000 s:
        // two otherwise-identical messages destined to 1 vs 2 must rank
        // differently under SDSRP-H (and identically under pooled λ).
        let mut cfg = oracle_cfg();
        cfg.lambda = LambdaMode::OnlinePerDestination {
            prior: 1.0 / 2000.0,
            min_samples: 2,
        };
        let mut p = Sdsrp::new(NodeId(0), cfg);
        // Three gaps of 100 s with node 1.
        for k in 0..4 {
            p.on_contact_up(t(k as f64 * 110.0), NodeId(1));
            p.on_contact_down(t(k as f64 * 110.0 + 10.0), NodeId(1));
        }
        // Three gaps of 5000 s with node 2.
        for k in 0..4 {
            p.on_contact_up(t(k as f64 * 5010.0), NodeId(2));
            p.on_contact_down(t(k as f64 * 5010.0 + 10.0), NodeId(2));
        }
        let now = t(20_100.0);
        let mut to_fast = msg_with(1, 4, 100.0, &[], 20_100.0);
        to_fast.destination = NodeId(1);
        let mut to_slow = msg_with(2, 4, 100.0, &[], 20_100.0);
        to_slow.destination = NodeId(2);
        let u_fast = p.utility(now, &to_fast.view());
        let u_slow = p.utility(now, &to_slow.view());
        assert_ne!(u_fast, u_slow, "per-destination λ had no effect");

        // Pooled mode ranks them identically.
        let mut pooled_cfg = oracle_cfg();
        pooled_cfg.lambda = LambdaMode::Online {
            prior: 1.0 / 2000.0,
            min_samples: 2,
        };
        let pooled = Sdsrp::new(NodeId(0), pooled_cfg);
        assert_eq!(
            pooled.utility(now, &to_fast.view()),
            pooled.utility(now, &to_slow.view())
        );
    }

    #[test]
    fn per_destination_reduces_to_pooled_when_uniform() {
        // All peers met at the same cadence: lambda_for == lambda, so
        // SDSRP-H and plain SDSRP agree exactly.
        let mk = |mode: LambdaMode| {
            let mut cfg = oracle_cfg();
            cfg.lambda = mode;
            let mut p = Sdsrp::new(NodeId(0), cfg);
            for peer in 1..4u32 {
                for k in 0..4 {
                    p.on_contact_up(t(k as f64 * 500.0 + peer as f64), NodeId(peer));
                    p.on_contact_down(t(k as f64 * 500.0 + peer as f64 + 1.0), NodeId(peer));
                }
            }
            p
        };
        let h = mk(LambdaMode::OnlinePerDestination {
            prior: 1.0 / 2000.0,
            min_samples: 2,
        });
        let plain = mk(LambdaMode::Online {
            prior: 1.0 / 2000.0,
            min_samples: 2,
        });
        let now = t(3000.0);
        let mut m = msg_with(1, 8, 200.0, &[], 3000.0);
        m.destination = NodeId(2);
        let a = h.utility(now, &m.view());
        let b = plain.utility(now, &m.view());
        assert!(a.is_finite() && b.is_finite(), "degenerate test inputs");
        assert!(
            (a - b).abs() < 1e-2 * b.abs(),
            "uniform cadence should make SDSRP-H ~= SDSRP: {a} vs {b}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one Taylor term")]
    fn zero_taylor_terms_rejected() {
        let mut cfg = oracle_cfg();
        cfg.taylor_terms = Some(0);
        let _ = Sdsrp::new(NodeId(0), cfg);
    }

    /// Online-λ config so contacts actually move λ (the harshest case
    /// for the memo: every contact invalidates).
    fn online_cfg() -> SdsrpConfig {
        SdsrpConfig {
            n_nodes: 100,
            lambda: LambdaMode::Online {
                prior: 1.0 / 2000.0,
                min_samples: 1,
            },
            taylor_terms: None,
            reject_dropped: true,
            gossip: true,
        }
    }

    #[test]
    fn cached_ranking_is_bit_identical_to_uncached() {
        // Twin policies fed the same event stream; one with the memo
        // disabled. Every ranking must agree to the last bit, including
        // repeats at the same instant (hits) and across λ / drop / gossip
        // invalidations.
        let mut cached = Sdsrp::new(NodeId(0), online_cfg());
        let mut plain = Sdsrp::new(NodeId(0), online_cfg());
        plain.set_priority_cache(false);

        let mut peer = Sdsrp::new(NodeId(9), online_cfg());
        peer.on_drop(t(40.0), MessageId(2));
        let gossip = peer.export_gossip(t(50.0)).unwrap();

        let msgs = [
            msg_with(1, 16, 200.0, &[], 500.0),
            msg_with(2, 4, 90.0, &[450.0, 200.0], 500.0),
            msg_with(3, 1, 5.0, &[480.0, 300.0, 100.0], 500.0),
        ];
        let check = |cached: &mut Sdsrp, plain: &mut Sdsrp, now: SimTime| {
            for m in &msgs {
                // Twice: the second call is a guaranteed memo hit.
                for _ in 0..2 {
                    let a = cached.send_priority(now, &m.view());
                    let b = plain.send_priority(now, &m.view());
                    assert_eq!(a.to_bits(), b.to_bits(), "diverged on {:?}", m.id);
                }
            }
        };

        check(&mut cached, &mut plain, t(500.0));
        for p in [&mut cached, &mut plain] {
            p.on_contact_up(t(600.0), NodeId(3));
            p.on_contact_down(t(620.0), NodeId(3));
            p.on_contact_up(t(900.0), NodeId(3)); // λ sample lands
        }
        check(&mut cached, &mut plain, t(950.0));
        for p in [&mut cached, &mut plain] {
            p.on_drop(t(1000.0), MessageId(1));
            p.import_gossip(t(1010.0), &gossip);
        }
        check(&mut cached, &mut plain, t(1050.0));
        // Time moves with no intervening event: keys differ, no stale hit.
        check(&mut cached, &mut plain, t(1051.0));

        let stats = cached.priority_cache_stats().unwrap();
        assert!(stats.hits > 0, "memo never hit: {stats:?}");
        assert_eq!(plain.priority_cache_stats().unwrap().hits, 0);
    }

    #[test]
    fn node_reset_returns_policy_to_cold_state() {
        let mut p = Sdsrp::new(NodeId(0), online_cfg());
        // Teach λ, record drops, import gossip.
        p.on_contact_up(t(0.0), NodeId(1));
        p.on_contact_down(t(10.0), NodeId(1));
        p.on_contact_up(t(510.0), NodeId(1));
        p.on_drop(t(600.0), MessageId(3));
        let mut peer = Sdsrp::new(NodeId(9), online_cfg());
        peer.on_drop(t(40.0), MessageId(2));
        p.import_gossip(t(650.0), &peer.export_gossip(t(650.0)).unwrap());
        assert!((p.lambda() - 1.0 / 500.0).abs() < 1e-12);
        assert!(!p.accepts(t(700.0), MessageId(3)));
        assert!(!p.accepts(t(700.0), MessageId(2)));

        p.on_node_reset(t(700.0));

        // λ back to the prior, dropped list empty, acceptance restored.
        assert!((p.lambda() - 1.0 / 2000.0).abs() < 1e-15);
        assert!(p.accepts(t(710.0), MessageId(3)));
        assert!(p.accepts(t(710.0), MessageId(2)));
        assert_eq!(p.export_gossip(t(710.0)), None);
        // The rebooted node behaves like a fresh construction: first
        // contact after reboot is not an intermeeting sample.
        p.on_contact_up(t(800.0), NodeId(1));
        assert!((p.lambda() - 1.0 / 2000.0).abs() < 1e-15);
    }

    #[test]
    fn cache_key_distinguishes_spray_history_at_same_instant() {
        // Same id, same copies, same now — only the spray timestamps
        // differ. The key must force a recompute (distinct value).
        let mut p = Sdsrp::new(NodeId(0), sparse_cfg());
        let now = t(5000.0);
        let a = msg_with(1, 4, 100.0, &[4000.0], 5000.0);
        let b = msg_with(1, 4, 100.0, &[500.0], 5000.0);
        let ua = p.send_priority(now, &a.view());
        let ub = p.send_priority(now, &b.view());
        assert_ne!(ua, ub, "spray-history change not reflected");
    }
}
