//! # dtn-buffer
//!
//! The buffer-management framework the paper's comparison is built on:
//! a [`BufferPolicy`] trait that ranks buffered messages for **scheduling**
//! (which message to replicate first when a contact comes up) and
//! **dropping** (which message to evict when the buffer overflows), plus
//! the baseline policies the paper evaluates against:
//!
//! | paper name        | type                                  | priority |
//! |-------------------|---------------------------------------|----------|
//! | Spray and Wait    | [`Fifo`](fifo::Fifo)                  | oldest-received first (send), drop-oldest |
//! | Spray and Wait-O  | [`TtlRatio`](ttl::TtlRatio)           | remaining TTL / initial TTL |
//! | Spray and Wait-C  | [`CopiesRatio`](copies::CopiesRatio)  | copies held / initial copies |
//!
//! Extra baselines from the buffer-management literature are included for
//! the ablation benches: [`Lifo`](fifo::Lifo), [`Mofo`](mofo::Mofo)
//! (most-forwarded dropped first), [`Shli`](ttl::Shli) (smallest
//! remaining TTL dropped first) and [`RandomDrop`](random::RandomDrop),
//! plus two congestion-adaptive extensions,
//! [`OccupancyGate`](congestion::OccupancyGate) and
//! [`TieredRetention`](congestion::TieredRetention), that throttle
//! admission by buffer occupancy.
//!
//! The paper's own policy, SDSRP, implements this same trait from the
//! `sdsrp-core` crate.
//!
//! Admission control (Algorithm 1's drop step, generalised to
//! heterogeneous message sizes) is implemented once in
//! [`policy::plan_admission`] and shared by every policy.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod congestion;
pub mod copies;
pub mod fifo;
pub mod knapsack;
pub mod mofo;
pub mod policy;
pub mod random;
pub mod ttl;
pub mod view;

pub use policy::{
    plan_admission, plan_admission_with, AdmissionPlan, BufferPolicy, EvictionScratch,
};
pub use view::MessageView;
