//! Random scheduling/drop — the "no policy" floor for ablations.
//!
//! Each ranking call assigns a fresh pseudo-random priority derived from
//! the policy's own deterministic RNG stream, so whole simulation runs
//! stay reproducible.

use crate::policy::BufferPolicy;
use crate::view::MessageView;
use dtn_core::time::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniformly random priorities (both scheduling and dropping).
#[derive(Debug)]
pub struct RandomDrop {
    rng: StdRng,
}

impl RandomDrop {
    /// Creates the policy over its own RNG stream.
    pub fn new(rng: StdRng) -> Self {
        RandomDrop { rng }
    }
}

impl BufferPolicy for RandomDrop {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn send_priority(&mut self, _now: SimTime, _msg: &MessageView<'_>) -> f64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::schedule_order;
    use crate::view::TestMessage;
    use dtn_core::rng::{stream_rng, streams};

    #[test]
    fn produces_some_permutation() {
        let mut p = RandomDrop::new(stream_rng(1, streams::BUFFER));
        let msgs: Vec<TestMessage> = (0..5).map(TestMessage::sample).collect();
        let views: Vec<_> = msgs.iter().map(|m| m.view()).collect();
        let order = schedule_order(&mut p, SimTime::ZERO, &views);
        let mut ids: Vec<u64> = order.iter().map(|m| m.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut p = RandomDrop::new(stream_rng(7, streams::BUFFER));
            let msgs: Vec<TestMessage> = (0..8).map(TestMessage::sample).collect();
            let views: Vec<_> = msgs.iter().map(|m| m.view()).collect();
            schedule_order(&mut p, SimTime::ZERO, &views)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn orders_vary_across_calls() {
        let mut p = RandomDrop::new(stream_rng(7, streams::BUFFER));
        let msgs: Vec<TestMessage> = (0..8).map(TestMessage::sample).collect();
        let views: Vec<_> = msgs.iter().map(|m| m.view()).collect();
        let a = schedule_order(&mut p, SimTime::ZERO, &views);
        let b = schedule_order(&mut p, SimTime::ZERO, &views);
        // With 8! permutations a repeat is essentially impossible.
        assert_ne!(a, b);
    }
}
