//! FIFO and LIFO policies.
//!
//! FIFO is what the paper calls plain **"Spray and Wait"**: messages are
//! serviced in arrival order and the *oldest-received* message is dropped
//! on overflow (ONE's default queue mode). LIFO is included as an extra
//! ablation baseline.

use crate::policy::BufferPolicy;
use crate::view::MessageView;
use dtn_core::time::SimTime;

/// First-in-first-out: send oldest-received first, drop oldest-received
/// first.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl BufferPolicy for Fifo {
    fn name(&self) -> &'static str {
        "SprayAndWait-FIFO"
    }

    /// Oldest received = sent first, so priority falls with receive time.
    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        -msg.received.as_secs()
    }

    /// Oldest received = dropped first, so *keep* priority rises with
    /// receive time.
    fn keep_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        msg.received.as_secs()
    }
}

/// Last-in-first-out: send newest first, drop newest first.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lifo;

impl BufferPolicy for Lifo {
    fn name(&self) -> &'static str {
        "SprayAndWait-LIFO"
    }

    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        msg.received.as_secs()
    }

    fn keep_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        -msg.received.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{plan_admission, schedule_order, AdmissionPlan};
    use crate::view::TestMessage;
    use dtn_core::ids::MessageId;
    use dtn_core::units::Bytes;

    fn at(id: u64, received: f64) -> TestMessage {
        let mut m = TestMessage::sample(id);
        m.received = SimTime::from_secs(received);
        m
    }

    #[test]
    fn fifo_sends_oldest_first() {
        let mut p = Fifo;
        let msgs = [at(1, 50.0), at(2, 10.0), at(3, 30.0)];
        let views: Vec<_> = msgs.iter().map(|m| m.view()).collect();
        let order = schedule_order(&mut p, SimTime::from_secs(60.0), &views);
        assert_eq!(order, vec![MessageId(2), MessageId(3), MessageId(1)]);
    }

    #[test]
    fn fifo_drops_oldest_first() {
        let mut p = Fifo;
        let residents = [at(1, 50.0), at(2, 10.0)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = at(9, 60.0);
        let plan = plan_admission(
            &mut p,
            SimTime::from_secs(60.0),
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(2)]
            }
        );
    }

    #[test]
    fn lifo_is_the_mirror() {
        let mut p = Lifo;
        let msgs = [at(1, 50.0), at(2, 10.0)];
        let views: Vec<_> = msgs.iter().map(|m| m.view()).collect();
        let order = schedule_order(&mut p, SimTime::from_secs(60.0), &views);
        assert_eq!(order, vec![MessageId(1), MessageId(2)]);
        // Newest incoming is itself dropped first under LIFO.
        let incoming = at(9, 60.0);
        let plan = plan_admission(
            &mut p,
            SimTime::from_secs(60.0),
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);
    }
}
