//! The read-only view of a buffered message that policies rank on.

use dtn_core::ids::{MessageId, NodeId};
use dtn_core::time::{SimDuration, SimTime};
use dtn_core::units::Bytes;

/// Everything a buffer policy may inspect about one buffered message
/// copy. Borrowed from the owning node's buffer for the duration of one
/// ranking call.
///
/// Field names follow the paper's Table I notation where applicable.
#[derive(Debug, Clone, Copy)]
pub struct MessageView<'a> {
    /// Message id (shared by every copy of the message).
    pub id: MessageId,
    /// Payload size.
    pub size: Bytes,
    /// Source node.
    pub source: NodeId,
    /// Destination node.
    pub destination: NodeId,
    /// When the message was generated at the source.
    pub created: SimTime,
    /// When this node received its copy.
    pub received: SimTime,
    /// Initial time-to-live (`TTL_i`).
    pub initial_ttl: SimDuration,
    /// Remaining time-to-live at `now` (`R_i`).
    pub remaining_ttl: SimDuration,
    /// Copy tokens held by this node (`C_i`). In binary Spray-and-Wait a
    /// node in the wait phase holds exactly 1.
    pub copies: u32,
    /// Copy tokens the source started with (`C`, the initial copies
    /// number / spray budget `L`).
    pub initial_copies: u32,
    /// Hops this copy travelled from the source.
    pub hops: u32,
    /// Times this node has forwarded/replicated this message (MOFO).
    pub forward_count: u32,
    /// Timestamps of every binary-spray event along this copy's path,
    /// oldest first (paper Fig. 6; input to the Eq. 15 `m_i` estimator).
    pub spray_times: &'a [SimTime],
    /// Oracle data (global-knowledge ablations only): number of nodes
    /// that have seen the message excluding the source (`m_i`).
    pub oracle_seen: Option<u32>,
    /// Oracle data: number of nodes currently holding a copy (`n_i`).
    pub oracle_holders: Option<u32>,
}

impl<'a> MessageView<'a> {
    /// Elapsed time since generation (`T_i = TTL_i - R_i`).
    pub fn elapsed(&self) -> SimDuration {
        self.initial_ttl - self.remaining_ttl
    }

    /// Fraction of lifetime remaining, `R_i / TTL_i` in `[0, 1]`.
    pub fn ttl_fraction(&self) -> f64 {
        let init = self.initial_ttl.as_secs();
        if init <= 0.0 {
            0.0
        } else {
            (self.remaining_ttl.as_secs() / init).clamp(0.0, 1.0)
        }
    }

    /// Fraction of copy tokens remaining, `C_i / C` in `(0, 1]`.
    pub fn copies_fraction(&self) -> f64 {
        if self.initial_copies == 0 {
            0.0
        } else {
            (self.copies as f64 / self.initial_copies as f64).clamp(0.0, 1.0)
        }
    }

    /// True once the TTL has run out.
    pub fn expired(&self) -> bool {
        self.remaining_ttl.as_secs() <= 0.0
    }
}

/// A convenience owned builder for tests (policies only ever see the
/// borrowed view).
#[derive(Debug, Clone)]
pub struct TestMessage {
    /// Backing storage for spray timestamps.
    pub spray_times: Vec<SimTime>,
    /// All scalar fields.
    pub id: MessageId,
    /// Payload size.
    pub size: Bytes,
    /// Source node.
    pub source: NodeId,
    /// Destination node.
    pub destination: NodeId,
    /// Generation time.
    pub created: SimTime,
    /// Receive time at this node.
    pub received: SimTime,
    /// Initial TTL.
    pub initial_ttl: SimDuration,
    /// Remaining TTL.
    pub remaining_ttl: SimDuration,
    /// Copies held.
    pub copies: u32,
    /// Initial copies.
    pub initial_copies: u32,
    /// Hop count.
    pub hops: u32,
    /// Forward count.
    pub forward_count: u32,
    /// Oracle `m_i`.
    pub oracle_seen: Option<u32>,
    /// Oracle `n_i`.
    pub oracle_holders: Option<u32>,
}

impl TestMessage {
    /// A plausible default message for unit tests.
    pub fn sample(id: u64) -> Self {
        TestMessage {
            spray_times: Vec::new(),
            id: MessageId(id),
            size: Bytes::from_mb(0.5),
            source: NodeId(0),
            destination: NodeId(1),
            created: SimTime::ZERO,
            received: SimTime::ZERO,
            initial_ttl: SimDuration::from_mins(300.0),
            remaining_ttl: SimDuration::from_mins(300.0),
            copies: 16,
            initial_copies: 32,
            hops: 1,
            forward_count: 0,
            oracle_seen: None,
            oracle_holders: None,
        }
    }

    /// Borrows as the policy-facing view.
    pub fn view(&self) -> MessageView<'_> {
        MessageView {
            id: self.id,
            size: self.size,
            source: self.source,
            destination: self.destination,
            created: self.created,
            received: self.received,
            initial_ttl: self.initial_ttl,
            remaining_ttl: self.remaining_ttl,
            copies: self.copies,
            initial_copies: self.initial_copies,
            hops: self.hops,
            forward_count: self.forward_count,
            spray_times: &self.spray_times,
            oracle_seen: self.oracle_seen,
            oracle_holders: self.oracle_holders,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let mut m = TestMessage::sample(1);
        m.initial_ttl = SimDuration::from_secs(100.0);
        m.remaining_ttl = SimDuration::from_secs(25.0);
        m.copies = 8;
        m.initial_copies = 32;
        let v = m.view();
        assert_eq!(v.elapsed().as_secs(), 75.0);
        assert_eq!(v.ttl_fraction(), 0.25);
        assert_eq!(v.copies_fraction(), 0.25);
        assert!(!v.expired());
    }

    #[test]
    fn expiry_and_clamping() {
        let mut m = TestMessage::sample(2);
        m.remaining_ttl = SimDuration::from_secs(0.0);
        assert!(m.view().expired());
        m.remaining_ttl = SimDuration::from_secs(-5.0);
        assert!(m.view().expired());
        assert_eq!(m.view().ttl_fraction(), 0.0);
    }

    #[test]
    fn degenerate_denominators() {
        let mut m = TestMessage::sample(3);
        m.initial_copies = 0;
        assert_eq!(m.view().copies_fraction(), 0.0);
        m.initial_ttl = SimDuration::from_secs(0.0);
        assert_eq!(m.view().ttl_fraction(), 0.0);
    }
}
