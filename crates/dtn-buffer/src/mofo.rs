//! MOFO — "evict most forwarded first" (Lindgren & Phanse).
//!
//! A message this node has already replicated many times has had its
//! chance; on overflow it is evicted before messages that were never
//! forwarded. Scheduling stays FIFO. Included as a literature baseline
//! for the ablation benches.

use crate::policy::BufferPolicy;
use crate::view::MessageView;
use dtn_core::time::SimTime;

/// Evict-most-forwarded-first; FIFO scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mofo;

impl BufferPolicy for Mofo {
    fn name(&self) -> &'static str {
        "MOFO"
    }

    /// FIFO service order.
    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        -msg.received.as_secs()
    }

    /// Most-forwarded evicted first; ties fall back to oldest-received
    /// (encoded as a small fractional bias so the integer forward count
    /// dominates).
    fn keep_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        -(msg.forward_count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{plan_admission, AdmissionPlan};
    use crate::view::TestMessage;
    use dtn_core::ids::MessageId;
    use dtn_core::units::Bytes;

    fn forwarded(id: u64, n: u32) -> TestMessage {
        let mut m = TestMessage::sample(id);
        m.forward_count = n;
        m
    }

    #[test]
    fn evicts_most_forwarded() {
        let mut p = Mofo;
        let residents = [forwarded(1, 5), forwarded(2, 0), forwarded(3, 2)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = forwarded(9, 0);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(1)]
            }
        );
    }

    #[test]
    fn never_forwarded_incoming_beats_forwarded_residents() {
        let mut p = Mofo;
        let residents = [forwarded(1, 1)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = forwarded(9, 0);
        assert!(matches!(
            plan_admission(
                &mut p,
                SimTime::ZERO,
                &incoming.view(),
                &views,
                Bytes::ZERO,
                Bytes::from_mb(0.5),
            ),
            AdmissionPlan::Admit { .. }
        ));
    }

    #[test]
    fn forwarded_incoming_rejected_against_fresh_residents() {
        let mut p = Mofo;
        let residents = [forwarded(1, 0)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = forwarded(9, 3);
        assert_eq!(
            plan_admission(
                &mut p,
                SimTime::ZERO,
                &incoming.view(),
                &views,
                Bytes::ZERO,
                Bytes::from_mb(0.5),
            ),
            AdmissionPlan::RejectIncoming
        );
    }
}
