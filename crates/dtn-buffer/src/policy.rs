//! The buffer-policy trait and the shared admission/eviction algorithm.

use crate::view::MessageView;
use dtn_core::ids::{MessageId, NodeId};
use dtn_core::time::SimTime;
use dtn_core::units::Bytes;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A buffer-management strategy: ranks buffered messages for scheduling
/// (send order) and for dropping, and may maintain distributed state via
/// the contact/gossip hooks.
///
/// Conventions:
///
/// * **Higher [`send_priority`](Self::send_priority) replicates first**
///   when a contact comes up (paper Algorithm 1, line 7).
/// * **Lower [`keep_priority`](Self::keep_priority) is evicted first**
///   when the buffer overflows (Algorithm 1, line 12). For most policies
///   the two rankings coincide; FIFO is the classic exception (send
///   oldest first *and* drop oldest first).
///
/// Ranking methods take `&mut self` because some policies consult
/// internal state (estimators, RNGs); they must not have side effects
/// that change the ranking of other messages within the same decision.
pub trait BufferPolicy: Send {
    /// Human-readable policy name (used in reports and plots).
    fn name(&self) -> &'static str;

    /// Scheduling priority: the message with the highest value is
    /// replicated first.
    fn send_priority(&mut self, now: SimTime, msg: &MessageView<'_>) -> f64;

    /// Retention priority: the message with the lowest value is dropped
    /// first on overflow. Defaults to the scheduling priority.
    fn keep_priority(&mut self, now: SimTime, msg: &MessageView<'_>) -> f64 {
        self.send_priority(now, msg)
    }

    /// Whether this node is willing to receive `msg` at all (SDSRP
    /// refuses messages in its dropped list). Default: accept.
    fn accepts(&mut self, _now: SimTime, _msg: MessageId) -> bool {
        true
    }

    /// Called when a contact to `peer` comes up (before any transfers).
    fn on_contact_up(&mut self, _now: SimTime, _peer: NodeId) {}

    /// Called when a contact goes down.
    fn on_contact_down(&mut self, _now: SimTime, _peer: NodeId) {}

    /// Called when this node *drops* a buffered message due to overflow
    /// (not on TTL expiry and not on delivery).
    fn on_drop(&mut self, _now: SimTime, _msg: MessageId) {}

    /// Called when the owning node crashes and reboots cold (fault
    /// injection): all policy-internal distributed state — estimators,
    /// dropped lists, memos — must return to its post-construction
    /// state. Default: no-op (stateless policies have nothing to lose).
    fn on_node_reset(&mut self, _now: SimTime) {}

    /// Serialised control-plane state to offer a newly-met peer (e.g.
    /// SDSRP's dropped-list records). `None` means nothing to exchange.
    fn export_gossip(&mut self, _now: SimTime) -> Option<Vec<u8>> {
        None
    }

    /// Ingest a peer's gossip produced by
    /// [`export_gossip`](Self::export_gossip) of the *same* policy type.
    /// Implementations must tolerate garbage (version skew) gracefully.
    /// Returns the number of records adopted from the peer (telemetry;
    /// `0` when nothing changed).
    fn import_gossip(&mut self, _now: SimTime, _bytes: &[u8]) -> usize {
        0
    }

    /// Optional whole-buffer admission override. Policies that decide
    /// set-wise (e.g. the knapsack strategy) return `Some(plan)`;
    /// `None` (the default) falls back to the greedy Algorithm-1 rule
    /// in [`plan_admission`].
    fn admission_override(
        &mut self,
        _now: SimTime,
        _incoming: &MessageView<'_>,
        _residents: &[MessageView<'_>],
        _free: Bytes,
        _capacity: Bytes,
    ) -> Option<AdmissionPlan> {
        None
    }

    /// Enables or disables the policy's internal priority memoisation,
    /// when it has one (SDSRP). The cached and uncached paths must rank
    /// identically — the differential regression suite runs scenarios
    /// both ways and asserts bit-identical fingerprints. Default: no-op
    /// (stateless policies have nothing to cache).
    fn set_priority_cache(&mut self, _enabled: bool) {}

    /// Hit/miss counters of the policy's priority memoisation, when it
    /// has one. Default: `None`.
    fn priority_cache_stats(&self) -> Option<PriorityCacheStats> {
        None
    }
}

/// Aggregate counters of a policy's priority memoisation (see
/// [`BufferPolicy::priority_cache_stats`]).
///
/// Requests are classified three ways: `hits` returned a stored value
/// verbatim (same evaluation instant), `incremental` finished an
/// evaluation from cached partial results (a new instant whose changed
/// inputs are all pure functions of time), and `misses` rebuilt the
/// entry from scratch. Paths that never consult the memo — the cache
/// disabled, or a policy without one — count in none of the buckets, so
/// an uncached run reports all-zero stats rather than a wall of fake
/// misses.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PriorityCacheStats {
    /// Ranking requests answered verbatim from the memo.
    pub hits: u64,
    /// Ranking requests completed from cached partial results.
    pub incremental: u64,
    /// Ranking requests that had to rebuild the entry from scratch.
    pub misses: u64,
}

impl PriorityCacheStats {
    /// Fraction of requests the memo served — verbatim or by finishing
    /// a cached partial evaluation (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.incremental + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.incremental) as f64 / total as f64
        }
    }

    /// Component-wise sum (for aggregating across nodes).
    pub fn merge(&mut self, other: PriorityCacheStats) {
        self.hits += other.hits;
        self.incremental += other.incremental;
        self.misses += other.misses;
    }
}

/// Heap key for lazy lowest-keep-priority selection: orders ascending by
/// `(priority, id)` — the exact total order the former full
/// `sort_by` used, so eviction sequences are unchanged — and is consumed
/// through `Reverse` so a max-heap pops the cheapest victim first.
///
/// The `Ord` impl panics on NaN priorities, like the comparator it
/// replaces: a NaN ranking is a policy bug, not an ordering choice.
#[derive(Debug, Clone, Copy)]
pub struct EvictionRank {
    /// The policy's retention priority (lower is evicted first).
    pub priority: f64,
    /// Message id (ascending tie-break: older id evicted first).
    pub id: MessageId,
    /// Message size, carried along for the free-space accounting.
    pub size: Bytes,
}

impl PartialEq for EvictionRank {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for EvictionRank {}

impl PartialOrd for EvictionRank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EvictionRank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .expect("NaN priority")
            .then(self.id.cmp(&other.id))
    }
}

/// Outcome of the overflow algorithm for one incoming message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionPlan {
    /// The message fits (possibly after the listed evictions).
    Admit {
        /// Resident messages to evict, in eviction order.
        evict: Vec<MessageId>,
    },
    /// The incoming message ranks below the would-be victims: refuse it
    /// and keep the buffer unchanged.
    RejectIncoming,
}

/// Reusable backing storage for the amortized top-k victim selection.
///
/// Every admission decision still re-ranks the candidates from the
/// caller's single `now` snapshot — rankings are *never* reused across
/// instants, only the heap's allocation is. Holding one scratch per
/// simulation world turns the former per-decision `Vec` allocation into
/// a clear-and-refill of memory that is already hot in cache.
#[derive(Debug, Default)]
pub struct EvictionScratch {
    ranked: Vec<Reverse<EvictionRank>>,
}

impl EvictionScratch {
    /// Lazy lowest-first selection without a reject rule (forced
    /// admission of newly generated messages): heapifies `candidates`
    /// in O(B), then pops ascending `(keep priority, id)` victims into
    /// `victims` until `free` covers `needed` or the candidates run
    /// out. Returns the resulting free space.
    pub fn select_victims(
        &mut self,
        candidates: impl Iterator<Item = EvictionRank>,
        mut free: Bytes,
        needed: Bytes,
        victims: &mut Vec<(MessageId, Bytes)>,
    ) -> Bytes {
        let mut backing = std::mem::take(&mut self.ranked);
        backing.clear();
        backing.extend(candidates.map(Reverse));
        let mut ranked = BinaryHeap::from(backing);
        while free < needed {
            let Some(Reverse(v)) = ranked.pop() else {
                break;
            };
            victims.push((v.id, v.size));
            free += v.size;
        }
        self.ranked = ranked.into_vec();
        free
    }
}

/// The paper's drop rule (Algorithm 1, lines 8-12), generalised to
/// heterogeneous sizes: evict the lowest-`keep_priority` resident until
/// the newcomer fits, but if at any point the newcomer itself has the
/// lowest priority among the remaining candidates, reject it instead and
/// evict nothing.
///
/// `free` is the buffer space currently available; `residents` the
/// views of messages currently buffered. Convenience wrapper over
/// [`plan_admission_with`] paying a fresh scratch allocation; hot
/// callers keep an [`EvictionScratch`] alive instead.
pub fn plan_admission(
    policy: &mut dyn BufferPolicy,
    now: SimTime,
    incoming: &MessageView<'_>,
    residents: &[MessageView<'_>],
    free: Bytes,
    capacity: Bytes,
) -> AdmissionPlan {
    let mut scratch = EvictionScratch::default();
    plan_admission_with(
        policy,
        now,
        incoming,
        residents,
        free,
        capacity,
        &mut scratch,
    )
}

/// [`plan_admission`] with caller-provided scratch so the per-decision
/// heap allocation is amortized across admissions.
///
/// All rankings are taken at the single `now` snapshot passed in —
/// incoming and every resident alike — so an entry memoised at an
/// earlier tick can never outrank a fresher one (stale-TTL discipline).
#[allow(clippy::too_many_arguments)]
pub fn plan_admission_with(
    policy: &mut dyn BufferPolicy,
    now: SimTime,
    incoming: &MessageView<'_>,
    residents: &[MessageView<'_>],
    free: Bytes,
    capacity: Bytes,
    scratch: &mut EvictionScratch,
) -> AdmissionPlan {
    if incoming.size > capacity {
        // Can never fit, even with an empty buffer.
        return AdmissionPlan::RejectIncoming;
    }
    if let Some(plan) = policy.admission_override(now, incoming, residents, free, capacity) {
        return plan;
    }
    if incoming.size <= free {
        return AdmissionPlan::Admit { evict: Vec::new() };
    }

    let incoming_priority = policy.keep_priority(now, incoming);
    // Lazy select-k instead of a full sort: heapify is O(B) and only the
    // k victims actually popped cost O(log B) each, versus the former
    // O(B log B) `sort_by` over every resident. [`EvictionRank`] orders
    // ascending by `(keep priority, id)` — the same total order the sort
    // used (ties evict the older message id first) — so the victim
    // sequence is bit-identical.
    let mut backing = std::mem::take(&mut scratch.ranked);
    backing.clear();
    backing.extend(residents.iter().map(|m| {
        Reverse(EvictionRank {
            priority: policy.keep_priority(now, m),
            id: m.id,
            size: m.size,
        })
    }));
    let mut ranked = BinaryHeap::from(backing);

    let mut evict = Vec::new();
    let mut freed = free;
    let plan = loop {
        if freed >= incoming.size {
            break AdmissionPlan::Admit { evict };
        }
        let Some(Reverse(victim)) = ranked.pop() else {
            // Even evicting everything cheaper than the newcomer is not
            // enough.
            break AdmissionPlan::RejectIncoming;
        };
        if incoming_priority <= victim.priority {
            // The newcomer is now the lowest-priority candidate: refuse
            // it (Algorithm 1 line 10-11 with the comparison inverted).
            break AdmissionPlan::RejectIncoming;
        }
        evict.push(victim.id);
        freed += victim.size;
    };
    scratch.ranked = ranked.into_vec();
    plan
}

/// Sorts message ids by descending send priority (scheduling order for a
/// fresh contact). Ties broken by ascending id for determinism.
pub fn schedule_order(
    policy: &mut dyn BufferPolicy,
    now: SimTime,
    msgs: &[MessageView<'_>],
) -> Vec<MessageId> {
    let mut ranked: Vec<(f64, MessageId)> = msgs
        .iter()
        .map(|m| (policy.send_priority(now, m), m.id))
        .collect();
    ranked.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("NaN priority")
            .then(a.1.cmp(&b.1))
    });
    ranked.into_iter().map(|(_, id)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::TestMessage;

    /// Keep/send priority equal to the message id (higher id = higher
    /// priority) — a transparent policy for exercising the algorithms.
    struct ById;
    impl BufferPolicy for ById {
        fn name(&self) -> &'static str {
            "by-id"
        }
        fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
            msg.id.0 as f64
        }
    }

    fn msgs(ids: &[u64]) -> Vec<TestMessage> {
        ids.iter().map(|&i| TestMessage::sample(i)).collect()
    }

    #[test]
    fn admit_when_space_available() {
        let mut p = ById;
        let incoming = TestMessage::sample(10);
        let residents = msgs(&[1, 2]);
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::from_mb(1.0),
            Bytes::from_mb(2.0),
        );
        assert_eq!(plan, AdmissionPlan::Admit { evict: vec![] });
    }

    #[test]
    fn evicts_lowest_priority_first() {
        let mut p = ById;
        let incoming = TestMessage::sample(10); // 0.5 MB
        let residents = msgs(&[3, 1, 2]);
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        // No free space: must evict exactly one 0.5 MB message -> id 1.
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.5),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(1)]
            }
        );
    }

    #[test]
    fn rejects_incoming_when_it_ranks_lowest() {
        let mut p = ById;
        let incoming = TestMessage::sample(0); // lowest possible priority
        let residents = msgs(&[1, 2, 3]);
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.5),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);
    }

    #[test]
    fn evicts_multiple_small_messages_for_large_incoming() {
        let mut p = ById;
        let mut incoming = TestMessage::sample(10);
        incoming.size = Bytes::from_mb(1.0);
        let mut residents = msgs(&[1, 2, 3]);
        for r in &mut residents {
            r.size = Bytes::from_mb(0.5);
        }
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.5),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(1), MessageId(2)]
            }
        );
    }

    #[test]
    fn rejects_message_larger_than_capacity() {
        let mut p = ById;
        let mut incoming = TestMessage::sample(10);
        incoming.size = Bytes::from_mb(3.0);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &[],
            Bytes::from_mb(2.5),
            Bytes::from_mb(2.5),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);
    }

    #[test]
    fn rejects_when_evictable_mass_insufficient() {
        // Incoming (high priority) needs 1 MB; only one 0.4 MB resident
        // exists and capacity is 1.2 MB with 0.5 free: evicting all
        // residents frees 0.9 < 1.0 -> reject.
        let mut p = ById;
        let mut incoming = TestMessage::sample(10);
        incoming.size = Bytes::from_mb(1.0);
        let mut resident = TestMessage::sample(1);
        resident.size = Bytes::from_mb(0.4);
        let views = vec![resident.view()];
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::from_mb(0.5),
            Bytes::from_mb(1.2),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);
    }

    #[test]
    fn equal_priority_favours_resident() {
        // Incoming ties with the lowest resident: paper keeps residents
        // (drop the newcomer only when strictly lower? Algorithm 1 drops
        // the newcomer when Priority_m < Priority_l; on a tie the
        // resident wins).
        let mut p = ById;
        let incoming = TestMessage::sample(1);
        let residents = msgs(&[1, 5]);
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);
    }

    #[test]
    fn schedule_order_is_descending_priority() {
        let mut p = ById;
        let residents = msgs(&[2, 9, 4]);
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let order = schedule_order(&mut p, SimTime::ZERO, &views);
        assert_eq!(order, vec![MessageId(9), MessageId(4), MessageId(2)]);
    }

    #[test]
    fn default_hooks_are_noops() {
        let mut p = ById;
        assert!(p.accepts(SimTime::ZERO, MessageId(1)));
        assert_eq!(p.export_gossip(SimTime::ZERO), None);
        assert_eq!(p.import_gossip(SimTime::ZERO, b"garbage"), 0);
        p.on_contact_up(SimTime::ZERO, NodeId(1));
        p.on_contact_down(SimTime::ZERO, NodeId(1));
        p.on_drop(SimTime::ZERO, MessageId(1));
        p.on_node_reset(SimTime::ZERO);
    }
}
