//! Knapsack-based scheduling and drop — the authors' companion strategy
//! (Wang, Yang & Wu, *"A Knapsack-based Message Scheduling and Drop
//! Strategy for Delay-tolerant Networks"*, EWSN 2015, cited as \[11\] by
//! the SDSRP paper).
//!
//! Where Algorithm 1 evicts greedily one-victim-at-a-time, the knapsack
//! strategy decides **set-wise**: on overflow it keeps the subset of
//! {residents + newcomer} that maximises total utility subject to the
//! buffer capacity — the classic 0/1 knapsack. With the paper's uniform
//! 0.5 MB messages the two coincide; with heterogeneous message sizes
//! (`ScenarioConfig::message_size_max`) the knapsack solution can keep
//! two small valuable messages instead of one large mediocre one.
//!
//! Utility here is the remaining-lifetime fraction (the SAW-O ranking);
//! the DP runs over a fixed byte granularity to keep the table small.

use crate::policy::{AdmissionPlan, BufferPolicy};
use crate::view::MessageView;
use dtn_core::ids::MessageId;
use dtn_core::time::SimTime;
use dtn_core::units::Bytes;

/// Byte granularity of the DP table. 50 kB keeps a 5 MB buffer at 100
/// weight units; message sizes are rounded **up** so the solution never
/// overcommits.
const GRANULE: u64 = 50_000;

/// The knapsack scheduling/drop policy (see module docs).
///
/// Holds reusable DP scratch: overflow decisions run once per admission
/// attempt on the hot path, and re-allocating an `O(n * cap)` table (and
/// the item list) each time showed up as allocator traffic in profiles.
#[derive(Debug, Clone, Default)]
pub struct Knapsack {
    /// Flattened `(n + 1) x (cap_units + 1)` DP table, reused across calls.
    table: Vec<f64>,
    /// Item list `(value, weight, id)`, reused across calls.
    items: Vec<(f64, usize, MessageId)>,
}

impl Knapsack {
    fn value(msg: &MessageView<'_>) -> f64 {
        // Remaining-lifetime fraction, biased slightly by copies so the
        // value is strictly positive for live messages and spray-phase
        // copies keep a small edge.
        msg.ttl_fraction() + 0.05 * msg.copies_fraction()
    }

    fn weight(size: Bytes) -> usize {
        size.as_u64().div_ceil(GRANULE) as usize
    }

    /// Solves 0/1 knapsack over `items = [(value, weight, id)]` with
    /// total weight `cap_units`, returning the kept ids.
    fn solve(&mut self, items: &[(f64, usize, MessageId)], cap_units: usize) -> Vec<MessageId> {
        // Layer-by-layer DP with full reconstruction, on the reusable
        // flat table (row stride `cap_units + 1`). Buffers hold at most
        // a few dozen messages and capacities a few hundred units, so
        // the O(n * cap) table is tiny — but it is rebuilt per
        // overflow, hence the scratch.
        let n = items.len();
        let stride = cap_units + 1;
        self.table.clear();
        self.table.resize((n + 1) * stride, 0.0);
        for i in 1..=n {
            let (v, w, _) = items[i - 1];
            for cap in 0..=cap_units {
                let without = self.table[(i - 1) * stride + cap];
                let with = if w <= cap {
                    self.table[(i - 1) * stride + (cap - w)] + v
                } else {
                    f64::NEG_INFINITY
                };
                self.table[i * stride + cap] = without.max(with);
            }
        }
        let mut kept = Vec::new();
        let mut cap = cap_units;
        for i in (1..=n).rev() {
            // Item i was taken iff its layer improved on the previous
            // one at this capacity.
            if (self.table[i * stride + cap] - self.table[(i - 1) * stride + cap]).abs() > 1e-15 {
                let (_, w, id) = items[i - 1];
                kept.push(id);
                cap -= w;
            }
        }
        kept
    }
}

impl BufferPolicy for Knapsack {
    fn name(&self) -> &'static str {
        "Knapsack"
    }

    /// Scheduling stays value-ordered (most valuable first).
    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        Self::value(msg)
    }

    fn admission_override(
        &mut self,
        _now: SimTime,
        incoming: &MessageView<'_>,
        residents: &[MessageView<'_>],
        _free: Bytes,
        capacity: Bytes,
    ) -> Option<AdmissionPlan> {
        let cap_units = (capacity.as_u64() / GRANULE) as usize;
        let mut items = std::mem::take(&mut self.items);
        items.clear();
        items.extend(
            residents
                .iter()
                .map(|m| (Self::value(m), Self::weight(m.size), m.id)),
        );
        items.push((
            Self::value(incoming),
            Self::weight(incoming.size),
            incoming.id,
        ));
        let kept = self.solve(&items, cap_units);
        self.items = items;
        if !kept.contains(&incoming.id) {
            return Some(AdmissionPlan::RejectIncoming);
        }
        let evict: Vec<MessageId> = residents
            .iter()
            .map(|m| m.id)
            .filter(|id| !kept.contains(id))
            .collect();
        Some(AdmissionPlan::Admit { evict })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::plan_admission;
    use crate::view::TestMessage;
    use dtn_core::time::SimDuration;

    fn msg(id: u64, mb: f64, ttl_frac: f64) -> TestMessage {
        let mut m = TestMessage::sample(id);
        m.size = Bytes::from_mb(mb);
        m.initial_ttl = SimDuration::from_secs(1000.0);
        m.remaining_ttl = SimDuration::from_secs(1000.0 * ttl_frac);
        m.copies = 0; // neutralise the copies bias for exact arithmetic
        m.initial_copies = 0;
        m
    }

    #[test]
    fn weight_rounds_up() {
        assert_eq!(Knapsack::weight(Bytes::new(1)), 1);
        assert_eq!(Knapsack::weight(Bytes::new(GRANULE)), 1);
        assert_eq!(Knapsack::weight(Bytes::new(GRANULE + 1)), 2);
        assert_eq!(Knapsack::weight(Bytes::from_mb(0.5)), 10);
    }

    #[test]
    fn solver_picks_optimal_subset() {
        // Capacity 10; items (value, weight): a=(6,5), b=(5,5), c=(9,10).
        // Optimal: {a, b} with value 11 > {c} with 9.
        let items = vec![
            (6.0, 5, MessageId(1)),
            (5.0, 5, MessageId(2)),
            (9.0, 10, MessageId(3)),
        ];
        let mut kept = Knapsack::default().solve(&items, 10);
        kept.sort();
        assert_eq!(kept, vec![MessageId(1), MessageId(2)]);
    }

    #[test]
    fn solver_empty_items() {
        assert!(Knapsack::default().solve(&[], 10).is_empty());
    }

    #[test]
    fn keeps_two_small_over_one_large() {
        // Buffer 1 MB holding one 1 MB message of mediocre value; two
        // 0.5 MB valuable messages arrive one after the other. Greedy
        // one-victim eviction with value ordering would also work here,
        // but the key case: the *large* resident must be evicted for the
        // first small newcomer even though a single eviction frees twice
        // what is needed.
        let mut p = Knapsack::default();
        let big = msg(1, 1.0, 0.3);
        let small = msg(2, 0.5, 0.9);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &small.view(),
            &[big.view()],
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(1)]
            }
        );
    }

    #[test]
    fn rejects_low_value_newcomer() {
        let mut p = Knapsack::default();
        let residents = [msg(1, 0.5, 0.8), msg(2, 0.5, 0.7)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = msg(9, 0.5, 0.1);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);
    }

    #[test]
    fn admits_into_free_space_without_evictions() {
        let mut p = Knapsack::default();
        let resident = msg(1, 0.5, 0.5);
        let incoming = msg(2, 0.5, 0.4);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &[resident.view()],
            Bytes::from_mb(0.5),
            Bytes::from_mb(1.0),
        );
        assert_eq!(plan, AdmissionPlan::Admit { evict: vec![] });
    }

    mod proptests {
        use super::super::*;
        use proptest::prelude::*;

        /// Exhaustive optimum by subset enumeration (≤ 10 items).
        fn brute_force(items: &[(f64, usize, MessageId)], cap: usize) -> f64 {
            let n = items.len();
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let (mut v, mut w) = (0.0, 0usize);
                for (i, item) in items.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        v += item.0;
                        w += item.1;
                    }
                }
                if w <= cap && v > best {
                    best = v;
                }
            }
            best
        }

        proptest! {
            /// The DP solution achieves exactly the brute-force optimum
            /// and never exceeds capacity.
            #[test]
            fn prop_dp_is_optimal(
                raw in prop::collection::vec((0.01f64..10.0, 1usize..15), 0..10),
                cap in 1usize..40,
            ) {
                let items: Vec<(f64, usize, MessageId)> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &(v, w))| (v, w, MessageId(i as u64)))
                    .collect();
                let kept = Knapsack::default().solve(&items, cap);
                let kept_value: f64 = items
                    .iter()
                    .filter(|(_, _, id)| kept.contains(id))
                    .map(|&(v, _, _)| v)
                    .sum();
                let kept_weight: usize = items
                    .iter()
                    .filter(|(_, _, id)| kept.contains(id))
                    .map(|&(_, w, _)| w)
                    .sum();
                prop_assert!(kept_weight <= cap, "overcommitted: {kept_weight} > {cap}");
                let optimum = brute_force(&items, cap);
                prop_assert!(
                    (kept_value - optimum).abs() < 1e-9,
                    "DP value {kept_value} != optimum {optimum}"
                );
            }
        }
    }

    #[test]
    fn heterogeneous_sizes_beat_greedy() {
        // Capacity 1.5 MB. Residents: one 1 MB message with value 0.6.
        // Newcomer: 1 MB with value 0.5. Greedy would reject (newcomer
        // value < resident). Knapsack agrees here — but if the newcomer
        // is 0.5 MB with value 0.5, it simply fits alongside after no
        // eviction. The set-wise win: resident 1 MB @ 0.4 vs two
        // messages {0.9 MB @ 0.35 incoming + existing 0.5 MB @ 0.3}.
        let mut p = Knapsack::default();
        let big_mediocre = msg(1, 1.0, 0.4);
        let small_ok = msg(2, 0.5, 0.3);
        let views = vec![big_mediocre.view(), small_ok.view()];
        let incoming = msg(3, 0.9, 0.35);
        // Capacity 1.5 MB: {1, 2} uses 1.5 -> free 0. Options:
        // keep {1,2} value 0.7 (reject 3); keep {2,3} value 0.65;
        // keep {1,3}: 1.9 MB doesn't fit. So optimal rejects.
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.5),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);

        // Raise the newcomer's value so {2, 3} wins: evict only 1.
        let incoming = msg(3, 0.9, 0.45);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.5),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(1)]
            }
        );
    }
}
