//! Congestion-adaptive policies (extensions, after the Congestion Aware
//! Spray and Wait line of work).
//!
//! Both policies rank messages by remaining-lifetime like
//! [`TtlRatio`](crate::ttl::TtlRatio) but react to buffer *occupancy*,
//! which the paper's strategies ignore:
//!
//! * [`OccupancyGate`] refuses every newcomer once buffer occupancy
//!   already exceeds a threshold — back-pressure at the admission step
//!   instead of churning the eviction heap.
//! * [`TieredRetention`] bins messages into remaining-lifetime tiers and
//!   purges stale tiers first, most-spread message first within a tier;
//!   above the occupancy threshold it refuses newcomers that would land
//!   in the stalest tier.
//!
//! Every priority either policy returns is finite for *any* view — including
//! zero/negative remaining lifetime under clock skew — because the
//! shared admission machinery panics on NaN rankings.

use crate::policy::{AdmissionPlan, BufferPolicy};
use crate::view::MessageView;
use dtn_core::time::SimTime;
use dtn_core::units::Bytes;

/// Current buffer occupancy `used / capacity`, in `[0, 1]` — measured
/// *before* the pending admission, so a threshold of exactly 1.0 can
/// never be exceeded (a full buffer is 1.0, not above it). A
/// zero-capacity buffer counts as fully congested.
fn occupancy(free: Bytes, capacity: Bytes) -> f64 {
    if capacity == Bytes::ZERO {
        return 1.0;
    }
    let used = capacity.saturating_sub(free);
    used.as_u64() as f64 / capacity.as_u64() as f64
}

/// [`MessageView::ttl_fraction`] with a totality guard: non-finite
/// duration arithmetic (clock-skew pathologies) degrades to 0 — treat
/// the message as expired — instead of leaking NaN into the rankings.
fn finite_ttl_fraction(msg: &MessageView<'_>) -> f64 {
    let f = msg.ttl_fraction();
    if f.is_finite() {
        f
    } else {
        0.0
    }
}

/// Occupancy-gated admission: TTL-ratio ranking plus an admission
/// override that rejects every newcomer while occupancy is already
/// above `threshold`. Occupancy never exceeds 1.0, so with
/// `threshold = 1.0` the gate never fires and the policy degenerates to
/// plain [`TtlRatio`](crate::ttl::TtlRatio) — the natural reference
/// point for the occupancy sweep.
#[derive(Debug, Clone, Copy)]
pub struct OccupancyGate {
    threshold: f64,
}

impl OccupancyGate {
    /// Creates the gate.
    ///
    /// # Panics
    /// Panics unless `threshold` is in `(0, 1]`.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "occupancy threshold must be in (0, 1]"
        );
        OccupancyGate { threshold }
    }

    /// The configured occupancy threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl BufferPolicy for OccupancyGate {
    fn name(&self) -> &'static str {
        "OccupancyGate"
    }

    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        finite_ttl_fraction(msg)
    }

    fn admission_override(
        &mut self,
        _now: SimTime,
        _incoming: &MessageView<'_>,
        _residents: &[MessageView<'_>],
        free: Bytes,
        capacity: Bytes,
    ) -> Option<AdmissionPlan> {
        if occupancy(free, capacity) > self.threshold {
            Some(AdmissionPlan::RejectIncoming)
        } else {
            // Below the gate: fall through to the shared Algorithm-1
            // greedy rule with the TTL-ratio ranking.
            None
        }
    }
}

/// Tiered retention with priority-based purging: the remaining-lifetime
/// fraction is quantised into `tiers` bins and eviction empties the
/// stalest tier first (within a tier, the most-spread message — fewest
/// copy tokens left — purges first). Above the occupancy `threshold`,
/// newcomers that would land in the stalest tier are refused outright —
/// congested buffers stop accepting messages that would be first
/// against the wall anyway.
#[derive(Debug, Clone, Copy)]
pub struct TieredRetention {
    tiers: u32,
    threshold: f64,
}

impl TieredRetention {
    /// Creates the policy.
    ///
    /// # Panics
    /// Panics unless `tiers >= 1` and `threshold` is in `(0, 1]`.
    pub fn new(tiers: u32, threshold: f64) -> Self {
        assert!(tiers >= 1, "need at least one tier");
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "occupancy threshold must be in (0, 1]"
        );
        TieredRetention { tiers, threshold }
    }

    /// Remaining-lifetime tier of `msg` in `0..tiers` (0 = stalest).
    fn tier(&self, msg: &MessageView<'_>) -> u32 {
        let f = finite_ttl_fraction(msg);
        ((f * self.tiers as f64) as u32).min(self.tiers - 1)
    }
}

impl BufferPolicy for TieredRetention {
    fn name(&self) -> &'static str {
        "TieredRetention"
    }

    /// Scheduling stays pure TTL-ratio: replicate the freshest first.
    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        finite_ttl_fraction(msg)
    }

    /// Retention is tier-dominant: `tier * 2 + copies_fraction`, so any
    /// message in a fresher tier strictly outranks every message in a
    /// staler one (the fraction term is ≤ 1 < 2). *Within* a tier the
    /// message with the fewest copy tokens left purges first — it has
    /// already spread, so other custodians still carry it — which is
    /// what distinguishes the policy from plain TTL-ratio ranking
    /// (lifetime alone would make the tiers an order-preserving
    /// relabelling).
    fn keep_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        let copies = msg.copies_fraction(); // total by construction
        self.tier(msg) as f64 * 2.0 + copies
    }

    fn admission_override(
        &mut self,
        _now: SimTime,
        incoming: &MessageView<'_>,
        _residents: &[MessageView<'_>],
        free: Bytes,
        capacity: Bytes,
    ) -> Option<AdmissionPlan> {
        if occupancy(free, capacity) > self.threshold && self.tier(incoming) == 0 {
            Some(AdmissionPlan::RejectIncoming)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{plan_admission, schedule_order};
    use crate::view::TestMessage;
    use dtn_core::ids::MessageId;
    use dtn_core::time::SimDuration;

    fn with_ttl(id: u64, remaining_mins: f64) -> TestMessage {
        let mut m = TestMessage::sample(id);
        m.remaining_ttl = SimDuration::from_mins(remaining_mins);
        m
    }

    #[test]
    fn gate_admits_below_threshold() {
        let mut p = OccupancyGate::new(0.8);
        let incoming = TestMessage::sample(1); // 0.5 MB
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &[],
            Bytes::from_mb(2.5),
            Bytes::from_mb(2.5),
        );
        // Empty buffer: occupancy 0 <= 0.8, gate stays open.
        assert_eq!(plan, AdmissionPlan::Admit { evict: vec![] });
    }

    #[test]
    fn gate_rejects_above_threshold_even_with_free_space() {
        let mut p = OccupancyGate::new(0.5);
        let incoming = TestMessage::sample(1); // 0.5 MB
        let residents = [TestMessage::sample(2), TestMessage::sample(3)]; // 1.0 MB used
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        // Occupancy 1.0 / 1.5 = 0.67 > 0.5 -> reject although the
        // newcomer would physically fit in the 0.5 MB of free space.
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::from_mb(0.5),
            Bytes::from_mb(1.5),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);
    }

    #[test]
    fn gate_at_one_never_fires() {
        // threshold = 1.0 behaves exactly like TtlRatio: the full
        // buffer falls through to the shared eviction rule and the
        // fresher newcomer displaces the stalest resident.
        let mut p = OccupancyGate::new(1.0);
        let residents = [with_ttl(1, 100.0), with_ttl(2, 10.0)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = with_ttl(9, 290.0);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(2)]
            }
        );
    }

    #[test]
    fn tiers_dominate_fractions_in_eviction() {
        // 300 min initial TTL, 4 tiers of 75 min. A message at 80 min
        // (tier 1) must outlive one at 74 min (tier 0) — but also a
        // *fresher-looking* tier boundary case: 74 min evicts before
        // 80 min even though both are stale.
        let mut p = TieredRetention::new(4, 1.0);
        let residents = [with_ttl(1, 80.0), with_ttl(2, 74.0)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = with_ttl(9, 200.0);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(2)]
            }
        );
    }

    #[test]
    fn within_a_tier_the_most_spread_message_purges_first() {
        // Same tier (both > 225 min of 300), different spread: the
        // message with fewer copy tokens left is evicted first — other
        // custodians still carry it. Pure TTL ranking would evict the
        // (staler) message 1 instead.
        let mut p = TieredRetention::new(4, 1.0);
        let mut spread = with_ttl(2, 280.0);
        spread.copies = 2; // of 32: widely spread
        let residents = [with_ttl(1, 240.0), spread];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = with_ttl(9, 290.0);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(2)]
            }
        );
    }

    #[test]
    fn tiered_send_order_is_ttl_ratio() {
        let mut p = TieredRetention::new(4, 1.0);
        let msgs = [with_ttl(1, 100.0), with_ttl(2, 250.0), with_ttl(3, 10.0)];
        let views: Vec<_> = msgs.iter().map(|m| m.view()).collect();
        let order = schedule_order(&mut p, SimTime::ZERO, &views);
        assert_eq!(order, vec![MessageId(2), MessageId(1), MessageId(3)]);
    }

    #[test]
    fn tiered_refuses_stale_newcomer_only_when_congested() {
        let mut p = TieredRetention::new(4, 0.5);
        let stale = with_ttl(9, 5.0); // tier 0
                                      // Uncongested: falls through (and the empty buffer admits).
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &stale.view(),
            &[],
            Bytes::from_mb(2.5),
            Bytes::from_mb(2.5),
        );
        assert_eq!(plan, AdmissionPlan::Admit { evict: vec![] });
        // Congested: the same stale newcomer is refused...
        let residents = [with_ttl(1, 200.0), with_ttl(2, 250.0)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &stale.view(),
            &views,
            Bytes::from_mb(0.5),
            Bytes::from_mb(1.5),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);
        // ...but a fresh newcomer still reaches the eviction rule.
        let fresh = with_ttl(8, 290.0);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &fresh.view(),
            &views,
            Bytes::from_mb(0.5),
            Bytes::from_mb(1.5),
        );
        assert_eq!(plan, AdmissionPlan::Admit { evict: vec![] });
    }

    #[test]
    fn priorities_are_total_for_degenerate_lifetimes() {
        // Zero/negative remaining TTL and a zero initial TTL (the
        // clock-skew pathologies) must rank finite in both policies.
        let mut gate = OccupancyGate::new(0.8);
        let mut tiered = TieredRetention::new(4, 0.8);
        for (remaining, initial) in [(0.0, 300.0), (-50.0, 300.0), (0.0, 0.0), (100.0, 0.0)] {
            let mut m = TestMessage::sample(1);
            m.remaining_ttl = SimDuration::from_mins(remaining);
            m.initial_ttl = SimDuration::from_mins(initial);
            let v = m.view();
            assert!(gate.send_priority(SimTime::ZERO, &v).is_finite());
            assert!(gate.keep_priority(SimTime::ZERO, &v).is_finite());
            assert!(tiered.send_priority(SimTime::ZERO, &v).is_finite());
            assert!(tiered.keep_priority(SimTime::ZERO, &v).is_finite());
        }
    }

    #[test]
    fn zero_capacity_counts_as_congested() {
        assert_eq!(occupancy(Bytes::ZERO, Bytes::ZERO), 1.0);
    }

    #[test]
    #[should_panic(expected = "occupancy threshold")]
    fn rejects_zero_threshold() {
        OccupancyGate::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn rejects_zero_tiers() {
        TieredRetention::new(0, 0.8);
    }
}
