//! TTL-based policies.
//!
//! [`TtlRatio`] is the paper's **"Spray and Wait-O"**: the priority of a
//! message is the ratio between its remaining TTL and its initial TTL —
//! fresher messages are replicated first and stale messages dropped
//! first.
//!
//! [`Shli`] ("smallest hop... lifetime", Lindgren & Phanse's
//! evict-shortest-lifetime-first) is a literature baseline: drop the
//! message closest to expiry; scheduling stays FIFO-like.

use crate::policy::BufferPolicy;
use crate::view::MessageView;
use dtn_core::time::SimTime;

/// Totality clamp for duration-derived priorities: the shared admission
/// machinery panics on NaN rankings, and degenerate lifetimes (zero or
/// negative remaining TTL under clock skew, a zero initial TTL, or
/// non-finite duration arithmetic) must therefore degrade to a finite
/// "rank last" value instead — the same defence-in-depth pattern the
/// SDSRP priority model applies to its `n_nodes <= 1` denominators.
fn finite_or(value: f64, fallback: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        fallback
    }
}

/// Spray and Wait-O: `priority = R_i / TTL_i`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TtlRatio;

impl BufferPolicy for TtlRatio {
    fn name(&self) -> &'static str {
        "SprayAndWait-O"
    }

    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        // `ttl_fraction` clamps to [0, 1] and guards the zero-denominator
        // case itself, but `clamp` passes NaN through — treat any
        // non-finite ratio as an expired message.
        finite_or(msg.ttl_fraction(), 0.0)
    }
}

/// Evict-shortest-remaining-lifetime-first; FIFO scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Shli;

impl BufferPolicy for Shli {
    fn name(&self) -> &'static str {
        "SHLI"
    }

    /// FIFO service order.
    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        finite_or(-msg.received.as_secs(), 0.0)
    }

    /// Shortest remaining lifetime evicted first. A degenerate
    /// (non-finite) lifetime ranks as already expired.
    fn keep_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        finite_or(msg.remaining_ttl.as_secs(), 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{plan_admission, schedule_order, AdmissionPlan};
    use crate::view::TestMessage;
    use dtn_core::ids::MessageId;
    use dtn_core::time::SimDuration;
    use dtn_core::units::Bytes;

    fn with_ttl(id: u64, remaining_mins: f64) -> TestMessage {
        let mut m = TestMessage::sample(id);
        m.remaining_ttl = SimDuration::from_mins(remaining_mins);
        m
    }

    #[test]
    fn ttl_ratio_prefers_fresh_messages() {
        let mut p = TtlRatio;
        let msgs = [with_ttl(1, 100.0), with_ttl(2, 250.0), with_ttl(3, 10.0)];
        let views: Vec<_> = msgs.iter().map(|m| m.view()).collect();
        let order = schedule_order(&mut p, SimTime::ZERO, &views);
        assert_eq!(order, vec![MessageId(2), MessageId(1), MessageId(3)]);
    }

    #[test]
    fn ttl_ratio_drops_stalest() {
        let mut p = TtlRatio;
        let residents = [with_ttl(1, 100.0), with_ttl(2, 10.0)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = with_ttl(9, 290.0);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(2)]
            }
        );
    }

    #[test]
    fn ttl_ratio_rejects_stale_newcomer() {
        let mut p = TtlRatio;
        let residents = [with_ttl(1, 100.0), with_ttl(2, 200.0)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = with_ttl(9, 5.0);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);
    }

    #[test]
    fn degenerate_lifetimes_are_total() {
        // Zero/negative remaining TTL, a zero initial TTL, and
        // non-finite durations (clock-skew pathologies) must all yield
        // finite priorities — the admission heap panics on NaN.
        let mut ttl = TtlRatio;
        let mut shli = Shli;
        // NaN durations cannot even be constructed (`SimDuration`
        // asserts), so the NaN routes into a ranking are ratios of
        // infinities — the ∞/∞ case below — plus plain ±∞ lifetimes.
        let cases = [
            (0.0, 300.0),
            (-50.0, 300.0),
            (0.0, 0.0),
            (100.0, 0.0),
            (f64::INFINITY, f64::INFINITY),
            (f64::NEG_INFINITY, 300.0),
            (f64::INFINITY, 300.0),
        ];
        for (remaining, initial) in cases {
            let mut m = TestMessage::sample(1);
            m.remaining_ttl = SimDuration::from_secs(remaining);
            m.initial_ttl = SimDuration::from_secs(initial);
            m.received = SimTime::INFINITY; // worst-case receive stamp
            let v = m.view();
            assert!(ttl.send_priority(SimTime::ZERO, &v).is_finite());
            assert!(ttl.keep_priority(SimTime::ZERO, &v).is_finite());
            assert!(shli.send_priority(SimTime::ZERO, &v).is_finite());
            assert!(shli.keep_priority(SimTime::ZERO, &v).is_finite());
        }
    }

    #[test]
    fn shli_drops_by_lifetime_but_serves_fifo() {
        let mut p = Shli;
        let mut a = with_ttl(1, 50.0);
        a.received = SimTime::from_secs(100.0);
        let mut b = with_ttl(2, 5.0);
        b.received = SimTime::from_secs(10.0);
        let views = vec![a.view(), b.view()];
        // FIFO: b first (older receive).
        let order = schedule_order(&mut p, SimTime::from_secs(200.0), &views);
        assert_eq!(order, vec![MessageId(2), MessageId(1)]);
        // Drop: b first (shorter lifetime).
        let incoming = with_ttl(9, 100.0);
        let plan = plan_admission(
            &mut p,
            SimTime::from_secs(200.0),
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(2)]
            }
        );
    }
}
