//! TTL-based policies.
//!
//! [`TtlRatio`] is the paper's **"Spray and Wait-O"**: the priority of a
//! message is the ratio between its remaining TTL and its initial TTL —
//! fresher messages are replicated first and stale messages dropped
//! first.
//!
//! [`Shli`] ("smallest hop... lifetime", Lindgren & Phanse's
//! evict-shortest-lifetime-first) is a literature baseline: drop the
//! message closest to expiry; scheduling stays FIFO-like.

use crate::policy::BufferPolicy;
use crate::view::MessageView;
use dtn_core::time::SimTime;

/// Spray and Wait-O: `priority = R_i / TTL_i`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TtlRatio;

impl BufferPolicy for TtlRatio {
    fn name(&self) -> &'static str {
        "SprayAndWait-O"
    }

    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        msg.ttl_fraction()
    }
}

/// Evict-shortest-remaining-lifetime-first; FIFO scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Shli;

impl BufferPolicy for Shli {
    fn name(&self) -> &'static str {
        "SHLI"
    }

    /// FIFO service order.
    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        -msg.received.as_secs()
    }

    /// Shortest remaining lifetime evicted first.
    fn keep_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        msg.remaining_ttl.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{plan_admission, schedule_order, AdmissionPlan};
    use crate::view::TestMessage;
    use dtn_core::ids::MessageId;
    use dtn_core::time::SimDuration;
    use dtn_core::units::Bytes;

    fn with_ttl(id: u64, remaining_mins: f64) -> TestMessage {
        let mut m = TestMessage::sample(id);
        m.remaining_ttl = SimDuration::from_mins(remaining_mins);
        m
    }

    #[test]
    fn ttl_ratio_prefers_fresh_messages() {
        let mut p = TtlRatio;
        let msgs = [with_ttl(1, 100.0), with_ttl(2, 250.0), with_ttl(3, 10.0)];
        let views: Vec<_> = msgs.iter().map(|m| m.view()).collect();
        let order = schedule_order(&mut p, SimTime::ZERO, &views);
        assert_eq!(order, vec![MessageId(2), MessageId(1), MessageId(3)]);
    }

    #[test]
    fn ttl_ratio_drops_stalest() {
        let mut p = TtlRatio;
        let residents = [with_ttl(1, 100.0), with_ttl(2, 10.0)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = with_ttl(9, 290.0);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(2)]
            }
        );
    }

    #[test]
    fn ttl_ratio_rejects_stale_newcomer() {
        let mut p = TtlRatio;
        let residents = [with_ttl(1, 100.0), with_ttl(2, 200.0)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = with_ttl(9, 5.0);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(plan, AdmissionPlan::RejectIncoming);
    }

    #[test]
    fn shli_drops_by_lifetime_but_serves_fifo() {
        let mut p = Shli;
        let mut a = with_ttl(1, 50.0);
        a.received = SimTime::from_secs(100.0);
        let mut b = with_ttl(2, 5.0);
        b.received = SimTime::from_secs(10.0);
        let views = vec![a.view(), b.view()];
        // FIFO: b first (older receive).
        let order = schedule_order(&mut p, SimTime::from_secs(200.0), &views);
        assert_eq!(order, vec![MessageId(2), MessageId(1)]);
        // Drop: b first (shorter lifetime).
        let incoming = with_ttl(9, 100.0);
        let plan = plan_admission(
            &mut p,
            SimTime::from_secs(200.0),
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(2)]
            }
        );
    }
}
