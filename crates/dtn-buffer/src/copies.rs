//! Copies-based policy — the paper's **"Spray and Wait-C"**.
//!
//! Priority is the ratio between the copy tokens this node still holds
//! and the initial spray budget: `C_i / C`. Messages with many unsprayed
//! tokens are replicated first; messages whose tokens are nearly spent
//! are dropped first. The paper shows this heuristic performs *worst* —
//! with a small spray budget all messages have similar `C_i` and the
//! policy degenerates to random selection, and it systematically evicts
//! wait-phase messages (`C_i = 1`) that might only need one more hop.

use crate::policy::BufferPolicy;
use crate::view::MessageView;
use dtn_core::time::SimTime;

/// Spray and Wait-C: `priority = C_i / C`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CopiesRatio;

impl BufferPolicy for CopiesRatio {
    fn name(&self) -> &'static str {
        "SprayAndWait-C"
    }

    fn send_priority(&mut self, _now: SimTime, msg: &MessageView<'_>) -> f64 {
        msg.copies_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{plan_admission, schedule_order, AdmissionPlan};
    use crate::view::TestMessage;
    use dtn_core::ids::MessageId;
    use dtn_core::units::Bytes;

    fn with_copies(id: u64, copies: u32, initial: u32) -> TestMessage {
        let mut m = TestMessage::sample(id);
        m.copies = copies;
        m.initial_copies = initial;
        m
    }

    #[test]
    fn prefers_token_rich_messages() {
        let mut p = CopiesRatio;
        let msgs = [
            with_copies(1, 4, 32),
            with_copies(2, 16, 32),
            with_copies(3, 1, 32),
        ];
        let views: Vec<_> = msgs.iter().map(|m| m.view()).collect();
        let order = schedule_order(&mut p, SimTime::ZERO, &views);
        assert_eq!(order, vec![MessageId(2), MessageId(1), MessageId(3)]);
    }

    #[test]
    fn evicts_wait_phase_messages_first() {
        let mut p = CopiesRatio;
        let residents = [with_copies(1, 1, 32), with_copies(2, 8, 32)];
        let views: Vec<_> = residents.iter().map(|m| m.view()).collect();
        let incoming = with_copies(9, 16, 32);
        let plan = plan_admission(
            &mut p,
            SimTime::ZERO,
            &incoming.view(),
            &views,
            Bytes::ZERO,
            Bytes::from_mb(1.0),
        );
        assert_eq!(
            plan,
            AdmissionPlan::Admit {
                evict: vec![MessageId(1)]
            }
        );
    }

    #[test]
    fn normalises_across_different_budgets() {
        // 8/16 ranks above 8/64.
        let mut p = CopiesRatio;
        let a = with_copies(1, 8, 16);
        let b = with_copies(2, 8, 64);
        let views = vec![a.view(), b.view()];
        let order = schedule_order(&mut p, SimTime::ZERO, &views);
        assert_eq!(order, vec![MessageId(1), MessageId(2)]);
    }
}
