//! The validator: event hooks, full-state sweeps and the estimator
//! oracle.
//!
//! The world calls the `on_*` hooks at every state transition and runs
//! one sweep per tick (`begin_sweep` → `sweep_node`/`sweep_copy` →
//! `finish_sweep`). All bookkeeping is double-entry: the hooks maintain
//! one view of the truth, the sweep derives a second view from the
//! actual buffers, and disagreement is a violation — so a missed or
//! corrupted update on either path is caught, not silently absorbed.

use crate::report::{ErrStats, ValidationReport};
use crate::truth::MessageTruth;
use crate::violation::{Violation, ViolationKind};
use dtn_core::ids::{MessageId, NodeId};
use dtn_core::time::SimTime;
use sdsrp_core::dropped_list::DroppedList;
use sdsrp_core::estimator::{estimate_m, estimate_n};
use sdsrp_core::priority::PriorityModel;
use std::collections::HashMap;

/// Tuning for one validation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidateConfig {
    /// Reference intermeeting rate λ fed to the Eq. 15 `m_i` estimate
    /// (the same `E(I) = 2000 s` prior SDSRP's online estimator starts
    /// from).
    pub lambda: f64,
    /// Seconds between estimator-error sampling sweeps. Invariants are
    /// checked every sweep regardless.
    pub sample_every: f64,
    /// Panic on the first violation instead of accumulating.
    pub fail_fast: bool,
    /// How many violations to retain verbatim in the report (the count
    /// keeps running past the cap).
    pub max_violations: usize,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig {
            lambda: 1.0 / 2000.0,
            sample_every: 60.0,
            fail_fast: false,
            max_violations: 64,
        }
    }
}

/// A violation in the compact form the world re-emits as a telemetry
/// event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolationNote {
    /// Stable check label.
    pub check: &'static str,
    /// Detection time, seconds.
    pub t: f64,
    /// Message involved, if any.
    pub msg: Option<u64>,
    /// Node involved, if any.
    pub node: Option<u32>,
}

/// Aggregated estimator errors from one sampling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorSweepSample {
    /// Copies sampled in this sweep.
    pub samples: u64,
    /// Mean relative error of the Eq. 15 `m_i` estimate.
    pub mean_err_m: f64,
    /// Max relative error of the Eq. 15 `m_i` estimate.
    pub max_err_m: f64,
    /// Mean relative error of the Eq. 14 `n_i` estimate.
    pub mean_err_n: f64,
    /// Max relative error of the Eq. 14 `n_i` estimate.
    pub max_err_n: f64,
}

/// What [`Validator::finish_sweep`] hands back for telemetry emission.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Violations detected since the previous sweep finished.
    pub new_violations: Vec<ViolationNote>,
    /// Estimator-error aggregate, present on sampling sweeps.
    pub sample: Option<EstimatorSweepSample>,
}

/// Ground-truth tracker + invariant checker for one run.
pub struct Validator {
    cfg: ValidateConfig,
    n_nodes: usize,
    e_i_min: f64,
    /// Whether the routing protocol conserves spray tokens (true for
    /// the Spray-and-Wait family and direct delivery; epidemic and
    /// PRoPHET mint a token per replication by design).
    conserve_tokens: bool,
    truth: Vec<MessageTruth>,
    /// Newest dropped-list record time seen per `(exporter, origin)`,
    /// for the monotonicity check.
    gossip_clock: HashMap<(u32, u32), f64>,
    report: ValidationReport,
    notes: Vec<ViolationNote>,
    // --- per-sweep state ---
    live_tokens: Vec<u64>,
    holders_swept: Vec<u32>,
    cur_node: Option<NodeAccum>,
    sampling: bool,
    next_sample_at: f64,
    ttl_slack: f64,
    sweep_m: ErrStats,
    sweep_n: ErrStats,
    pending_fault: bool,
}

struct NodeAccum {
    node: NodeId,
    used: u64,
    capacity: u64,
    accounted: u64,
}

impl Validator {
    /// A validator for a fresh world of `n_nodes` nodes. Must be
    /// installed before the first message is generated.
    pub fn new(cfg: ValidateConfig, n_nodes: usize, conserve_tokens: bool) -> Self {
        let e_i_min = PriorityModel::new(n_nodes.max(2), cfg.lambda).e_i_min();
        Validator {
            cfg,
            n_nodes,
            e_i_min,
            conserve_tokens,
            truth: Vec::new(),
            gossip_clock: HashMap::new(),
            report: ValidationReport::default(),
            notes: Vec::new(),
            live_tokens: Vec::new(),
            holders_swept: Vec::new(),
            cur_node: None,
            sampling: false,
            next_sample_at: 0.0,
            ttl_slack: 1.0,
            sweep_m: ErrStats::default(),
            sweep_n: ErrStats::default(),
            pending_fault: false,
        }
    }

    /// The accumulated report.
    pub fn report(&self) -> &ValidationReport {
        &self.report
    }

    /// Takes the report out of the validator.
    pub fn take_report(&mut self) -> ValidationReport {
        std::mem::take(&mut self.report)
    }

    /// Whether token conservation is being asserted for this run.
    pub fn conserves_tokens(&self) -> bool {
        self.conserve_tokens
    }

    /// Fault injection for harness self-tests: corrupts the hook-path
    /// holder count (`n_i` bookkeeping) of one live message before the
    /// next sweep's cross-check. A correct harness must flag the next
    /// sweep with a `holder_mismatch` violation — this is the seeded
    /// mutation CI uses to prove the checker actually detects
    /// corruption. Inert unless called.
    pub fn corrupt_holder_bookkeeping(&mut self) {
        self.pending_fault = true;
    }

    // ------------------------------------------------------------------
    // Event hooks (called by the world at each state transition).
    // ------------------------------------------------------------------

    /// A message was generated. Ids must arrive dense and in order.
    pub fn on_generated(&mut self, msg: MessageId, source: NodeId, copies: u32, expires_at: f64) {
        assert_eq!(
            msg.index(),
            self.truth.len(),
            "validator must be installed before the first generation"
        );
        self.truth
            .push(MessageTruth::new(source, copies, expires_at));
    }

    /// A copy entered a buffer (generation, replication or handoff).
    pub fn on_inserted(&mut self, msg: MessageId, node: NodeId) {
        let t = &mut self.truth[msg.index()];
        t.holders += 1;
        if node != t.source {
            t.seen.insert(node);
        }
    }

    /// A resident copy was evicted by a drop decision.
    pub fn on_evicted(&mut self, msg: MessageId, node: NodeId, tokens: u32) {
        let t = &mut self.truth[msg.index()];
        t.holders = t.holders.saturating_sub(1);
        t.destroyed += u64::from(tokens);
        t.droppers.insert(node);
    }

    /// An incoming copy was refused admission (its tokens die with it).
    pub fn on_rejected_incoming(&mut self, msg: MessageId, node: NodeId, tokens: u32) {
        let t = &mut self.truth[msg.index()];
        t.destroyed += u64::from(tokens);
        t.droppers.insert(node);
    }

    /// A buffered copy expired (TTL purge; not a drop decision).
    pub fn on_expired(&mut self, msg: MessageId, tokens: u32) {
        let t = &mut self.truth[msg.index()];
        t.holders = t.holders.saturating_sub(1);
        t.destroyed += u64::from(tokens);
    }

    /// A copy was purged by an immunity mechanism (not a drop decision).
    pub fn on_immunity_purge(&mut self, msg: MessageId, tokens: u32) {
        let t = &mut self.truth[msg.index()];
        t.holders = t.holders.saturating_sub(1);
        t.destroyed += u64::from(tokens);
    }

    /// A buffered copy was destroyed by an injected node crash. Like
    /// [`Self::on_expired`], this is not a drop *decision* — the node
    /// never chose to drop it, so it must NOT enter `droppers` (a
    /// gossiped dropped-list claiming this drop would be an overcount).
    /// The tokens are charged to `destroyed` so copy conservation holds
    /// *modulo the fault ledger*.
    pub fn on_crash_wipe(&mut self, msg: MessageId, tokens: u32) {
        let t = &mut self.truth[msg.index()];
        t.holders = t.holders.saturating_sub(1);
        t.destroyed += u64::from(tokens);
        self.report.faults.wiped_copies += 1;
        self.report.faults.wiped_tokens += u64::from(tokens);
    }

    /// An injected crash reset `node` to cold state (buffers already
    /// reported copy-by-copy via [`Self::on_crash_wipe`]). Forgets the
    /// gossip record-time clock for records *exported by* this node:
    /// after rebooting with an empty dropped list it may legitimately
    /// re-learn and re-export an older third-origin record than it
    /// exported pre-crash, which is not a Fig. 5 monotonicity bug.
    pub fn on_node_crashed(&mut self, node: NodeId) {
        self.report.faults.crashes += 1;
        self.gossip_clock
            .retain(|&(exporter, _), _| exporter != node.0);
    }

    /// An injected radio blackout started on some node.
    pub fn on_blackout(&mut self, _node: NodeId) {
        self.report.faults.blackouts += 1;
    }

    /// An in-flight transfer was killed by fault injection (as opposed
    /// to the pair drifting out of range). No truth changes: copies and
    /// tokens only move at transfer *completion*, so an aborted
    /// transfer leaves the sender's buffer untouched.
    pub fn on_fault_abort(&mut self) {
        self.report.faults.aborted_transfers += 1;
    }

    /// A copy left its sender's buffer for a handoff (tokens travel
    /// with it; the receiving side reports admission or rejection).
    pub fn on_handoff_out(&mut self, msg: MessageId) {
        let t = &mut self.truth[msg.index()];
        t.holders = t.holders.saturating_sub(1);
    }

    /// A replication split `before` sender tokens into `keeps` + `gets`.
    pub fn on_replicate_split(
        &mut self,
        now: SimTime,
        msg: MessageId,
        from: NodeId,
        before: u32,
        keeps: u32,
        gets: u32,
    ) {
        self.report.checks_run += 1;
        if self.conserve_tokens && keeps + gets != before {
            self.record(
                ViolationKind::TokenSplit,
                now.as_secs(),
                Some(msg.0),
                Some(from.0),
                format!("split {before} -> {keeps} + {gets}"),
            );
        }
    }

    /// The destination received the message.
    pub fn on_delivered(&mut self, msg: MessageId, dst: NodeId) {
        let t = &mut self.truth[msg.index()];
        t.seen.insert(dst);
        t.delivered = true;
    }

    /// A node exported its dropped-list gossip. Checks record-time
    /// monotonicity per `(exporter, origin)` and that every claimed
    /// drop really happened (`d_i` soundness).
    pub fn on_gossip_export(&mut self, now: SimTime, exporter: NodeId, bytes: &[u8]) {
        let Some(records) = DroppedList::decode_records(bytes) else {
            return; // not a dropped-list payload
        };
        let t = now.as_secs();
        for (origin, rec) in &records {
            self.report.checks_run += 1;
            let rt = rec.record_time.as_secs();
            let key = (exporter.0, origin.0);
            if let Some(&prev) = self.gossip_clock.get(&key) {
                if rt < prev {
                    self.record(
                        ViolationKind::DroppedListRegression,
                        t,
                        None,
                        Some(exporter.0),
                        format!("origin {} record_time {rt} < previous {prev}", origin.0),
                    );
                }
            }
            self.gossip_clock.insert(key, rt);
            for msg in &rec.dropped {
                self.report.checks_run += 1;
                let really_dropped = self
                    .truth
                    .get(msg.index())
                    .is_some_and(|mt| mt.droppers.contains(origin));
                if !really_dropped {
                    self.record(
                        ViolationKind::DroppedListOvercount,
                        t,
                        Some(msg.0),
                        Some(exporter.0),
                        format!("record claims origin {} dropped it; it never did", origin.0),
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Full-state sweep (once per tick).
    // ------------------------------------------------------------------

    /// Starts a sweep at `now`. `tick_secs` bounds how long an expired
    /// copy may legitimately linger before the next purge.
    pub fn begin_sweep(&mut self, now: SimTime, tick_secs: f64) {
        self.live_tokens.clear();
        self.live_tokens.resize(self.truth.len(), 0);
        self.holders_swept.clear();
        self.holders_swept.resize(self.truth.len(), 0);
        self.cur_node = None;
        self.ttl_slack = tick_secs;
        self.sampling = now.as_secs() >= self.next_sample_at;
        self.sweep_m = ErrStats::default();
        self.sweep_n = ErrStats::default();
    }

    /// Announces the next node; closes the previous node's capacity
    /// accounting.
    pub fn sweep_node(&mut self, now: SimTime, node: NodeId, used: u64, capacity: u64) {
        self.close_node(now);
        self.cur_node = Some(NodeAccum {
            node,
            used,
            capacity,
            accounted: 0,
        });
    }

    /// One buffered copy of the current node.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_copy(
        &mut self,
        now: SimTime,
        node: NodeId,
        msg: MessageId,
        tokens: u32,
        size: u64,
        spray_times: &[SimTime],
        delivered_here: bool,
    ) {
        if let Some(acc) = self.cur_node.as_mut() {
            acc.accounted += size;
        }
        self.live_tokens[msg.index()] += u64::from(tokens);
        self.holders_swept[msg.index()] += 1;
        let t = now.as_secs();

        self.report.checks_run += 1;
        if delivered_here {
            self.record(
                ViolationKind::DeliveredResident,
                t,
                Some(msg.0),
                Some(node.0),
                "buffered at its own destination after delivery".into(),
            );
        }

        self.report.checks_run += 1;
        let expires_at = self.truth[msg.index()].expires_at;
        if t > expires_at + self.ttl_slack + 1e-9 {
            self.record(
                ViolationKind::TtlExpiryMissed,
                t,
                Some(msg.0),
                Some(node.0),
                format!("expired at {expires_at}, still buffered at {t}"),
            );
        }

        if self.sampling {
            let truth = &self.truth[msg.index()];
            // Eq. 15 counts the chain endpoint itself (its floor is 1),
            // so the comparable truth is "distinct nodes that ever held
            // a copy", source included.
            let m_true = truth.true_m() + 1;
            let m_est = estimate_m(spray_times, now, self.e_i_min, self.n_nodes);
            let err_m = f64::from(m_est.abs_diff(m_true)) / f64::from(m_true.max(1));
            // Score the pipeline the policy actually runs — Eq. 14 on
            // top of the Eq. 15 output — but with the true `d_i`, so
            // the error isolates the formulas from gossip lag.
            let n_true = truth.holders;
            let n_est = estimate_n(m_est, truth.true_d());
            let err_n = f64::from(n_est.abs_diff(n_true)) / f64::from(n_true.max(1));
            self.sweep_m.observe(err_m);
            self.sweep_n.observe(err_n);
            self.report.estimator_m.observe(err_m);
            self.report.estimator_n.observe(err_n);
        }
    }

    /// Closes the sweep: runs the cross-message checks and returns the
    /// violations + estimator sample to emit.
    pub fn finish_sweep(&mut self, now: SimTime) -> SweepOutcome {
        self.close_node(now);
        let t = now.as_secs();

        // Seeded-fault application (harness self-test; see
        // `corrupt_holder_bookkeeping`).
        if self.pending_fault {
            if let Some(mt) = self.truth.iter_mut().find(|mt| mt.holders > 0) {
                mt.holders += 1;
                self.pending_fault = false;
            }
        }

        for idx in 0..self.truth.len() {
            let mt = &self.truth[idx];
            self.report.checks_run += 1;
            if self.holders_swept[idx] != mt.holders {
                let (swept, tracked) = (self.holders_swept[idx], mt.holders);
                self.record(
                    ViolationKind::HolderMismatch,
                    t,
                    Some(idx as u64),
                    None,
                    format!("swept {swept} holder(s), bookkeeping says {tracked}"),
                );
            }
            if self.conserve_tokens {
                self.report.checks_run += 1;
                let mt = &self.truth[idx];
                let c = u64::from(mt.initial_copies);
                let balance = self.live_tokens[idx] + mt.destroyed;
                if balance != c {
                    let (live, destroyed) = (self.live_tokens[idx], mt.destroyed);
                    self.record(
                        ViolationKind::CopyConservation,
                        t,
                        Some(idx as u64),
                        None,
                        format!("live {live} + destroyed {destroyed} != C {c}"),
                    );
                }
            }
        }

        self.report.sweeps += 1;
        let sample = if self.sampling {
            self.next_sample_at = t + self.cfg.sample_every;
            Some(EstimatorSweepSample {
                samples: self.sweep_m.samples,
                mean_err_m: self.sweep_m.mean(),
                max_err_m: self.sweep_m.max,
                mean_err_n: self.sweep_n.mean(),
                max_err_n: self.sweep_n.max,
            })
        } else {
            None
        };
        SweepOutcome {
            new_violations: std::mem::take(&mut self.notes),
            sample,
        }
    }

    fn close_node(&mut self, now: SimTime) {
        let Some(acc) = self.cur_node.take() else {
            return;
        };
        let t = now.as_secs();
        self.report.checks_run += 2;
        if acc.used > acc.capacity {
            self.record(
                ViolationKind::BufferOverflow,
                t,
                None,
                Some(acc.node.0),
                format!("used {} > capacity {}", acc.used, acc.capacity),
            );
        }
        if acc.accounted != acc.used {
            self.record(
                ViolationKind::UsedMismatch,
                t,
                None,
                Some(acc.node.0),
                format!("sum of sizes {} != used {}", acc.accounted, acc.used),
            );
        }
    }

    fn record(
        &mut self,
        kind: ViolationKind,
        t: f64,
        msg: Option<u64>,
        node: Option<u32>,
        detail: String,
    ) {
        self.report.violation_count += 1;
        let v = Violation {
            check: kind.label().into(),
            t,
            msg,
            node,
            detail,
        };
        if self.cfg.fail_fast {
            panic!("invariant violation: {v}");
        }
        if self.notes.len() < self.cfg.max_violations {
            self.notes.push(ViolationNote {
                check: kind.label(),
                t,
                msg,
                node,
            });
        }
        if self.report.violations.len() < self.cfg.max_violations {
            self.report.violations.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validator() -> Validator {
        Validator::new(ValidateConfig::default(), 10, true)
    }

    /// Drives one message through generate → insert and sweeps a
    /// consistent state: no violations, and a sampling sweep produces
    /// estimator statistics.
    #[test]
    fn consistent_state_is_clean() {
        let mut v = validator();
        let t0 = SimTime::from_secs(0.0);
        v.on_generated(MessageId(0), NodeId(0), 8, 600.0);
        v.on_inserted(MessageId(0), NodeId(0));
        v.begin_sweep(t0, 1.0);
        v.sweep_node(t0, NodeId(0), 500, 2500);
        v.sweep_copy(t0, NodeId(0), MessageId(0), 8, 500, &[], false);
        let out = v.finish_sweep(t0);
        assert!(v.report().ok(), "{:?}", v.report().violations);
        assert!(out.new_violations.is_empty());
        let s = out.sample.expect("first sweep samples");
        assert_eq!(s.samples, 1);
        // Only the source ever held it: Eq. 15 is exact (m = 1), while
        // Eq. 14's `m + 1 - d` over-counts the lone holder by exactly
        // one — the cold-start bias the oracle exists to expose.
        assert_eq!(s.max_err_m, 0.0);
        assert_eq!(s.max_err_n, 1.0);
    }

    #[test]
    fn conservation_violation_detected() {
        let mut v = validator();
        let t0 = SimTime::from_secs(5.0);
        v.on_generated(MessageId(0), NodeId(0), 8, 600.0);
        v.on_inserted(MessageId(0), NodeId(0));
        v.begin_sweep(t0, 1.0);
        v.sweep_node(t0, NodeId(0), 500, 2500);
        // The buffer claims only 5 tokens: 3 vanished somewhere.
        v.sweep_copy(t0, NodeId(0), MessageId(0), 5, 500, &[], false);
        let out = v.finish_sweep(t0);
        assert_eq!(out.new_violations.len(), 1);
        assert_eq!(out.new_violations[0].check, "copy_conservation");
        assert!(!v.report().ok());
    }

    #[test]
    fn seeded_holder_fault_is_flagged() {
        let mut v = validator();
        let t0 = SimTime::from_secs(1.0);
        v.on_generated(MessageId(0), NodeId(2), 4, 600.0);
        v.on_inserted(MessageId(0), NodeId(2));
        v.corrupt_holder_bookkeeping();
        v.begin_sweep(t0, 1.0);
        v.sweep_node(t0, NodeId(2), 500, 2500);
        v.sweep_copy(t0, NodeId(2), MessageId(0), 4, 500, &[], false);
        let out = v.finish_sweep(t0);
        assert!(
            out.new_violations
                .iter()
                .any(|n| n.check == "holder_mismatch"),
            "seeded n_i corruption went undetected: {:?}",
            out.new_violations
        );
    }

    #[test]
    fn capacity_and_delivery_checks_fire() {
        let mut v = validator();
        let t0 = SimTime::from_secs(2.0);
        v.on_generated(MessageId(0), NodeId(0), 4, 600.0);
        v.on_inserted(MessageId(0), NodeId(0));
        v.on_inserted(MessageId(0), NodeId(1));
        v.on_delivered(MessageId(0), NodeId(1));
        v.begin_sweep(t0, 1.0);
        // Node 0: used over capacity and inconsistent with sizes.
        v.sweep_node(t0, NodeId(0), 3000, 2500);
        v.sweep_copy(t0, NodeId(0), MessageId(0), 2, 500, &[], false);
        // Node 1: still buffers a message it was delivered.
        v.sweep_node(t0, NodeId(1), 500, 2500);
        v.sweep_copy(t0, NodeId(1), MessageId(0), 2, 500, &[], true);
        let out = v.finish_sweep(t0);
        let checks: Vec<_> = out.new_violations.iter().map(|n| n.check).collect();
        assert!(checks.contains(&"buffer_overflow"));
        assert!(checks.contains(&"used_mismatch"));
        assert!(checks.contains(&"delivered_resident"));
    }

    #[test]
    fn ttl_straggler_detected() {
        let mut v = validator();
        v.on_generated(MessageId(0), NodeId(0), 4, 100.0);
        v.on_inserted(MessageId(0), NodeId(0));
        let late = SimTime::from_secs(110.0);
        v.begin_sweep(late, 1.0);
        v.sweep_node(late, NodeId(0), 500, 2500);
        v.sweep_copy(late, NodeId(0), MessageId(0), 4, 500, &[], false);
        let out = v.finish_sweep(late);
        assert!(out
            .new_violations
            .iter()
            .any(|n| n.check == "ttl_expiry_missed"));
    }

    #[test]
    fn gossip_regression_and_overcount_detected() {
        use sdsrp_core::dropped_list::{DroppedList, DroppedRecord};
        use std::collections::{BTreeMap, BTreeSet};
        let mut v = validator();
        v.on_generated(MessageId(0), NodeId(0), 4, 600.0);
        // Node 3 genuinely dropped msg 0; node 4 never did.
        v.on_inserted(MessageId(0), NodeId(3));
        v.on_evicted(MessageId(0), NodeId(3), 2);

        let rec = |t: f64| {
            let mut dropped = BTreeSet::new();
            dropped.insert(MessageId(0));
            DroppedRecord {
                dropped,
                record_time: SimTime::from_secs(t),
            }
        };
        let honest: BTreeMap<NodeId, DroppedRecord> = [(NodeId(3), rec(10.0))].into();
        let bytes = DroppedList::encode_records(&honest);
        v.on_gossip_export(SimTime::from_secs(11.0), NodeId(3), &bytes);
        assert!(v.report().ok(), "{:?}", v.report().violations);

        // Same exporter, the origin's record time goes backwards.
        let stale: BTreeMap<NodeId, DroppedRecord> = [(NodeId(3), rec(5.0))].into();
        let bytes = DroppedList::encode_records(&stale);
        v.on_gossip_export(SimTime::from_secs(12.0), NodeId(3), &bytes);
        assert!(v
            .report()
            .violations
            .iter()
            .any(|x| x.check == "dropped_list_regression"));

        // A record claiming a drop that never happened.
        let fabricated: BTreeMap<NodeId, DroppedRecord> = [(NodeId(4), rec(13.0))].into();
        let bytes = DroppedList::encode_records(&fabricated);
        v.on_gossip_export(SimTime::from_secs(14.0), NodeId(5), &bytes);
        assert!(v
            .report()
            .violations
            .iter()
            .any(|x| x.check == "dropped_list_overcount"));
    }

    #[test]
    fn crash_wipe_preserves_conservation_and_skips_droppers() {
        let mut v = validator();
        let t0 = SimTime::from_secs(20.0);
        v.on_generated(MessageId(0), NodeId(0), 8, 600.0);
        v.on_inserted(MessageId(0), NodeId(0));
        // Node 0 crashes, wiping its only copy (all 8 tokens).
        v.on_crash_wipe(MessageId(0), 8);
        v.on_node_crashed(NodeId(0));
        // Sweep an empty world: conservation must hold because the
        // wiped tokens were charged to `destroyed`.
        v.begin_sweep(t0, 1.0);
        v.sweep_node(t0, NodeId(0), 0, 2500);
        let out = v.finish_sweep(t0);
        assert!(out.new_violations.is_empty(), "{:?}", out.new_violations);
        assert!(v.report().ok());
        let ledger = v.report().faults;
        assert_eq!(ledger.crashes, 1);
        assert_eq!(ledger.wiped_copies, 1);
        assert_eq!(ledger.wiped_tokens, 8);

        // A crash wipe is not a drop decision: a dropped-list record
        // claiming node 0 dropped msg 0 must be flagged as overcount.
        use sdsrp_core::dropped_list::{DroppedList, DroppedRecord};
        use std::collections::{BTreeMap, BTreeSet};
        let mut dropped = BTreeSet::new();
        dropped.insert(MessageId(0));
        let rec = DroppedRecord {
            dropped,
            record_time: SimTime::from_secs(21.0),
        };
        let records: BTreeMap<NodeId, DroppedRecord> = [(NodeId(0), rec)].into();
        let bytes = DroppedList::encode_records(&records);
        v.on_gossip_export(SimTime::from_secs(22.0), NodeId(1), &bytes);
        assert!(v
            .report()
            .violations
            .iter()
            .any(|x| x.check == "dropped_list_overcount"));
    }

    #[test]
    fn crash_resets_gossip_clock_for_the_crashed_exporter_only() {
        use sdsrp_core::dropped_list::{DroppedList, DroppedRecord};
        use std::collections::{BTreeMap, BTreeSet};
        let mut v = validator();
        v.on_generated(MessageId(0), NodeId(0), 4, 600.0);
        v.on_inserted(MessageId(0), NodeId(3));
        v.on_evicted(MessageId(0), NodeId(3), 2);

        let rec = |t: f64| {
            let mut dropped = BTreeSet::new();
            dropped.insert(MessageId(0));
            DroppedRecord {
                dropped,
                record_time: SimTime::from_secs(t),
            }
        };
        let records = |t: f64| -> BTreeMap<NodeId, DroppedRecord> { [(NodeId(3), rec(t))].into() };

        // Both node 5 and node 6 export origin-3's record at t=10.
        let bytes = DroppedList::encode_records(&records(10.0));
        v.on_gossip_export(SimTime::from_secs(11.0), NodeId(5), &bytes);
        v.on_gossip_export(SimTime::from_secs(11.0), NodeId(6), &bytes);
        assert!(v.report().ok());

        // Node 5 crashes, reboots empty, re-merges an older copy of the
        // record from a stale peer, and exports it. Without the clock
        // reset this would false-positive as a regression.
        v.on_node_crashed(NodeId(5));
        let stale = DroppedList::encode_records(&records(5.0));
        v.on_gossip_export(SimTime::from_secs(30.0), NodeId(5), &stale);
        assert!(v.report().ok(), "{:?}", v.report().violations);

        // Node 6 did NOT crash: the same stale export from it is still
        // a genuine monotonicity violation.
        v.on_gossip_export(SimTime::from_secs(31.0), NodeId(6), &stale);
        assert!(v
            .report()
            .violations
            .iter()
            .any(|x| x.check == "dropped_list_regression"));
    }

    #[test]
    fn blackout_and_fault_abort_only_touch_the_ledger() {
        let mut v = validator();
        let t0 = SimTime::from_secs(3.0);
        v.on_generated(MessageId(0), NodeId(0), 8, 600.0);
        v.on_inserted(MessageId(0), NodeId(0));
        v.on_blackout(NodeId(4));
        v.on_fault_abort();
        v.begin_sweep(t0, 1.0);
        v.sweep_node(t0, NodeId(0), 500, 2500);
        v.sweep_copy(t0, NodeId(0), MessageId(0), 8, 500, &[], false);
        let out = v.finish_sweep(t0);
        assert!(out.new_violations.is_empty());
        assert_eq!(v.report().faults.blackouts, 1);
        assert_eq!(v.report().faults.aborted_transfers, 1);
        assert_eq!(v.report().faults.crashes, 0);
    }

    #[test]
    fn token_split_checked_only_when_conserving() {
        let mut strict = validator();
        strict.on_generated(MessageId(0), NodeId(0), 8, 600.0);
        strict.on_replicate_split(SimTime::from_secs(1.0), MessageId(0), NodeId(0), 8, 8, 1);
        assert!(!strict.report().ok());

        let mut lax = Validator::new(ValidateConfig::default(), 10, false);
        lax.on_generated(MessageId(0), NodeId(0), 8, 600.0);
        lax.on_replicate_split(SimTime::from_secs(1.0), MessageId(0), NodeId(0), 8, 8, 1);
        assert!(lax.report().ok(), "epidemic-style splits must pass");
    }

    #[test]
    #[should_panic(expected = "invariant violation")]
    fn fail_fast_panics() {
        let cfg = ValidateConfig {
            fail_fast: true,
            ..ValidateConfig::default()
        };
        let mut v = Validator::new(cfg, 10, true);
        v.on_generated(MessageId(0), NodeId(0), 8, 600.0);
        v.on_replicate_split(SimTime::from_secs(1.0), MessageId(0), NodeId(0), 8, 3, 3);
    }

    #[test]
    fn violation_retention_is_capped_but_counting_continues() {
        let cfg = ValidateConfig {
            max_violations: 2,
            ..ValidateConfig::default()
        };
        let mut v = Validator::new(cfg, 10, true);
        v.on_generated(MessageId(0), NodeId(0), 8, 600.0);
        for _ in 0..5 {
            v.on_replicate_split(SimTime::from_secs(1.0), MessageId(0), NodeId(0), 8, 3, 3);
        }
        assert_eq!(v.report().violation_count, 5);
        assert_eq!(v.report().violations.len(), 2);
    }
}
