//! Ground-truth state per message, maintained from the world's event
//! hooks — the oracle the distributed estimators are judged against.

use dtn_core::ids::NodeId;
use std::collections::HashSet;

/// Everything the simulator truly knows about one message: the
/// quantities SDSRP can only estimate (`m_i`, `n_i`, `d_i`), plus the
/// token ledger backing the copy-conservation check.
#[derive(Debug, Clone)]
pub struct MessageTruth {
    /// Source node.
    pub source: NodeId,
    /// Initial copy tokens `C`.
    pub initial_copies: u32,
    /// Absolute expiry instant, seconds.
    pub expires_at: f64,
    /// Nodes other than the source that have ever received the message
    /// (replication, handoff or delivery) — the true `m_i`.
    pub seen: HashSet<NodeId>,
    /// Buffers currently holding a copy — the true `n_i`, maintained
    /// from the insert/remove hooks (double-entry against the sweep).
    pub holders: u32,
    /// Copy tokens destroyed so far (evictions, rejections, expiry,
    /// immunity purges). Live tokens + destroyed must equal `C` under a
    /// token-conserving routing protocol.
    pub destroyed: u64,
    /// Nodes that made an own-drop decision (eviction or incoming
    /// rejection) for this message — the true `d_i` a perfectly
    /// gossiped dropped-list could report.
    pub droppers: HashSet<NodeId>,
    /// Whether the destination has received the message.
    pub delivered: bool,
}

impl MessageTruth {
    /// Fresh truth for a message generated at `source` with `c` tokens.
    pub fn new(source: NodeId, c: u32, expires_at: f64) -> Self {
        MessageTruth {
            source,
            initial_copies: c,
            expires_at,
            seen: HashSet::new(),
            holders: 0,
            destroyed: 0,
            droppers: HashSet::new(),
            delivered: false,
        }
    }

    /// The true `m_i`: distinct non-source nodes that received a copy.
    pub fn true_m(&self) -> u32 {
        self.seen.len() as u32
    }

    /// The true `d_i`: distinct nodes that dropped the message.
    pub fn true_d(&self) -> u32 {
        self.droppers.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_clean() {
        let t = MessageTruth::new(NodeId(3), 16, 1800.0);
        assert_eq!(t.true_m(), 0);
        assert_eq!(t.true_d(), 0);
        assert_eq!(t.holders, 0);
        assert_eq!(t.destroyed, 0);
        assert!(!t.delivered);
    }

    #[test]
    fn seen_and_droppers_deduplicate() {
        let mut t = MessageTruth::new(NodeId(0), 8, 600.0);
        t.seen.insert(NodeId(1));
        t.seen.insert(NodeId(1));
        t.droppers.insert(NodeId(2));
        t.droppers.insert(NodeId(2));
        assert_eq!(t.true_m(), 1);
        assert_eq!(t.true_d(), 1);
    }
}
