//! Closed-form delivery-delay distribution of binary Spray and Wait
//! (Diana & Lochin, "Modelling the Delay Distribution of Binary Spray
//! and Wait Routing Protocol").
//!
//! The copy-spreading process is the classic absorbing CTMC over the
//! number of copy holders `i = 1..=L` in a network of `N` nodes whose
//! pairwise intermeeting times are i.i.d. exponential with rate `λ`:
//!
//! * **spreading** `i → i+1` at rate `β_i = λ · i · (N − 1 − i)` while
//!   `i < L` (each of the `i` holders can hand a token to any of the
//!   `N − 1 − i` nodes that are neither the destination nor a holder);
//! * **delivery** (absorption) from state `i` at rate `δ_i = λ · i`
//!   (any holder meets the destination).
//!
//! The total exit rate of state `i` is therefore
//! `a_i = β_i + δ_i = λ · i · (N − i)` for `i < L` and `a_L = λ · L`.
//! Because the chain is a pure birth chain with distinct exit rates,
//! the transient state occupancies are exponential sums
//! `p_i(t) = Σ_{j ≤ i} c_{ij} e^{−a_j t}` with the triangular
//! recurrence `c_{ij} = β_{i−1} c_{i−1,j} / (a_i − a_j)` (and
//! `c_{ii} = −Σ_{j<i} c_{ij}` so that `p_i(0) = [i = 1]`), which gives
//! the delay CDF in closed form:
//!
//! ```text
//! F(t) = P(delivery ≤ t) = 1 − Σ_j w_j e^{−a_j t},   w_j = Σ_{i ≥ j} c_{ij}.
//! ```
//!
//! The coefficients `c_{ij}` (and hence `w_j`) are independent of `λ` —
//! only the rates `a_j` scale with it — so one model can be re-scored
//! against different λ estimates cheaply.
//!
//! The model deliberately ignores everything the simulator adds on top
//! of the contact process: finite contact duration and bandwidth,
//! buffer overflows, TTL expiry and fault injection (see DESIGN.md,
//! "Model vs simulator divergence"). On a fault-free open-plane
//! scenario with ample buffers it is tight; the
//! [`ks_deviation`](DelayModel::ks_deviation) statistic quantifies the
//! gap against the simulated first-delivery delays.

use serde::{Deserialize, Serialize};

/// Closed-form delivery-delay CDF for binary Spray and Wait. Immutable
/// after construction; the exponential-sum weights are precomputed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    /// Total number of nodes `N` (including the destination).
    n_nodes: usize,
    /// Spray budget `L` (initial copies).
    copies: u32,
    /// Pairwise intermeeting rate `λ`, per second.
    lambda: f64,
    /// Exit rates `a_j`, ascending state order (NOT sorted by value).
    rates: Vec<f64>,
    /// Weights `w_j` of `F(t) = 1 − Σ_j w_j e^{−a_j t}`; sums to 1.
    weights: Vec<f64>,
}

impl DelayModel {
    /// Builds the model for `n_nodes` total nodes, a spray budget of
    /// `copies` and pairwise intermeeting rate `lambda` (per second).
    ///
    /// # Panics
    /// Panics if `n_nodes < 3`, `copies` is 0 or ≥ `n_nodes − 1`,
    /// `lambda` is not positive and finite, or the chain's exit rates
    /// collide (`i + j = N` for two spreading states — arrange
    /// `2·copies < n_nodes`, amply true for the paper's N = 100,
    /// L = 32).
    pub fn new(n_nodes: usize, copies: u32, lambda: f64) -> Self {
        assert!(n_nodes >= 3, "need at least three nodes");
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "lambda must be positive and finite"
        );
        let l = copies as usize;
        assert!(l >= 1, "need at least one copy");
        assert!(
            l < n_nodes - 1,
            "spray budget must leave at least one node without a copy \
             (L < N - 1; got L = {l}, N = {n_nodes})"
        );
        let n = n_nodes as f64;

        // λ-free exit rates b_i = a_i / λ; state i is rates[i - 1].
        let b = |i: usize| -> f64 {
            if i < l {
                i as f64 * (n - i as f64)
            } else {
                l as f64
            }
        };
        for i in 1..=l {
            for j in 1..i {
                assert!(
                    (b(i) - b(j)).abs() > 1e-9 * b(i).max(b(j)),
                    "exit rates collide for states {j} and {i} \
                     (keep 2L < N); got L = {l}, N = {n_nodes}"
                );
            }
        }

        // Triangular recurrence for the λ-free coefficients c[i][j]
        // (state i, mode j; both 1-based in the math, 0-based here).
        // β_{i-1}/λ = (i-1)(N-1-(i-1)) = (i-1)(N-i) and
        // (a_i - a_j)/λ = b_i - b_j, so λ cancels throughout.
        let mut c: Vec<Vec<f64>> = Vec::with_capacity(l);
        c.push(vec![1.0]); // p_1(0) = 1
        for i in 2..=l {
            let beta_prev = (i as f64 - 1.0) * (n - i as f64);
            let mut row = Vec::with_capacity(i);
            let mut diag = 0.0;
            for j in 1..i {
                let prev = c[i - 2].get(j - 1).copied().unwrap_or(0.0);
                let cij = beta_prev * prev / (b(i) - b(j));
                diag -= cij;
                row.push(cij);
            }
            row.push(diag); // c_ii: p_i(0) = 0
            c.push(row);
        }

        // w_j = Σ_{i ≥ j} c_ij; Σ_j w_j = Σ_i p_i(0) = 1 by construction.
        let mut weights = vec![0.0; l];
        for row in &c {
            for (j, cij) in row.iter().enumerate() {
                weights[j] += cij;
            }
        }
        let rates = (1..=l).map(|i| lambda * b(i)).collect();
        DelayModel {
            n_nodes,
            copies,
            lambda,
            rates,
            weights,
        }
    }

    /// Total number of nodes `N`.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Spray budget `L`.
    pub fn copies(&self) -> u32 {
        self.copies
    }

    /// Pairwise intermeeting rate `λ`, per second.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// `F(t) = P(delivery delay ≤ t)`, clamped to `[0, 1]` against
    /// floating-point noise in the alternating exponential sum (the
    /// weights reach ~2e8 in magnitude at the paper's N = 100, L = 32,
    /// leaving ~1e-8 of cancellation residue — far below any KS
    /// deviation worth acting on). Zero for `t ≤ 0`.
    pub fn predicted_delay_cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let survival: f64 = self
            .weights
            .iter()
            .zip(&self.rates)
            .map(|(w, a)| w * (-a * t).exp())
            .sum();
        (1.0 - survival).clamp(0.0, 1.0)
    }

    /// Mean delivery delay `E[T] = ∫ (1 − F) dt = Σ_j w_j / a_j`,
    /// seconds.
    pub fn mean_delay(&self) -> f64 {
        self.weights
            .iter()
            .zip(&self.rates)
            .map(|(w, a)| w / a)
            .sum()
    }

    /// One-sample Kolmogorov–Smirnov statistic: the maximum absolute
    /// deviation between the empirical CDF of `samples` (simulated
    /// first-delivery delays, seconds; sorted in place) and the model
    /// CDF. In `[0, 1]`; small means the simulator matches the closed
    /// form.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN (mirrors
    /// `dtn-analysis`'s `ks_distance_exponential`).
    pub fn ks_deviation(&self, samples: &mut [f64]) -> f64 {
        assert!(!samples.is_empty(), "need at least one delay sample");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN delay sample"));
        let n = samples.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in samples.iter().enumerate() {
            let f = self.predicted_delay_cdf(x);
            // The empirical CDF jumps from i/n to (i+1)/n at x.
            d = d.max(f - i as f64 / n).max((i + 1) as f64 / n - f);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> DelayModel {
        // Table II scale: N = 100, L = 32; E(I) = 1000 s.
        DelayModel::new(100, 32, 1e-3)
    }

    #[test]
    fn single_copy_reduces_to_direct_delivery() {
        // L = 1 is direct delivery: F(t) = 1 - exp(-λ t).
        let m = DelayModel::new(100, 1, 2e-3);
        for t in [0.0f64, 10.0, 500.0, 5_000.0] {
            let expected = 1.0 - (-2e-3 * t).exp();
            assert!(
                (m.predicted_delay_cdf(t) - expected).abs() < 1e-12,
                "t = {t}"
            );
        }
        assert!((m.mean_delay() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_a_distribution() {
        let m = paper_model();
        assert_eq!(m.predicted_delay_cdf(0.0), 0.0);
        assert_eq!(m.predicted_delay_cdf(-5.0), 0.0);
        let mut prev = 0.0;
        for k in 1..=200 {
            let f = m.predicted_delay_cdf(k as f64 * 50.0);
            assert!((0.0..=1.0).contains(&f));
            assert!(f + 1e-12 >= prev, "CDF must be monotone");
            prev = f;
        }
        assert!(m.predicted_delay_cdf(1e6) > 0.999_999);
        // Weights are a partition of unity by construction, but the
        // alternating sum cancels terms of magnitude up to ~2e8 at the
        // paper's scale, so judge the residue relative to that.
        let scale = m.weights.iter().fold(1.0f64, |acc, w| acc.max(w.abs()));
        assert!((m.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12 * scale);
    }

    #[test]
    fn cdf_matches_numerical_integration() {
        // Independent check of the closed form: RK4-integrate the
        // birth-chain ODE p' = Q p and compare 1 - Σ p_i(t).
        let (n_nodes, copies, lambda) = (100usize, 32u32, 1e-3);
        let m = DelayModel::new(n_nodes, copies, lambda);
        let l = copies as usize;
        let n = n_nodes as f64;
        let beta = |i: usize| -> f64 {
            if i < l {
                lambda * i as f64 * (n - 1.0 - i as f64)
            } else {
                0.0
            }
        };
        let delta = |i: usize| -> f64 { lambda * i as f64 };
        let deriv = |p: &[f64]| -> Vec<f64> {
            (1..=l)
                .map(|i| {
                    let inflow = if i > 1 { beta(i - 1) * p[i - 2] } else { 0.0 };
                    inflow - (beta(i) + delta(i)) * p[i - 1]
                })
                .collect()
        };
        let mut p = vec![0.0; l];
        p[0] = 1.0;
        let dt = 0.05;
        let mut t = 0.0;
        let checkpoints = [100.0, 500.0, 1000.0, 2000.0, 4000.0];
        let mut ci = 0;
        while ci < checkpoints.len() {
            let k1 = deriv(&p);
            let p2: Vec<f64> = p.iter().zip(&k1).map(|(x, k)| x + 0.5 * dt * k).collect();
            let k2 = deriv(&p2);
            let p3: Vec<f64> = p.iter().zip(&k2).map(|(x, k)| x + 0.5 * dt * k).collect();
            let k3 = deriv(&p3);
            let p4: Vec<f64> = p.iter().zip(&k3).map(|(x, k)| x + dt * k).collect();
            let k4 = deriv(&p4);
            for i in 0..l {
                p[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
            t += dt;
            if (t - checkpoints[ci]).abs() < dt / 2.0 {
                let f_numeric = 1.0 - p.iter().sum::<f64>();
                let f_closed = m.predicted_delay_cdf(checkpoints[ci]);
                assert!(
                    (f_numeric - f_closed).abs() < 1e-6,
                    "t = {}: closed {f_closed} vs numeric {f_numeric}",
                    checkpoints[ci]
                );
                ci += 1;
            }
        }
    }

    #[test]
    fn more_copies_deliver_faster() {
        let slow = DelayModel::new(100, 2, 1e-3);
        let fast = DelayModel::new(100, 32, 1e-3);
        assert!(fast.mean_delay() < slow.mean_delay());
        for t in [200.0, 1000.0, 3000.0] {
            assert!(fast.predicted_delay_cdf(t) >= slow.predicted_delay_cdf(t));
        }
    }

    #[test]
    fn ks_deviation_scores_model_samples_low_and_corrupt_high() {
        // Inverse-transform sample the model itself with a tiny LCG:
        // the KS statistic against the generating model must be small,
        // and against a 3x-λ corrupted model large.
        let m = paper_model();
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut uniform = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(1e-12, 1.0 - 1e-12)
        };
        let invert = |u: f64| -> f64 {
            // Bisect F(t) = u; F is monotone.
            let (mut lo, mut hi) = (0.0, 1e7);
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                if m.predicted_delay_cdf(mid) < u {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        };
        let mut samples: Vec<f64> = (0..400).map(|_| invert(uniform())).collect();
        let d_true = m.ks_deviation(&mut samples);
        assert!(d_true < 0.08, "self-sampled KS too large: {d_true}");
        let corrupted = DelayModel::new(100, 32, 3e-3);
        let d_bad = corrupted.ks_deviation(&mut samples);
        assert!(d_bad > 0.2, "corrupted-λ KS too small: {d_bad}");
    }

    #[test]
    fn lambda_scales_time_only() {
        // Doubling λ halves every quantile: F_λ(t) = F_2λ(t/2).
        let a = DelayModel::new(50, 8, 1e-3);
        let b = DelayModel::new(50, 8, 2e-3);
        for t in [100.0, 500.0, 2000.0] {
            assert!((a.predicted_delay_cdf(t) - b.predicted_delay_cdf(t / 2.0)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "spray budget")]
    fn rejects_budget_covering_all_nodes() {
        DelayModel::new(10, 9, 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least one delay sample")]
    fn ks_rejects_empty_samples() {
        paper_model().ks_deviation(&mut []);
    }
}
