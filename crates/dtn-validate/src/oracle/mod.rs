//! Analytic oracles: closed-form models the simulator is checked
//! against, independent of the event-driven machinery.
//!
//! The estimator oracle in [`crate::validator`] checks SDSRP's *inputs*
//! (`m_i`/`n_i` estimates against per-message ground truth); the models
//! here check the simulator's *outputs* — currently the delivery-delay
//! distribution of binary Spray and Wait ([`delay`]).

pub mod delay;
