//! The per-run validation report: violations plus estimator-error
//! statistics against the ground truth.

use crate::violation::Violation;
use serde::{Deserialize, Serialize};

/// Online mean/max statistics over relative errors.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrStats {
    /// Number of observations.
    pub samples: u64,
    /// Sum of observed relative errors.
    pub sum: f64,
    /// Largest observed relative error.
    pub max: f64,
}

impl ErrStats {
    /// Records one relative error.
    pub fn observe(&mut self, rel_err: f64) {
        self.samples += 1;
        self.sum += rel_err;
        if rel_err > self.max {
            self.max = rel_err;
        }
    }

    /// Mean relative error (`0` before the first observation).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }
}

/// Running tally of injected faults the validator was told about.
///
/// Every fault that destroys state (a crash wipe) or perturbs the
/// protocol (a blackout, an injected transfer abort) is recorded here
/// by the world's fault machinery, so the invariants read as
/// "conservation modulo recorded faults": wiped tokens are charged to
/// `destroyed` in the message truth, and this ledger is the audit
/// trail explaining *why* they were destroyed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultLedger {
    /// Node crashes applied.
    #[serde(default)]
    pub crashes: u64,
    /// Buffered copies destroyed by crash wipes.
    #[serde(default)]
    pub wiped_copies: u64,
    /// Spray tokens destroyed by crash wipes.
    #[serde(default)]
    pub wiped_tokens: u64,
    /// Radio blackouts applied.
    #[serde(default)]
    pub blackouts: u64,
    /// Transfers aborted by fault injection (not by mobility).
    #[serde(default)]
    pub aborted_transfers: u64,
}

impl FaultLedger {
    /// True when no fault was recorded (the default for clean runs).
    pub fn is_empty(&self) -> bool {
        *self == FaultLedger::default()
    }
}

/// What one validated run produced: every detected violation (capped),
/// how much was checked, and how far the paper's Eq. 14/15 estimates
/// strayed from the simulator's ground truth.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Full-state sweeps performed.
    pub sweeps: u64,
    /// Individual invariant checks evaluated.
    pub checks_run: u64,
    /// Total violations detected (may exceed `violations.len()`).
    pub violation_count: u64,
    /// The first violations, up to the configured retention cap.
    pub violations: Vec<Violation>,
    /// Relative error of the Eq. 15 `m_i` estimate vs the true
    /// seen-count, sampled per buffered copy.
    pub estimator_m: ErrStats,
    /// Relative error of the Eq. 14 `n_i` estimate vs the true live
    /// copy count, sampled per buffered copy.
    pub estimator_n: ErrStats,
    /// Injected-fault audit trail (all zero for clean runs).
    #[serde(default)]
    pub faults: FaultLedger,
}

impl ValidationReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violation_count == 0
    }

    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// One-paragraph human summary for CLI output.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "validation: {} violation(s) over {} checks in {} sweeps; \
             est m_i rel err mean {:.3} max {:.3} ({} samples); \
             est n_i rel err mean {:.3} max {:.3}",
            self.violation_count,
            self.checks_run,
            self.sweeps,
            self.estimator_m.mean(),
            self.estimator_m.max,
            self.estimator_m.samples,
            self.estimator_n.mean(),
            self.estimator_n.max,
        );
        if !self.faults.is_empty() {
            s.push_str(&format!(
                "; faults: {} crash(es) wiping {} copies / {} tokens, \
                 {} blackout(s), {} aborted transfer(s)",
                self.faults.crashes,
                self.faults.wiped_copies,
                self.faults.wiped_tokens,
                self.faults.blackouts,
                self.faults.aborted_transfers,
            ));
        }
        for v in self.violations.iter().take(5) {
            s.push_str(&format!("\n  {v}"));
        }
        if self.violation_count as usize > self.violations.len() {
            s.push_str(&format!(
                "\n  ... and {} more",
                self.violation_count as usize - self.violations.len().min(5)
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn err_stats_track_mean_and_max() {
        let mut e = ErrStats::default();
        assert_eq!(e.mean(), 0.0);
        for v in [0.1, 0.3, 0.2] {
            e.observe(v);
        }
        assert_eq!(e.samples, 3);
        assert!((e.mean() - 0.2).abs() < 1e-12);
        assert_eq!(e.max, 0.3);
    }

    #[test]
    fn report_roundtrips_and_summarises() {
        let mut r = ValidationReport::default();
        assert!(r.ok());
        r.sweeps = 10;
        r.checks_run = 500;
        r.estimator_m.observe(0.25);
        r.violation_count = 1;
        r.violations.push(Violation {
            check: "copy_conservation".into(),
            t: 9.0,
            msg: Some(3),
            node: None,
            detail: "x".into(),
        });
        assert!(!r.ok());
        let back: ValidationReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let s = r.summary();
        assert!(s.contains("1 violation(s)"));
        assert!(s.contains("copy_conservation"));
    }

    #[test]
    fn fault_ledger_appears_in_summary_only_when_nonempty() {
        let mut r = ValidationReport::default();
        assert!(r.faults.is_empty());
        assert!(!r.summary().contains("faults:"));
        r.faults.crashes = 2;
        r.faults.wiped_copies = 7;
        r.faults.wiped_tokens = 19;
        assert!(!r.faults.is_empty());
        let s = r.summary();
        assert!(s.contains("2 crash(es)"));
        assert!(s.contains("7 copies / 19 tokens"));
        let back: ValidationReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn reports_without_fault_field_deserialize_with_empty_ledger() {
        // Pre-fault-ledger reports (older checkpoints) must keep
        // loading: `faults` defaults to all-zero.
        let json = r#"{"sweeps":1,"checks_run":2,"violation_count":0,
            "violations":[],
            "estimator_m":{"samples":0,"sum":0.0,"max":0.0},
            "estimator_n":{"samples":0,"sum":0.0,"max":0.0}}"#;
        let r: ValidationReport = serde_json::from_str(json).unwrap();
        assert!(r.faults.is_empty());
    }
}
