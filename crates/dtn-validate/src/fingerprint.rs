//! Integer-only run fingerprints for bit-identical replay comparison
//! and golden-snapshot tests.
//!
//! Every field is a `u64` (ratios are scaled to micro/milli units), so
//! the canonical JSON rendering is byte-stable across platforms — no
//! float formatting in the committed snapshot, and `Eq` holds.

use dtn_telemetry::EventTotals;
use serde::{Deserialize, Serialize};

/// A deterministic digest of one simulation run: the report's counters
/// and derived metrics (fixed-point scaled), plus the per-kind event
/// totals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportFingerprint {
    /// Messages created after warm-up.
    pub created: u64,
    /// Copy transmissions (replications + handoffs).
    pub transmissions: u64,
    /// Delivery events, duplicates included.
    pub delivered_events: u64,
    /// Unique messages delivered.
    pub delivered_unique: u64,
    /// Residents evicted by buffer management.
    pub buffer_drops: u64,
    /// Incoming messages refused admission.
    pub incoming_rejects: u64,
    /// Buffered copies purged by TTL expiry.
    pub expirations: u64,
    /// Transfers aborted mid-flight.
    pub aborted_transfers: u64,
    /// Receipts refused via the dropped list.
    pub refused_receipts: u64,
    /// Copies purged by immunity mechanisms.
    pub immunity_purges: u64,
    /// Delivery ratio scaled by 1e6 and truncated.
    pub delivery_ratio_micro: u64,
    /// Overhead ratio scaled by 1e3 and truncated.
    pub overhead_milli: u64,
    /// Average delivered hop count scaled by 1e3 and truncated.
    pub avg_hopcount_milli: u64,
    /// Average delivery latency (seconds) scaled by 1e3 and truncated.
    pub avg_latency_milli: u64,
    /// Per-kind structured-event totals.
    pub events: EventTotals,
}

impl ReportFingerprint {
    /// Scales a non-negative float metric to fixed point, truncating.
    pub fn scale(value: f64, factor: f64) -> u64 {
        if value.is_finite() && value > 0.0 {
            (value * factor) as u64
        } else {
            0
        }
    }

    /// Canonical pretty-JSON rendering — the byte-stable form used for
    /// committed golden snapshots. Field order is the declaration
    /// order, values are integers only.
    pub fn to_canonical_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("fingerprint serialises");
        s.push('\n');
        s
    }

    /// Parses a canonical rendering back.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad fingerprint JSON: {e:?}"))
    }

    /// Field-level differences vs `other` as `"path: mine -> theirs"`
    /// lines; empty when the fingerprints are identical.
    pub fn diff(&self, other: &ReportFingerprint) -> Vec<String> {
        let mine = serde_json::to_value(self);
        let theirs = serde_json::to_value(other);
        let mut out = Vec::new();
        diff_value("", &mine, &theirs, &mut out);
        out
    }
}

fn render(v: &serde_json::Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "?".into())
}

fn diff_value(
    path: &str,
    mine: &serde_json::Value,
    theirs: &serde_json::Value,
    out: &mut Vec<String>,
) {
    use serde_json::Value;
    match (mine, theirs) {
        (Value::Object(a), Value::Object(b)) => {
            for (key, va) in a.iter() {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match b.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                    Some(vb) => diff_value(&sub, va, vb, out),
                    None => out.push(format!("{sub}: {} -> (absent)", render(va))),
                }
            }
            for (key, vb) in b.iter() {
                if !a.iter().any(|(k, _)| k == key) {
                    let sub = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    out.push(format!("{sub}: (absent) -> {}", render(vb)));
                }
            }
        }
        _ if mine != theirs => out.push(format!("{path}: {} -> {}", render(mine), render(theirs))),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReportFingerprint {
        ReportFingerprint {
            created: 100,
            transmissions: 850,
            delivered_events: 60,
            delivered_unique: 55,
            buffer_drops: 30,
            incoming_rejects: 12,
            expirations: 8,
            aborted_transfers: 3,
            refused_receipts: 5,
            immunity_purges: 0,
            delivery_ratio_micro: 550_000,
            overhead_milli: 14_454,
            avg_hopcount_milli: 2_340,
            avg_latency_milli: 812_500,
            events: EventTotals {
                generated: 100,
                replicated: 850,
                delivered: 60,
                delivered_first: 55,
                ..EventTotals::default()
            },
        }
    }

    #[test]
    fn canonical_json_roundtrips_byte_identically() {
        let fp = sample();
        let json = fp.to_canonical_json();
        let back = ReportFingerprint::from_json(&json).unwrap();
        assert_eq!(back, fp);
        assert_eq!(back.to_canonical_json(), json);
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn scale_truncates_and_guards() {
        assert_eq!(ReportFingerprint::scale(0.5534, 1e6), 553_400);
        assert_eq!(ReportFingerprint::scale(0.0, 1e3), 0);
        assert_eq!(ReportFingerprint::scale(f64::NAN, 1e3), 0);
        assert_eq!(ReportFingerprint::scale(-1.0, 1e3), 0);
    }

    #[test]
    fn diff_pinpoints_changed_fields() {
        let a = sample();
        let mut b = sample();
        assert!(a.diff(&b).is_empty());
        b.delivered_unique = 54;
        b.events.replicated = 851;
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert!(d
            .iter()
            .any(|l| l.starts_with("delivered_unique: 55 -> 54")));
        assert!(d
            .iter()
            .any(|l| l.starts_with("events.replicated: 850 -> 851")));
    }
}
