//! # dtn-validate
//!
//! Simulation invariants, a ground-truth estimator oracle and run
//! fingerprints for the SDSRP reproduction.
//!
//! * [`validator`] — the [`validator::Validator`] the world drives via
//!   event hooks and per-tick sweeps: copy-token conservation across
//!   the spray tree, buffer-capacity and usage accounting, delivered
//!   messages never resident at their destination, dropped-list gossip
//!   monotonicity and soundness, and TTL-expiry timeliness. It also
//!   tracks the true `m_i`/`n_i`/`d_i` per message and scores the
//!   paper's Eq. 14/15 estimates against them.
//! * [`violation`] — the invariant vocabulary
//!   ([`violation::ViolationKind`], [`violation::Violation`]).
//! * [`report`] — the per-run [`report::ValidationReport`].
//! * [`truth`] — per-message ground truth ([`truth::MessageTruth`]).
//! * [`oracle`] — closed-form analytic models, currently the binary
//!   Spray and Wait delivery-delay CDF
//!   ([`oracle::delay::DelayModel`]) with a KS-style deviation
//!   statistic against simulated delays.
//! * [`fingerprint`] — integer-only
//!   [`fingerprint::ReportFingerprint`]s for bit-identical replay
//!   comparison and golden snapshots.
//!
//! Validation is strictly opt-in: the simulator holds an
//! `Option<Box<Validator>>` and every hook sits behind one branch, so a
//! non-validated run pays nothing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fingerprint;
pub mod oracle;
pub mod report;
pub mod truth;
pub mod validator;
pub mod violation;

pub use fingerprint::ReportFingerprint;
pub use oracle::delay::DelayModel;
pub use report::{ErrStats, FaultLedger, ValidationReport};
pub use truth::MessageTruth;
pub use validator::{EstimatorSweepSample, SweepOutcome, ValidateConfig, Validator, ViolationNote};
pub use violation::{Violation, ViolationKind};
