//! The invariant vocabulary: what can go wrong, and the record kept
//! when it does.

use serde::{Deserialize, Serialize};

/// The classes of simulator invariants the harness checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Spray-tree tokens no longer sum to the source's initial `C`
    /// (live buffered tokens + tokens destroyed by drops/expiry ≠ `C`).
    CopyConservation,
    /// The holder count swept from the buffers disagrees with the
    /// hook-path bookkeeping — a missed or corrupted `n_i` update.
    HolderMismatch,
    /// A node's accounted buffer usage exceeds its capacity.
    BufferOverflow,
    /// A node's accounted usage disagrees with the sum of its buffered
    /// message sizes.
    UsedMismatch,
    /// A node buffers a message it was already delivered (as the
    /// destination).
    DeliveredResident,
    /// A gossiped dropped-list record's time went backwards for the
    /// same exporter/origin pair.
    DroppedListRegression,
    /// A gossiped dropped-list record claims a drop by a node that
    /// never made a drop decision — `d_i` would overcount.
    DroppedListOvercount,
    /// A TTL-expired copy outlived its expiry by more than one tick.
    TtlExpiryMissed,
    /// A replication split created or destroyed copy tokens under a
    /// token-conserving routing protocol.
    TokenSplit,
}

impl ViolationKind {
    /// Stable lower-snake-case label used in events and reports.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::CopyConservation => "copy_conservation",
            ViolationKind::HolderMismatch => "holder_mismatch",
            ViolationKind::BufferOverflow => "buffer_overflow",
            ViolationKind::UsedMismatch => "used_mismatch",
            ViolationKind::DeliveredResident => "delivered_resident",
            ViolationKind::DroppedListRegression => "dropped_list_regression",
            ViolationKind::DroppedListOvercount => "dropped_list_overcount",
            ViolationKind::TtlExpiryMissed => "ttl_expiry_missed",
            ViolationKind::TokenSplit => "token_split",
        }
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Which invariant failed (its stable label).
    pub check: String,
    /// Simulation time of detection, seconds.
    pub t: f64,
    /// The message involved, when the check is per-message.
    pub msg: Option<u64>,
    /// The node involved, when the check is per-node.
    pub node: Option<u32>,
    /// Human-readable evidence (expected vs observed).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[t={:.1}] {}", self.t, self.check)?;
        if let Some(m) = self.msg {
            write!(f, " msg={m}")?;
        }
        if let Some(n) = self.node {
            write!(f, " node={n}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let kinds = [
            ViolationKind::CopyConservation,
            ViolationKind::HolderMismatch,
            ViolationKind::BufferOverflow,
            ViolationKind::UsedMismatch,
            ViolationKind::DeliveredResident,
            ViolationKind::DroppedListRegression,
            ViolationKind::DroppedListOvercount,
            ViolationKind::TtlExpiryMissed,
            ViolationKind::TokenSplit,
        ];
        let labels: Vec<_> = kinds.iter().map(|k| k.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            assert!(a.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            for b in labels.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_carries_context() {
        let v = Violation {
            check: ViolationKind::CopyConservation.label().into(),
            t: 120.0,
            msg: Some(7),
            node: None,
            detail: "live 5 + destroyed 2 != C 8".into(),
        };
        let s = v.to_string();
        assert!(s.contains("copy_conservation"));
        assert!(s.contains("msg=7"));
        assert!(s.contains("!= C 8"));
    }
}
