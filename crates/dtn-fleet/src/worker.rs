//! The worker side of the protocol: a blocking stdin→stdout loop that
//! executes one assignment at a time.
//!
//! This module is transport-neutral plumbing: the `dtn-fleet-worker`
//! binary calls [`worker_main`] over real stdio, and
//! [`crate::thread::ThreadTransport`] reuses [`run_assignment`] for the
//! in-process backend — both therefore produce bit-identical
//! [`CellRun`] records for the same assignment.

use crate::protocol::{read_frame, write_frame, CoordinatorMsg, WorkerMsg, PROTOCOL_VERSION};
use dtn_sim::config::ScenarioConfig;
use dtn_sim::sweep::{execute_job, panic_message, CellRun};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How [`worker_main`] frames protocol messages on its byte streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Framing {
    /// One JSON value per line (subprocess stdio). Garbled lines are
    /// skipped — stdio noise (e.g. a stray print) must not kill the
    /// worker.
    #[default]
    Ndjson,
    /// `<len>\n<json>\n` frames (TCP). Framing violations end the
    /// session: a socket that loses sync cannot be re-synchronised.
    LengthPrefixed,
}

/// A deterministic fault hook for tests and CI: when the worker is
/// assigned `config_hash` and `marker` does not exist yet, it creates
/// the marker and misbehaves *once* (subsequent assignments of the same
/// cell run normally — including after a respawn, since the marker is
/// on disk).
///
/// `config_hash` may be the wildcard `*`, matching any cell; because
/// the marker latch is a shared file, a fleet whose workers all carry a
/// wildcard hook still misbehaves exactly once in total. CI uses this
/// to kill one worker without knowing cell hashes in advance.
#[derive(Debug, Clone)]
pub struct FaultHook {
    /// The cell to sabotage (`*` = any cell).
    pub config_hash: String,
    /// First-trigger latch file.
    pub marker: PathBuf,
}

impl FaultHook {
    /// Parses the `HASH:MARKER_PATH` CLI form.
    pub fn parse(s: &str) -> Option<FaultHook> {
        let (hash, marker) = s.split_once(':')?;
        if hash.is_empty() || marker.is_empty() {
            return None;
        }
        Some(FaultHook {
            config_hash: hash.to_string(),
            marker: PathBuf::from(marker),
        })
    }

    /// True (and latches the marker) on the first sighting of `hash`.
    fn triggers(&self, hash: &str) -> bool {
        let matches = self.config_hash == "*" || hash == self.config_hash;
        if !matches || self.marker.exists() {
            return false;
        }
        // Latch *before* misbehaving so a killed worker doesn't retrigger.
        std::fs::File::create(&self.marker).is_ok()
    }
}

/// Configuration of one worker process/thread.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Heartbeat period, seconds (0 disables the heartbeat thread).
    pub heartbeat_secs: f64,
    /// Private shard checkpoint this worker streams finished cells to
    /// (crash insurance merged by the coordinator on resume).
    pub shard: Option<PathBuf>,
    /// Message framing on the input/output streams.
    pub framing: Framing,
    /// Shared-secret token carried in the `Hello` (TCP fleets).
    pub token: Option<String>,
    /// Test hook: exit with code 17 instead of running the cell.
    pub fail_once: Option<FaultHook>,
    /// Test hook: hang (sleep ~1h) instead of running the cell.
    pub hang_once: Option<FaultHook>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            heartbeat_secs: 0.5,
            shard: None,
            framing: Framing::Ndjson,
            token: None,
            fail_once: None,
            hang_once: None,
        }
    }
}

/// Executes one assignment exactly as the in-process sweep runner
/// would: same `execute_job`, same panic isolation, same [`CellRun`]
/// record — bit-identical fingerprints by construction.
pub fn run_assignment(
    index: usize,
    seed: u64,
    config_hash: &str,
    config: &str,
    validate: bool,
) -> WorkerMsg {
    let cfg: ScenarioConfig = match serde_json::from_str(config) {
        Ok(cfg) => cfg,
        Err(e) => {
            return WorkerMsg::Failed {
                index,
                config_hash: config_hash.to_string(),
                panic: format!("config does not parse: {e}"),
            };
        }
    };
    let started = std::time::Instant::now();
    match catch_unwind(AssertUnwindSafe(|| execute_job(&cfg, validate))) {
        Ok((metrics, fingerprint, violations)) => WorkerMsg::Done {
            run: CellRun {
                index,
                config_hash: config_hash.to_string(),
                seed,
                metrics,
                fingerprint,
                violations,
                duration_secs: started.elapsed().as_secs_f64(),
            },
        },
        Err(payload) => WorkerMsg::Failed {
            index,
            config_hash: config_hash.to_string(),
            panic: panic_message(payload.as_ref()),
        },
    }
}

/// Writes one protocol frame under the given framing, flushing so it
/// is on the wire when this returns.
fn write_msg(w: &mut impl Write, framing: Framing, line: &str) -> std::io::Result<()> {
    match framing {
        Framing::Ndjson => writeln!(w, "{line}").and_then(|()| w.flush()),
        Framing::LengthPrefixed => write_frame(w, line),
    }
}

/// Pulls the next inbound frame. `Ok(None)` means the session is over
/// (EOF, or an unrecoverable framing error on a length-prefixed
/// stream); NDJSON read errors also end the session.
fn next_msg(r: &mut impl BufRead, framing: Framing) -> Option<String> {
    match framing {
        Framing::Ndjson => {
            let mut line = String::new();
            match r.read_line(&mut line) {
                Ok(0) | Err(_) => None,
                Ok(_) => Some(line.trim().to_string()),
            }
        }
        Framing::LengthPrefixed => read_frame(r).ok().flatten(),
    }
}

/// The worker main loop: `Hello`, then heartbeats from a side thread
/// while assignments stream in on `input` and replies stream out on
/// `output`. Returns the process exit code: 0 on clean shutdown/EOF,
/// 1 when the coordinator became unreachable, 3 when the handshake was
/// rejected ([`CoordinatorMsg::Reject`]), 17 on the `fail_once` test
/// hook.
///
/// Since protocol v2 assignments reference configs by hash; bodies
/// arrive in `Config` frames and are cached until the referencing cell
/// completes, after which they are evicted (in-flight memory stays
/// bounded, and any surprise reference NACKs via
/// [`WorkerMsg::ConfigMissing`] for a re-push).
///
/// Output is a mutex-guarded writer because the heartbeat thread and
/// the assignment loop interleave frames; each frame is written and
/// flushed atomically under the lock, so frames never tear.
pub fn worker_main(
    cfg: WorkerConfig,
    mut input: impl BufRead,
    output: impl Write + Send + 'static,
) -> i32 {
    let framing = cfg.framing;
    let out = Arc::new(Mutex::new(output));
    let emit = |msg: &WorkerMsg| -> bool {
        let mut guard = out.lock();
        write_msg(&mut *guard, framing, &msg.to_line()).is_ok()
    };

    if !emit(&WorkerMsg::Hello {
        pid: std::process::id() as u64,
        protocol: PROTOCOL_VERSION,
        token: cfg.token.clone(),
    }) {
        return 1; // coordinator already gone
    }

    let busy = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = if cfg.heartbeat_secs > 0.0 {
        let out = Arc::clone(&out);
        let busy = Arc::clone(&busy);
        let stop = Arc::clone(&stop);
        let period = Duration::from_secs_f64(cfg.heartbeat_secs);
        Some(std::thread::spawn(move || loop {
            std::thread::sleep(period);
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let msg = WorkerMsg::Heartbeat {
                busy: busy.load(Ordering::Relaxed),
            };
            let mut guard = out.lock();
            if write_msg(&mut *guard, framing, &msg.to_line()).is_err() {
                break; // coordinator gone; the main loop will see EOF too
            }
        }))
    } else {
        None
    };

    // Truncate-on-spawn: the coordinator merges leftover shards *before*
    // spawning workers, so anything here is already consumed.
    let mut shard = cfg.shard.as_ref().and_then(|path| {
        std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .ok()
    });

    // Config bodies keyed by canonical hash, pushed by the coordinator.
    let mut configs: HashMap<String, String> = HashMap::new();

    let mut code = 0;
    while let Some(line) = next_msg(&mut input, framing) {
        if line.is_empty() {
            continue;
        }
        // Unknown/garbled frames are skipped, not fatal: a newer
        // coordinator may speak additional message kinds. (On TCP,
        // *framing* violations are fatal — handled in `next_msg` —
        // but a well-framed unknown message is still skipped.)
        let Ok(msg) = serde_json::from_str::<CoordinatorMsg>(&line) else {
            continue;
        };
        match msg {
            CoordinatorMsg::Config {
                config_hash,
                config,
            } => {
                configs.insert(config_hash, config);
            }
            CoordinatorMsg::Assign {
                index,
                seed,
                config_hash,
                validate,
                ..
            } => {
                if cfg
                    .fail_once
                    .as_ref()
                    .is_some_and(|h| h.triggers(&config_hash))
                {
                    code = 17; // simulated crash mid-cell
                    break;
                }
                if cfg
                    .hang_once
                    .as_ref()
                    .is_some_and(|h| h.triggers(&config_hash))
                {
                    // Simulated wedge: heartbeats keep flowing (the side
                    // thread is alive), so only the per-cell timeout can
                    // catch this — exactly what it exists for.
                    busy.store(true, Ordering::Relaxed);
                    let _ = emit(&WorkerMsg::Started {
                        index,
                        config_hash: config_hash.clone(),
                    });
                    std::thread::sleep(Duration::from_secs(3600));
                    break;
                }
                let Some(config) = configs.get(&config_hash).cloned() else {
                    // NACK: we never saw (or already evicted) the body.
                    // The coordinator re-pushes and re-assigns.
                    if !emit(&WorkerMsg::ConfigMissing { index, config_hash }) {
                        code = 1;
                        break;
                    }
                    continue;
                };
                busy.store(true, Ordering::Relaxed);
                let _ = emit(&WorkerMsg::Started {
                    index,
                    config_hash: config_hash.clone(),
                });
                let reply = run_assignment(index, seed, &config_hash, &config, validate);
                if let (WorkerMsg::Done { run }, Some(file)) = (&reply, shard.as_mut()) {
                    let line = serde_json::to_string(run).expect("cell run serialises");
                    let _ = writeln!(file, "{line}").and_then(|()| file.flush());
                }
                // Evict after completion: in-flight memory stays
                // bounded to the configs of cells not yet run, and a
                // (rare) re-assignment exercises the NACK/re-push path.
                configs.remove(&config_hash);
                busy.store(false, Ordering::Relaxed);
                if !emit(&reply) {
                    code = 1;
                    break;
                }
            }
            CoordinatorMsg::Reject { reason } => {
                eprintln!("dtn-fleet-worker: handshake rejected: {reason}");
                code = 3;
                break;
            }
            CoordinatorMsg::Shutdown => break,
        }
    }

    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = heartbeat {
        let _ = handle.join();
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::config::presets;
    use dtn_telemetry::hash_config_json;

    fn smoke_assignment() -> (String, String) {
        let mut cfg = presets::smoke();
        cfg.duration_secs = 200.0;
        cfg.n_nodes = 10;
        let config = serde_json::to_string(&cfg).expect("config serialises");
        let hash = hash_config_json(&config);
        (config, hash)
    }

    #[test]
    fn run_assignment_matches_in_process_execution() {
        let (config, hash) = smoke_assignment();
        let cfg: ScenarioConfig = serde_json::from_str(&config).expect("parse");
        let (metrics, fingerprint, violations) = execute_job(&cfg, false);
        match run_assignment(4, cfg.seed, &hash, &config, false) {
            WorkerMsg::Done { run } => {
                assert_eq!(run.index, 4);
                assert_eq!(run.config_hash, hash);
                assert_eq!(run.metrics, metrics);
                assert_eq!(run.fingerprint, fingerprint);
                assert_eq!(run.violations, violations);
                assert!(run.duration_secs > 0.0);
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn unparseable_config_fails_soft() {
        match run_assignment(0, 1, "cafe", "not json", false) {
            WorkerMsg::Failed { panic, .. } => assert!(panic.contains("config does not parse")),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    struct SharedSink(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn assign(index: usize, hash: &str) -> CoordinatorMsg {
        CoordinatorMsg::Assign {
            index,
            label: "smoke".into(),
            policy: "SDSRP".into(),
            seed: 7,
            config_hash: hash.to_string(),
            validate: false,
            retry: 0,
        }
    }

    #[test]
    fn worker_loop_answers_assignments_over_buffers() {
        let (config, hash) = smoke_assignment();
        let push = CoordinatorMsg::Config {
            config_hash: hash.clone(),
            config,
        };
        let input = format!(
            "{}\nnot a protocol line\n{}\n{}\n",
            push.to_line(),
            assign(0, &hash).to_line(),
            CoordinatorMsg::Shutdown.to_line()
        );
        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let code = worker_main(
            WorkerConfig {
                heartbeat_secs: 0.0,
                ..WorkerConfig::default()
            },
            std::io::BufReader::new(input.as_bytes()),
            SharedSink(Arc::clone(&out)),
        );
        assert_eq!(code, 0);
        let body = String::from_utf8(out.lock().clone()).expect("utf8");
        let msgs: Vec<WorkerMsg> = body
            .lines()
            .map(|l| serde_json::from_str(l).expect("worker frame parses"))
            .collect();
        assert!(matches!(
            msgs[0],
            WorkerMsg::Hello {
                protocol: PROTOCOL_VERSION,
                ..
            }
        ));
        assert!(matches!(&msgs[1], WorkerMsg::Started { config_hash, .. } if *config_hash == hash));
        assert!(matches!(&msgs[2], WorkerMsg::Done { run } if run.config_hash == hash));
    }

    #[test]
    fn assign_without_config_body_nacks_config_missing() {
        let (config, hash) = smoke_assignment();
        // Assign before any Config push → NACK; then push + re-assign
        // (what the coordinator does on ConfigMissing) → normal run.
        let push = CoordinatorMsg::Config {
            config_hash: hash.clone(),
            config,
        };
        let input = format!(
            "{}\n{}\n{}\n{}\n",
            assign(2, &hash).to_line(),
            push.to_line(),
            assign(2, &hash).to_line(),
            CoordinatorMsg::Shutdown.to_line()
        );
        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let code = worker_main(
            WorkerConfig {
                heartbeat_secs: 0.0,
                ..WorkerConfig::default()
            },
            std::io::BufReader::new(input.as_bytes()),
            SharedSink(Arc::clone(&out)),
        );
        assert_eq!(code, 0);
        let body = String::from_utf8(out.lock().clone()).expect("utf8");
        let msgs: Vec<WorkerMsg> = body
            .lines()
            .map(|l| serde_json::from_str(l).expect("worker frame parses"))
            .collect();
        assert!(
            matches!(&msgs[1], WorkerMsg::ConfigMissing { index: 2, config_hash } if *config_hash == hash)
        );
        assert!(matches!(&msgs[2], WorkerMsg::Started { .. }));
        assert!(matches!(&msgs[3], WorkerMsg::Done { run } if run.config_hash == hash));
    }

    #[test]
    fn reject_frame_exits_with_code_3() {
        let input = format!(
            "{}\n",
            CoordinatorMsg::Reject {
                reason: "version mismatch".into()
            }
            .to_line()
        );
        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let code = worker_main(
            WorkerConfig {
                heartbeat_secs: 0.0,
                ..WorkerConfig::default()
            },
            std::io::BufReader::new(input.as_bytes()),
            SharedSink(Arc::clone(&out)),
        );
        assert_eq!(code, 3);
    }

    #[test]
    fn length_prefixed_framing_round_trips_a_cell() {
        use crate::protocol::{read_frame, write_frame};
        let (config, hash) = smoke_assignment();
        let mut input = Vec::new();
        write_frame(
            &mut input,
            &CoordinatorMsg::Config {
                config_hash: hash.clone(),
                config,
            }
            .to_line(),
        )
        .unwrap();
        write_frame(&mut input, &assign(1, &hash).to_line()).unwrap();
        write_frame(&mut input, &CoordinatorMsg::Shutdown.to_line()).unwrap();
        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let code = worker_main(
            WorkerConfig {
                heartbeat_secs: 0.0,
                framing: Framing::LengthPrefixed,
                token: Some("sesame".into()),
                ..WorkerConfig::default()
            },
            std::io::BufReader::new(&input[..]),
            SharedSink(Arc::clone(&out)),
        );
        assert_eq!(code, 0);
        let bytes = out.lock().clone();
        let mut r = std::io::Cursor::new(bytes);
        let mut msgs = Vec::new();
        while let Some(line) = read_frame(&mut r).expect("well-framed output") {
            msgs.push(serde_json::from_str::<WorkerMsg>(&line).expect("frame parses"));
        }
        assert!(
            matches!(&msgs[0], WorkerMsg::Hello { token: Some(t), .. } if t == "sesame"),
            "TCP Hello carries the auth token"
        );
        assert!(matches!(&msgs[1], WorkerMsg::Started { index: 1, .. }));
        assert!(matches!(&msgs[2], WorkerMsg::Done { run } if run.config_hash == hash));
    }

    #[test]
    fn fault_hook_latches_once() {
        let marker =
            std::env::temp_dir().join(format!("dtn-fleet-hook-{}.marker", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let hook = FaultHook {
            config_hash: "aa".into(),
            marker: marker.clone(),
        };
        assert!(!hook.triggers("bb"), "other cells unaffected");
        assert!(hook.triggers("aa"), "first sighting trips");
        assert!(!hook.triggers("aa"), "latched after that");
        let wildcard = FaultHook {
            config_hash: "*".into(),
            marker: marker.clone(),
        };
        assert!(!wildcard.triggers("cc"), "wildcard shares the latch");
        let _ = std::fs::remove_file(&marker);
        assert!(wildcard.triggers("cc"), "wildcard matches any cell");
        let _ = std::fs::remove_file(&marker);
    }

    #[test]
    fn fault_hook_parses_cli_form() {
        let hook = FaultHook::parse("deadbeef:/tmp/m.marker").expect("parses");
        assert_eq!(hook.config_hash, "deadbeef");
        assert_eq!(hook.marker, PathBuf::from("/tmp/m.marker"));
        assert!(FaultHook::parse("nocolon").is_none());
        assert!(FaultHook::parse(":/tmp/x").is_none());
    }
}
