//! Transport abstraction: how the coordinator spawns workers and
//! exchanges [`crate::protocol`] messages with them.
//!
//! The coordinator never touches processes, pipes or threads directly —
//! it drives [`Transport`] / [`WorkerHandle`] trait objects and reads a
//! single mpsc channel of `(worker uid, Envelope)` pairs. That keeps
//! every supervision policy (heartbeats, timeouts, retries, respawn)
//! testable against the in-process [`crate::thread::ThreadTransport`]
//! and reusable over future backends (e.g. TCP) without change.

use crate::protocol::{CoordinatorMsg, WorkerMsg};
use std::sync::mpsc::Sender;

/// What a worker's receive pump delivers to the coordinator channel.
// The size skew mirrors `WorkerMsg` (a boxed `Done` would tax every
// result frame to slim down transient liveness frames).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// A parsed protocol message from the worker.
    Msg(WorkerMsg),
    /// The worker's stream ended (process exit, pipe closed, thread
    /// returned). Carries the exit code when the transport knows it.
    Gone(Option<i32>),
}

/// A live worker the coordinator can send assignments to. Receiving is
/// push-based: the transport pumps every inbound message into the
/// channel handed to [`Transport::spawn`].
pub trait WorkerHandle: Send {
    /// Sends one coordinator message. An error means the worker is
    /// unreachable (the coordinator treats it as lost).
    fn send(&mut self, msg: &CoordinatorMsg) -> Result<(), FleetError>;
    /// OS process id, 0 when the backend has none.
    fn pid(&self) -> u64;
    /// Tears the worker down (kill the process / signal the thread).
    /// Idempotent; called on loss, shutdown and drop.
    fn kill(&mut self);
}

/// A worker-spawning backend.
pub trait Transport {
    /// Spawns one worker. `uid` is a coordinator-unique id echoed on
    /// every envelope the worker's pump sends to `inbox` — respawns get
    /// fresh uids, so late messages from a torn-down worker are
    /// recognisable (and its results still accepted) instead of being
    /// misattributed to its replacement.
    fn spawn(
        &self,
        uid: u64,
        inbox: Sender<(u64, Envelope)>,
    ) -> Result<Box<dyn WorkerHandle>, FleetError>;
    /// Stable backend label for stats and logs.
    fn label(&self) -> &'static str;
    /// Number of workers the backend has ready to join beyond those
    /// already spawned — e.g. authenticated TCP connections queued by
    /// the listener. The coordinator polls this to revive dead worker
    /// slots when a late worker arrives mid-sweep. Backends that only
    /// create workers on demand (subprocess, thread) report 0.
    fn waiting_workers(&self) -> usize {
        0
    }
}

/// A fleet-level failure: the coordinator could not run the sweep at
/// all (as opposed to per-cell failures, which are `CellError`s in the
/// output). Worker deaths are *not* fleet errors — they are retried,
/// and exhaustion degrades to per-cell errors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetError {
    /// What failed.
    pub message: String,
    /// The worker binary a failed spawn attempted to execute, when the
    /// failure was a spawn. Triage ("is the path wrong, or the binary
    /// broken?") needs this without rerunning under strace.
    pub worker_bin: Option<std::path::PathBuf>,
    /// Full argv of the failed spawn attempt (excluding argv\[0\]).
    pub argv: Vec<String>,
}

impl FleetError {
    /// Convenience constructor.
    pub fn new(message: impl Into<String>) -> Self {
        FleetError {
            message: message.into(),
            ..FleetError::default()
        }
    }

    /// A spawn failure, carrying the attempted binary path and argv so
    /// the error is actionable as printed.
    pub fn spawn_failure(
        message: impl Into<String>,
        worker_bin: impl Into<std::path::PathBuf>,
        argv: Vec<String>,
    ) -> Self {
        FleetError {
            message: message.into(),
            worker_bin: Some(worker_bin.into()),
            argv,
        }
    }
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet error: {}", self.message)?;
        if let Some(bin) = &self.worker_bin {
            write!(f, " (worker-bin: {}", bin.display())?;
            if !self.argv.is_empty() {
                write!(f, ", argv: {:?}", self.argv)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::new(e.to_string())
    }
}
