//! Per-worker shard checkpoints and their merge-on-resume naming
//! scheme.
//!
//! Subprocess workers stream every finished cell to a private *shard*
//! file next to the main checkpoint (`ck.jsonl` →
//! `ck.shard-<slot>.jsonl`). Shards are write-only crash insurance: on
//! resume the coordinator discovers them, feeds them to
//! [`dtn_sim::sweep::open_checkpoint`] as merge sources (main
//! checkpoint first, so it wins dedup ties), and the rewrite folds
//! every survivor — including torn tails — into the main file. The
//! coordinator then deletes consumed shards; workers recreate them
//! fresh on spawn.

use std::path::{Path, PathBuf};

/// The shard checkpoint path for worker slot `slot` of a fleet whose
/// main checkpoint is `main`: `<stem>.shard-<slot>.jsonl` (the
/// `.jsonl` extension is re-appended if `main` had it).
pub fn shard_path(main: &Path, slot: usize) -> PathBuf {
    let s = main.to_string_lossy();
    let stem = s.strip_suffix(".jsonl").unwrap_or(&s);
    PathBuf::from(format!("{stem}.shard-{slot}.jsonl"))
}

/// Finds every shard checkpoint a previous (killed) fleet run left next
/// to `main`, in deterministic (sorted-path) order. Missing directory
/// or unreadable entries simply yield nothing — discovery is
/// best-effort, like checkpoint loading itself.
pub fn discover_shards(main: &Path) -> Vec<PathBuf> {
    let s = main.to_string_lossy();
    let stem = s.strip_suffix(".jsonl").unwrap_or(&s).to_string();
    let stem_name = match Path::new(&stem).file_name() {
        Some(name) => name.to_string_lossy().into_owned(),
        None => return Vec::new(),
    };
    let dir = match main.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let prefix = format!("{stem_name}.shard-");
    let mut shards = Vec::new();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return shards;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(middle) = name
            .strip_prefix(prefix.as_str())
            .and_then(|rest| rest.strip_suffix(".jsonl"))
        else {
            continue;
        };
        // Only accept `<prefix><digits>.jsonl` — don't swallow an
        // unrelated file that happens to share the stem.
        if !middle.is_empty() && middle.bytes().all(|b| b.is_ascii_digit()) {
            shards.push(dir.join(name.as_ref()));
        }
    }
    shards.sort();
    shards
}

/// Removes shard files that were folded into the main checkpoint.
/// Best-effort: a shard that cannot be removed is merely re-merged (and
/// deduplicated) on the next resume.
pub fn remove_shards(shards: &[PathBuf]) {
    for shard in shards {
        let _ = std::fs::remove_file(shard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_paths_keep_the_jsonl_extension() {
        assert_eq!(
            shard_path(Path::new("/tmp/ck.jsonl"), 2),
            PathBuf::from("/tmp/ck.shard-2.jsonl")
        );
        assert_eq!(
            shard_path(Path::new("ck"), 0),
            PathBuf::from("ck.shard-0.jsonl")
        );
    }

    #[test]
    fn discovery_finds_only_matching_numbered_shards() {
        let dir = std::env::temp_dir().join(format!("dtn-fleet-merge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let main = dir.join("ck.jsonl");
        for name in [
            "ck.shard-0.jsonl",
            "ck.shard-1.jsonl",
            "ck.shard-10.jsonl",
            "ck.shard-x.jsonl",    // non-numeric: not a shard
            "other.shard-0.jsonl", // different stem
            "ck.jsonl",
        ] {
            std::fs::write(dir.join(name), "").expect("touch");
        }
        let found = discover_shards(&main);
        assert_eq!(
            found,
            vec![
                dir.join("ck.shard-0.jsonl"),
                dir.join("ck.shard-1.jsonl"),
                dir.join("ck.shard-10.jsonl"),
            ]
        );
        remove_shards(&found);
        assert!(found.iter().all(|p| !p.exists()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn discovery_of_missing_directory_is_empty() {
        assert!(discover_shards(Path::new("/no/such/dir/ck.jsonl")).is_empty());
    }
}
