//! Distributed sweep fan-out: a transport-agnostic coordinator that
//! shards the canonical [`dtn_sim::sweep`] job list across workers and
//! folds their results back into the exact output a single-process
//! [`dtn_sim::sweep::run_sweep_hardened`] run would produce.
//!
//! # Architecture
//!
//! The crate follows the transport-agnostic-core-plus-thin-shell split:
//!
//! * [`coordinator`] owns all policy — cell assignment (longest-job
//!   first from restored durations), heartbeat and per-cell timeout
//!   supervision, bounded re-dispatch of cells lost with their worker,
//!   worker respawn budgets, checkpoint streaming and shard merge.
//!   It only ever talks to [`transport::Transport`] /
//!   [`transport::WorkerHandle`] trait objects.
//! * [`subprocess`] is the first real backend: it spawns the thin
//!   `dtn-fleet-worker` binary per worker slot and frames
//!   [`protocol`] messages as newline-delimited JSON over the child's
//!   stdin/stdout.
//! * [`thread`] is an in-process backend running the same worker loop
//!   on a plain thread — zero-setup fallback and the reference
//!   implementation the other transports are tested against.
//! * [`tcp`] is the network backend: `dtn-fleet-worker --connect`
//!   peers dial a listening coordinator, authenticate with a versioned
//!   `Hello` (+ optional shared-secret token) and carry the same
//!   protocol in length-prefixed frames. Late joiners revive dead
//!   worker slots mid-sweep.
//!
//! See DESIGN.md ("Fleet wire protocol") for the full message state
//! machine and failure→retry semantics, and EXPERIMENTS.md for the
//! multi-host runbook.
//!
//! # Determinism
//!
//! Cells are identified by the FNV-1a hash of their canonical config
//! JSON ([`dtn_telemetry::hash_config_json`]) — the same resume key the
//! single-process checkpoint uses. Workers return the exact
//! [`dtn_sim::sweep::CellRun`] record (shortest-roundtrip `f64`
//! metrics, integer [`dtn_validate::ReportFingerprint`]), so a fleet
//! sweep — killed at any point, with any mix of main-checkpoint and
//! per-worker shard survivors — resumes and aggregates bit-identically
//! to an uninterrupted single-process run.

pub mod coordinator;
pub mod merge;
pub mod protocol;
pub mod schedule;
pub mod subprocess;
pub mod tcp;
pub mod thread;
pub mod transport;
pub mod worker;

pub use coordinator::{
    run_fleet, run_sweep_fleet, FleetOptions, FleetRun, FleetStats, WorkerUtilization,
};
pub use merge::{discover_shards, shard_path};
pub use protocol::{CoordinatorMsg, WorkerMsg, PROTOCOL_VERSION};
pub use subprocess::{locate_worker, SubprocessTransport};
pub use tcp::{connect_worker_main, parse_socket_addr, LocalTcpWorkers, TcpTransport};
pub use thread::ThreadTransport;
pub use transport::{Envelope, FleetError, Transport, WorkerHandle};
pub use worker::{worker_main, FaultHook, Framing, WorkerConfig};
