//! Longest-job-first dispatch ordering.
//!
//! Sweep cells vary widely in cost (buffer size, node count and
//! duration all scale the event count), and with few workers the
//! tail of a sweep is dominated by whichever long cell was dispatched
//! last. The coordinator therefore orders pending jobs longest-first,
//! estimating each job's cost from the per-cell wall-clock durations a
//! resumed checkpoint restores:
//!
//! 1. mean duration of completed runs with the same axis label and
//!    policy (the same cell, other seeds),
//! 2. else mean duration of completed runs with the same policy,
//! 3. else unknown — scheduled *first* (an unknown job may be the
//!    longest; starting it early can only help the makespan).
//!
//! On a cold run nothing is known, every job ties at "unknown", and the
//! order degrades to the canonical job order — so scheduling never
//! perturbs which cells run, only when, and the output (keyed by config
//! hash) is unaffected.

use dtn_sim::sweep::{CellJob, CellRun};
use std::collections::HashMap;

/// Orders `pending` (indices into `jobs`) for dispatch: longest
/// estimated duration first, unknown-cost jobs before everything, job
/// index as the deterministic tiebreak.
pub fn longest_first(jobs: &[CellJob], pending: &[usize], known: &[Option<CellRun>]) -> Vec<usize> {
    // Fold restored durations into (label, policy) and policy means.
    let mut by_cell: HashMap<(String, String), (f64, u32)> = HashMap::new();
    let mut by_policy: HashMap<String, (f64, u32)> = HashMap::new();
    for run in known.iter().flatten() {
        // NaN-safe: a pre-duration checkpoint line (0.0 or garbage)
        // contributes nothing to the estimates.
        if run.duration_secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            continue;
        }
        let job = match jobs.get(run.index) {
            Some(job) => job,
            None => continue,
        };
        let cell = by_cell
            .entry((job.label.clone(), job.policy.clone()))
            .or_insert((0.0, 0));
        cell.0 += run.duration_secs;
        cell.1 += 1;
        let pol = by_policy.entry(job.policy.clone()).or_insert((0.0, 0));
        pol.0 += run.duration_secs;
        pol.1 += 1;
    }
    let mean = |acc: Option<&(f64, u32)>| acc.map(|(sum, n)| sum / f64::from(*n));

    let mut ordered: Vec<(usize, Option<f64>)> = pending
        .iter()
        .map(|&i| {
            let job = &jobs[i];
            let est = mean(by_cell.get(&(job.label.clone(), job.policy.clone())))
                .or_else(|| mean(by_policy.get(&job.policy)));
            (i, est)
        })
        .collect();
    ordered.sort_by(|(ai, a), (bi, b)| {
        match (a, b) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Less, // unknown first
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => y.partial_cmp(x).unwrap_or(std::cmp::Ordering::Equal),
        }
        .then(ai.cmp(bi))
    });
    ordered.into_iter().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::config::presets;
    use dtn_sim::sweep::CellMetrics;
    use dtn_validate::ReportFingerprint;

    fn job(label: &str, policy: &str) -> CellJob {
        CellJob {
            label: label.into(),
            policy: policy.into(),
            cfg: presets::smoke(),
        }
    }

    fn run(index: usize, duration_secs: f64) -> Option<CellRun> {
        Some(CellRun {
            index,
            config_hash: format!("{index:016x}"),
            seed: 1,
            metrics: CellMetrics {
                delivery_ratio: 0.5,
                avg_hopcount: 1.0,
                overhead_ratio: 1.0,
                avg_latency: Some(1.0),
                created: 1.0,
            },
            fingerprint: ReportFingerprint::default(),
            violations: 0,
            duration_secs,
        })
    }

    #[test]
    fn cold_start_keeps_canonical_order() {
        let jobs = vec![job("8", "FIFO"), job("8", "SDSRP"), job("16", "FIFO")];
        let known = vec![None, None, None];
        assert_eq!(longest_first(&jobs, &[0, 1, 2], &known), vec![0, 1, 2]);
    }

    #[test]
    fn restored_durations_put_long_cells_first() {
        // Jobs: (8,FIFO) seeds 1-2 | (8,SDSRP) seeds 1-2; seed 1 of
        // each finished, SDSRP took 4x longer.
        let jobs = vec![
            job("8", "FIFO"),
            job("8", "FIFO"),
            job("8", "SDSRP"),
            job("8", "SDSRP"),
        ];
        let known = vec![run(0, 1.0), None, run(2, 4.0), None];
        assert_eq!(longest_first(&jobs, &[1, 3], &known), vec![3, 1]);
    }

    #[test]
    fn unknown_cost_jobs_lead_and_policy_mean_backfills() {
        // "32"/"SDSRP" has no same-cell history but the policy mean
        // (3.0) beats FIFO's (1.0); "32"/"DL" is entirely unknown and
        // goes first.
        let jobs = vec![
            job("8", "FIFO"),
            job("8", "SDSRP"),
            job("32", "SDSRP"),
            job("32", "FIFO"),
            job("32", "DL"),
        ];
        let known = vec![run(0, 1.0), run(1, 3.0), None, None, None];
        assert_eq!(longest_first(&jobs, &[2, 3, 4], &known), vec![4, 2, 3]);
    }
}
