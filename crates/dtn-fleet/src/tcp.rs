//! The TCP transport: workers connect over the network instead of
//! being forked, carrying the same protocol in length-prefixed NDJSON
//! frames (see [`crate::protocol::write_frame`]).
//!
//! Roles are inverted relative to the subprocess backend — the
//! coordinator cannot *create* remote workers, it can only *accept*
//! them. [`TcpTransport`] therefore runs a listener thread that
//! authenticates each incoming connection (first frame must be a
//! versioned [`WorkerMsg::Hello`] with the matching token; anything
//! else is answered with [`CoordinatorMsg::Reject`] and dropped) and
//! parks it in a ready queue. [`Transport::spawn`] then *adopts* a
//! queued connection: the initial worker slots wait up to the accept
//! timeout for workers to dial in, while respawn-path spawns never
//! block (a dead slot stays dead until a new connection arrives, at
//! which point the coordinator revives it via
//! [`Transport::waiting_workers`]).
//!
//! Failure mapping is identical to the subprocess backend: a dropped
//! or timed-out socket surfaces as [`Envelope::Gone`] → worker loss →
//! bounded cell retry; a failed `send` surfaces as [`FleetError`] →
//! worker loss. A dropped socket can therefore delay a cell but never
//! lose it.

use crate::protocol::{read_frame, write_frame, CoordinatorMsg, WorkerMsg};
use crate::transport::{Envelope, FleetError, Transport, WorkerHandle};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// An authenticated connection waiting to be adopted by a worker slot.
/// Keeps the handshake `BufReader` — it may already hold buffered
/// frames (e.g. an eager heartbeat) that a fresh reader would lose.
struct AuthedConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    hello: WorkerMsg,
    peer: String,
}

struct HandshakePolicy {
    token: Mutex<Option<String>>,
    io_timeout: Mutex<Duration>,
}

impl HandshakePolicy {
    fn token(&self) -> Option<String> {
        self.token.lock().expect("policy poisoned").clone()
    }
    fn io_timeout(&self) -> Duration {
        *self.io_timeout.lock().expect("policy poisoned")
    }
}

#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<AuthedConn>>,
    arrived: Condvar,
}

impl ReadyQueue {
    fn push(&self, conn: AuthedConn) {
        self.queue
            .lock()
            .expect("ready queue poisoned")
            .push_back(conn);
        self.arrived.notify_one();
    }

    fn pop_within(&self, wait: Duration) -> Option<AuthedConn> {
        let guard = self.queue.lock().expect("ready queue poisoned");
        let (mut guard, _) = self
            .arrived
            .wait_timeout_while(guard, wait, |q| q.is_empty())
            .expect("ready queue poisoned");
        guard.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.lock().expect("ready queue poisoned").len()
    }
}

/// A [`Transport`] that accepts `dtn-fleet-worker --connect` peers on
/// a listening socket.
///
/// ```no_run
/// use dtn_fleet::{run_fleet, FleetOptions, TcpTransport};
/// # fn jobs() -> Vec<dtn_sim::sweep::CellJob> { Vec::new() }
/// let transport = TcpTransport::bind("127.0.0.1:0")?; // 0 = any port
/// println!("workers: dtn-fleet-worker --connect {}", transport.local_addr());
/// let opts = FleetOptions { workers: 2, ..FleetOptions::default() };
/// transport.expect_workers(opts.workers);
/// let run = run_fleet(&jobs(), &transport, &opts)?;
/// # Ok::<(), dtn_fleet::FleetError>(())
/// ```
pub struct TcpTransport {
    addr: SocketAddr,
    /// Shared with the listener thread (spawned at bind time, before
    /// the builder methods run) so `with_token`/`with_timeouts` apply
    /// to handshakes too.
    policy: Arc<HandshakePolicy>,
    accept_timeout: Duration,
    /// How many further `spawn` calls may block a full accept-timeout
    /// waiting for a worker to dial in (the initial slots). Respawns
    /// must not stall the supervision loop, so once this hits zero a
    /// spawn only adopts an already-queued connection.
    blocking_accepts: AtomicUsize,
    ready: Arc<ReadyQueue>,
    stop: Arc<AtomicBool>,
    rejected: Arc<AtomicU64>,
}

impl TcpTransport {
    /// Binds the listener and starts the accept/handshake thread.
    /// `addr` is a `HOST:PORT` string; port 0 picks a free port (read
    /// it back via [`TcpTransport::local_addr`]).
    pub fn bind(addr: &str) -> Result<TcpTransport, FleetError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| FleetError::new(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| FleetError::new(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| FleetError::new(format!("set_nonblocking: {e}")))?;

        let transport = TcpTransport {
            addr: local,
            policy: Arc::new(HandshakePolicy {
                token: Mutex::new(None),
                io_timeout: Mutex::new(Duration::from_secs(30)),
            }),
            accept_timeout: Duration::from_secs(30),
            blocking_accepts: AtomicUsize::new(0),
            ready: Arc::new(ReadyQueue::default()),
            stop: Arc::new(AtomicBool::new(false)),
            rejected: Arc::new(AtomicU64::new(0)),
        };
        transport.start_listener(listener);
        Ok(transport)
    }

    /// Sets the shared-secret token every worker `Hello` must carry.
    pub fn with_token(self, token: Option<String>) -> TcpTransport {
        *self.policy.token.lock().expect("policy poisoned") = token;
        self
    }

    /// Sets how long an *initial* spawn waits for a worker to connect
    /// and how long socket reads/writes may stall before the peer is
    /// declared lost.
    pub fn with_timeouts(mut self, accept_secs: f64, io_secs: f64) -> TcpTransport {
        self.accept_timeout = Duration::from_secs_f64(accept_secs.max(0.0));
        *self.policy.io_timeout.lock().expect("policy poisoned") =
            Duration::from_secs_f64(io_secs.max(0.1));
        self
    }

    /// Declares how many upcoming `spawn` calls are initial worker
    /// slots allowed to block for the accept timeout. Call with the
    /// fleet's worker count right before `run_fleet`; respawns beyond
    /// this budget never block.
    pub fn expect_workers(&self, n: usize) {
        self.blocking_accepts.store(n, Ordering::SeqCst);
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Handshakes refused so far (version or token mismatch).
    pub fn rejected_handshakes(&self) -> u64 {
        self.rejected.load(Ordering::SeqCst)
    }

    fn start_listener(&self, listener: TcpListener) {
        let ready = Arc::clone(&self.ready);
        let stop = Arc::clone(&self.stop);
        let rejected = Arc::clone(&self.rejected);
        let policy = Arc::clone(&self.policy);
        std::thread::Builder::new()
            .name(format!("dtn-fleet-tcp-accept-{}", self.addr.port()))
            .spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, peer)) => {
                        let ready = Arc::clone(&ready);
                        let rejected = Arc::clone(&rejected);
                        let policy = Arc::clone(&policy);
                        // Handshake on a short-lived thread so one
                        // dawdling client cannot block further accepts.
                        let _ = std::thread::Builder::new()
                            .name(format!("dtn-fleet-tcp-hs-{peer}"))
                            .spawn(move || handshake(stream, peer, &policy, &ready, &rejected));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            })
            .expect("spawn tcp accept thread");
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Parked connections get a clean close instead of a dangling
        // socket; their workers see EOF and exit/reconnect.
        while let Some(conn) = self.ready.pop_within(Duration::ZERO) {
            let _ = conn.writer.shutdown(Shutdown::Both);
        }
    }
}

/// Runs the authentication handshake on a fresh connection: first
/// frame must be a `Hello` with the right protocol version and token.
fn handshake(
    stream: TcpStream,
    peer: SocketAddr,
    policy: &HandshakePolicy,
    ready: &ReadyQueue,
    rejected: &AtomicU64,
) {
    let token = policy.token();
    let io_timeout = policy.io_timeout();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);

    let refuse = |mut writer: TcpStream, reason: String| {
        rejected.fetch_add(1, Ordering::SeqCst);
        eprintln!("dtn-fleet: rejecting {peer}: {reason}");
        let reject = CoordinatorMsg::Reject { reason };
        let _ = write_frame(&mut writer, &reject.to_line());
        let _ = writer.shutdown(Shutdown::Both);
    };

    let line = match read_frame(&mut reader) {
        Ok(Some(line)) => line,
        Ok(None) | Err(_) => {
            return refuse(writer, "no Hello frame before timeout/EOF".into());
        }
    };
    let hello = match serde_json::from_str::<WorkerMsg>(&line) {
        Ok(msg @ WorkerMsg::Hello { .. }) => msg,
        Ok(other) => {
            return refuse(writer, format!("first frame must be Hello, got {other:?}"));
        }
        Err(e) => return refuse(writer, format!("unparseable Hello frame: {e}")),
    };
    let WorkerMsg::Hello {
        protocol,
        token: offered,
        ..
    } = &hello
    else {
        unreachable!("matched Hello above");
    };
    if *protocol != crate::protocol::PROTOCOL_VERSION {
        return refuse(
            writer,
            format!(
                "protocol version mismatch: worker speaks v{protocol}, coordinator v{}",
                crate::protocol::PROTOCOL_VERSION
            ),
        );
    }
    if token != *offered {
        // Never echo the expected token to an unauthenticated peer.
        return refuse(writer, "auth token mismatch".into());
    }
    ready.push(AuthedConn {
        reader,
        writer,
        hello,
        peer: peer.to_string(),
    });
}

impl Transport for TcpTransport {
    fn spawn(
        &self,
        uid: u64,
        inbox: Sender<(u64, Envelope)>,
    ) -> Result<Box<dyn WorkerHandle>, FleetError> {
        let may_block = self
            .blocking_accepts
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        let wait = if may_block {
            self.accept_timeout
        } else {
            // Respawn path: adopt a queued connection if one is already
            // waiting, but never stall the supervision loop.
            Duration::from_millis(10)
        };
        let Some(conn) = self.ready.pop_within(wait) else {
            return Err(FleetError::new(format!(
                "no worker connected to {} within {:.1}s",
                self.addr,
                wait.as_secs_f64()
            )));
        };
        let AuthedConn {
            mut reader,
            writer,
            hello,
            peer,
        } = conn;
        let pid = match &hello {
            WorkerMsg::Hello { pid, .. } => *pid,
            _ => 0,
        };
        // The authenticated Hello was consumed during the handshake;
        // replay it so the coordinator sees the same first message a
        // stdio worker would send.
        if inbox.send((uid, Envelope::Msg(hello))).is_err() {
            return Err(FleetError::new("coordinator inbox closed"));
        }

        // Reader pump: socket frames → coordinator inbox. Any framing
        // violation, read timeout (a live worker heartbeats well inside
        // io_timeout) or EOF means the connection is unusable → Gone →
        // the coordinator retries the in-flight cell elsewhere.
        std::thread::Builder::new()
            .name(format!("dtn-fleet-tcp-pump-{uid}"))
            .spawn(move || {
                while let Ok(Some(line)) = read_frame(&mut reader) {
                    let Ok(msg) = serde_json::from_str(&line) else {
                        continue; // well-framed but unknown: skip
                    };
                    if inbox.send((uid, Envelope::Msg(msg))).is_err() {
                        return; // coordinator gone
                    }
                }
                let _ = inbox.send((uid, Envelope::Gone(None)));
            })
            .map_err(|e| FleetError::new(format!("spawn tcp pump thread: {e}")))?;

        Ok(Box::new(TcpWorker {
            writer: Some(writer),
            pid,
            peer,
        }))
    }

    fn label(&self) -> &'static str {
        "tcp"
    }

    fn waiting_workers(&self) -> usize {
        self.ready.len()
    }
}

struct TcpWorker {
    writer: Option<TcpStream>,
    pid: u64,
    peer: String,
}

impl WorkerHandle for TcpWorker {
    fn send(&mut self, msg: &CoordinatorMsg) -> Result<(), FleetError> {
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| FleetError::new("worker socket already closed"))?;
        write_frame(writer, &msg.to_line())
            .map_err(|e| FleetError::new(format!("worker socket {}: {e}", self.peer)))
    }

    fn pid(&self) -> u64 {
        self.pid
    }

    fn kill(&mut self) {
        if let Some(writer) = self.writer.take() {
            let _ = writer.shutdown(Shutdown::Both);
        }
    }
}

/// Spawns `n` local `dtn-fleet-worker --connect` child processes
/// against a loopback [`TcpTransport`] and kills them on drop.
///
/// This is the harness the benches and tests use to exercise the real
/// network path (real sockets, real processes) on one machine; it is
/// *not* how multi-host fleets run — there the operator starts workers
/// on each host (see EXPERIMENTS.md).
pub struct LocalTcpWorkers {
    children: Vec<Child>,
}

impl LocalTcpWorkers {
    /// Launches the children. `checkpoint` (the coordinator's main
    /// checkpoint path) derives per-worker `--shard` files numbered
    /// from 9000 so they never collide with subprocess-uid shards.
    pub fn spawn(
        worker_bin: &Path,
        addr: SocketAddr,
        n: usize,
        token: Option<&str>,
        checkpoint: Option<&Path>,
        extra_args: &[String],
    ) -> Result<LocalTcpWorkers, FleetError> {
        let mut children = Vec::with_capacity(n);
        for i in 0..n {
            let mut argv: Vec<String> = vec![
                "--connect".into(),
                addr.to_string(),
                "--heartbeat".into(),
                "0.5".into(),
            ];
            if let Some(token) = token {
                argv.push("--token".into());
                argv.push(token.to_string());
            }
            if let Some(main) = checkpoint {
                argv.push("--shard".into());
                argv.push(
                    crate::merge::shard_path(main, 9000 + i)
                        .display()
                        .to_string(),
                );
            }
            argv.extend(extra_args.iter().cloned());
            let child = Command::new(worker_bin)
                .args(&argv)
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| {
                    FleetError::spawn_failure(
                        format!("spawn tcp worker: {e}"),
                        worker_bin,
                        argv.clone(),
                    )
                })?;
            children.push(child);
        }
        Ok(LocalTcpWorkers { children })
    }

    /// OS pids of the children (e.g. to kill one mid-run in tests).
    pub fn pids(&self) -> Vec<u32> {
        self.children.iter().map(Child::id).collect()
    }

    /// Kills one child by pid (test harness for worker-loss drills).
    pub fn kill_pid(&mut self, pid: u32) {
        for child in &mut self.children {
            if child.id() == pid {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

impl Drop for LocalTcpWorkers {
    fn drop(&mut self) {
        for child in &mut self.children {
            if !matches!(child.try_wait(), Ok(Some(_))) {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// The worker-side connect loop: dials `addr` (retrying for
/// `connect_wait` — workers often start before the coordinator), then
/// runs [`crate::worker::worker_main`] over the socket with
/// length-prefixed framing. With `reconnect`, a cleanly-shut-down
/// session loops back to dialing so one worker process can serve the
/// several sequential sweeps of a figure binary; the loop ends when no
/// coordinator answers for a full `connect_wait` window (or on
/// handshake rejection, which retrying cannot fix).
///
/// Returns the process exit code.
pub fn connect_worker_main(
    addr: &str,
    cfg: crate::worker::WorkerConfig,
    connect_wait: Duration,
    reconnect: bool,
) -> i32 {
    let mut first_session = true;
    loop {
        let deadline = std::time::Instant::now() + connect_wait;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break Some(stream),
                Err(e) => {
                    if std::time::Instant::now() >= deadline {
                        if first_session {
                            eprintln!("dtn-fleet-worker: cannot connect to {addr}: {e}");
                        }
                        break None;
                    }
                    std::thread::sleep(Duration::from_millis(200));
                }
            }
        };
        let Some(stream) = stream else {
            // No coordinator within the window: an initial failure is
            // an error, running out of sweeps to serve is success.
            return if first_session { 1 } else { 0 };
        };
        let _ = stream.set_nodelay(true);
        let Ok(writer) = stream.try_clone() else {
            return 1;
        };
        let code = crate::worker::worker_main(
            crate::worker::WorkerConfig {
                framing: crate::worker::Framing::LengthPrefixed,
                ..cfg.clone()
            },
            BufReader::new(stream),
            writer,
        );
        if code == 3 || !reconnect {
            return code; // rejected, or single-session mode
        }
        first_session = false;
    }
}

/// Resolves a `HOST:PORT` string (as given to `--listen`/`--connect`)
/// to a socket address. Exposed for the scenario binaries.
pub fn parse_socket_addr(addr: &str) -> Result<SocketAddr, FleetError> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()
        .map_err(|e| FleetError::new(format!("cannot resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| FleetError::new(format!("{addr} resolves to no address")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PROTOCOL_VERSION;

    fn hello_frame(protocol: u32, token: Option<&str>) -> String {
        WorkerMsg::Hello {
            pid: 4242,
            protocol,
            token: token.map(str::to_string),
        }
        .to_line()
    }

    /// Dials the transport, performs a raw handshake, returns the
    /// server's answer frame (None = accepted / no reply yet).
    fn raw_handshake(addr: SocketAddr, hello: &str) -> Option<CoordinatorMsg> {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        write_frame(&mut writer, hello).unwrap();
        let mut reader = BufReader::new(stream);
        match read_frame(&mut reader) {
            Ok(Some(line)) => serde_json::from_str(&line).ok(),
            _ => None,
        }
    }

    #[test]
    fn version_mismatch_is_rejected_with_reason() {
        let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
        let reply = raw_handshake(transport.local_addr(), &hello_frame(1, None));
        match reply {
            Some(CoordinatorMsg::Reject { reason }) => {
                assert!(reason.contains("protocol version mismatch"), "{reason}");
            }
            other => panic!("expected Reject, got {other:?}"),
        }
        assert_eq!(transport.rejected_handshakes(), 1);
    }

    #[test]
    fn token_mismatch_is_rejected_without_leaking_the_token() {
        let transport = TcpTransport::bind("127.0.0.1:0")
            .expect("bind")
            .with_token(Some("sesame".into()));
        for bad in [None, Some("guess")] {
            let reply = raw_handshake(transport.local_addr(), &hello_frame(PROTOCOL_VERSION, bad));
            match reply {
                Some(CoordinatorMsg::Reject { reason }) => {
                    assert!(reason.contains("token"), "{reason}");
                    assert!(!reason.contains("sesame"), "must not leak: {reason}");
                }
                other => panic!("expected Reject, got {other:?}"),
            }
        }
        assert_eq!(transport.rejected_handshakes(), 2);
    }

    #[test]
    fn garbage_first_frame_is_rejected() {
        let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
        let reply = raw_handshake(transport.local_addr(), "{\"Heartbeat\":{\"busy\":false}}");
        assert!(
            matches!(reply, Some(CoordinatorMsg::Reject { .. })),
            "non-Hello first frame must be rejected, got {reply:?}"
        );
    }

    #[test]
    fn authenticated_connection_is_adoptable_and_counted() {
        let transport = TcpTransport::bind("127.0.0.1:0")
            .expect("bind")
            .with_token(Some("sesame".into()));
        assert_eq!(transport.waiting_workers(), 0);
        let stream = TcpStream::connect(transport.local_addr()).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        write_frame(&mut writer, &hello_frame(PROTOCOL_VERSION, Some("sesame"))).unwrap();
        // Wait for the handshake thread to queue the connection.
        for _ in 0..100 {
            if transport.waiting_workers() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(transport.waiting_workers(), 1);

        let (tx, rx) = std::sync::mpsc::channel();
        transport.expect_workers(1);
        let mut handle = transport.spawn(7, tx).expect("adopts the queued worker");
        assert_eq!(handle.pid(), 4242, "pid comes from the Hello");
        // The replayed Hello is the first envelope.
        let (uid, env) = rx.recv_timeout(Duration::from_secs(5)).expect("hello");
        assert_eq!(uid, 7);
        assert!(matches!(
            env,
            Envelope::Msg(WorkerMsg::Hello { pid: 4242, .. })
        ));
        // Closing the client side surfaces as Gone.
        drop(writer);
        stream.shutdown(Shutdown::Both).ok();
        drop(stream);
        let (uid, env) = rx.recv_timeout(Duration::from_secs(5)).expect("gone");
        assert_eq!(uid, 7);
        assert!(matches!(env, Envelope::Gone(None)));
        handle.kill();
    }

    #[test]
    fn spawn_without_any_connection_fails_fast_on_respawn_path() {
        let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
        transport.expect_workers(0); // no blocking budget → respawn path
        let (tx, _rx) = std::sync::mpsc::channel();
        let started = std::time::Instant::now();
        let err = match transport.spawn(1, tx) {
            Err(err) => err,
            Ok(_) => panic!("nothing to adopt"),
        };
        assert!(started.elapsed() < Duration::from_secs(5), "must not block");
        assert!(err.message.contains("no worker connected"), "{err}");
    }
}
