//! The in-process transport: each "worker" is a plain thread running
//! the same assignment loop as the subprocess worker.
//!
//! Zero-setup backend for `--workers N` without a worker binary on
//! disk, and the reference implementation the subprocess transport is
//! differentially tested against — both call
//! [`crate::worker::run_assignment`], so their
//! [`dtn_sim::sweep::CellRun`] records are bit-identical for the same
//! assignment.
//!
//! Limitations vs subprocesses: `kill` cannot preempt a thread
//! mid-cell (the thread finishes or sleeps on; its late messages carry
//! a retired uid and are ignored — completed results are still
//! accepted), and a panic that escapes `catch_unwind` (none known)
//! would take the whole process down instead of one worker.

use crate::protocol::{CoordinatorMsg, WorkerMsg, PROTOCOL_VERSION};
use crate::transport::{Envelope, FleetError, Transport, WorkerHandle};
use crate::worker::run_assignment;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Spawns in-process worker threads.
///
/// ```
/// use dtn_fleet::{run_sweep_fleet, FleetOptions, ThreadTransport};
/// use dtn_sim::config::{presets, PolicyKind};
/// use dtn_sim::sweep::{SweepAxis, SweepSpec};
///
/// let spec = SweepSpec {
///     base: presets::smoke(),
///     axis: SweepAxis::InitialCopies(vec![8]),
///     policies: vec![PolicyKind::Sdsrp],
///     seeds: vec![1],
///     validate: false,
/// };
/// let (out, stats) = run_sweep_fleet(
///     &spec,
///     &ThreadTransport::default(),
///     &FleetOptions { workers: 2, ..FleetOptions::default() },
/// )
/// .expect("fleet runs");
/// assert_eq!(out.executed, 1);
/// assert_eq!(stats.transport, "thread");
/// ```
#[derive(Debug, Clone)]
pub struct ThreadTransport {
    /// Heartbeat period, seconds (0 disables heartbeats).
    pub heartbeat_secs: f64,
}

impl Default for ThreadTransport {
    fn default() -> Self {
        ThreadTransport {
            heartbeat_secs: 0.5,
        }
    }
}

impl Transport for ThreadTransport {
    fn spawn(
        &self,
        uid: u64,
        inbox: Sender<(u64, Envelope)>,
    ) -> Result<Box<dyn WorkerHandle>, FleetError> {
        let (tx, rx) = channel::<CoordinatorMsg>();
        let stop = Arc::new(AtomicBool::new(false));

        if self.heartbeat_secs > 0.0 {
            let inbox = inbox.clone();
            let stop = Arc::clone(&stop);
            let period = Duration::from_secs_f64(self.heartbeat_secs);
            std::thread::Builder::new()
                .name(format!("dtn-fleet-thread-hb-{uid}"))
                .spawn(move || loop {
                    std::thread::sleep(period);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if inbox
                        .send((uid, Envelope::Msg(WorkerMsg::Heartbeat { busy: false })))
                        .is_err()
                    {
                        break;
                    }
                })
                .map_err(|e| FleetError::new(format!("spawn heartbeat thread: {e}")))?;
        }

        let worker_stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("dtn-fleet-thread-{uid}"))
            .spawn(move || {
                let _ = inbox.send((
                    uid,
                    Envelope::Msg(WorkerMsg::Hello {
                        pid: 0,
                        protocol: PROTOCOL_VERSION,
                        token: None,
                    }),
                ));
                // Config bodies pushed by hash, exactly like the
                // subprocess/TCP worker loop (evicted on completion so
                // the NACK path stays exercised by every backend).
                let mut configs = std::collections::HashMap::<String, String>::new();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        CoordinatorMsg::Config {
                            config_hash,
                            config,
                        } => {
                            configs.insert(config_hash, config);
                        }
                        CoordinatorMsg::Assign {
                            index,
                            seed,
                            config_hash,
                            validate,
                            ..
                        } => {
                            let Some(config) = configs.get(&config_hash).cloned() else {
                                if inbox
                                    .send((
                                        uid,
                                        Envelope::Msg(WorkerMsg::ConfigMissing {
                                            index,
                                            config_hash,
                                        }),
                                    ))
                                    .is_err()
                                {
                                    break;
                                }
                                continue;
                            };
                            let _ = inbox.send((
                                uid,
                                Envelope::Msg(WorkerMsg::Started {
                                    index,
                                    config_hash: config_hash.clone(),
                                }),
                            ));
                            let reply =
                                run_assignment(index, seed, &config_hash, &config, validate);
                            configs.remove(&config_hash);
                            if inbox.send((uid, Envelope::Msg(reply))).is_err() {
                                break;
                            }
                        }
                        CoordinatorMsg::Reject { .. } => break,
                        CoordinatorMsg::Shutdown => break,
                    }
                }
                worker_stop.store(true, Ordering::Relaxed);
                let _ = inbox.send((uid, Envelope::Gone(Some(0))));
            })
            .map_err(|e| FleetError::new(format!("spawn worker thread: {e}")))?;

        Ok(Box::new(ThreadWorker { tx: Some(tx), stop }))
    }

    fn label(&self) -> &'static str {
        "thread"
    }
}

struct ThreadWorker {
    tx: Option<Sender<CoordinatorMsg>>,
    stop: Arc<AtomicBool>,
}

impl WorkerHandle for ThreadWorker {
    fn send(&mut self, msg: &CoordinatorMsg) -> Result<(), FleetError> {
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| FleetError::new("worker channel already closed"))?;
        tx.send(msg.clone())
            .map_err(|_| FleetError::new("worker thread gone"))
    }

    fn pid(&self) -> u64 {
        0
    }

    fn kill(&mut self) {
        // Dropping the sender ends the assignment loop at the next
        // recv; a thread mid-cell finishes that cell first (threads
        // cannot be preempted). The stop flag silences the heartbeat.
        self.stop.store(true, Ordering::Relaxed);
        self.tx = None;
    }
}
