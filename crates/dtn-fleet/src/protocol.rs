//! The coordinator/worker wire protocol.
//!
//! Messages are externally-tagged serde enums, one JSON value per
//! frame. Two framings carry the same frames:
//!
//! * **NDJSON** (subprocess stdio): one JSON value per line. Unknown
//!   lines are ignored by both sides so the protocol can grow fields
//!   without flag-day upgrades.
//! * **Length-prefixed NDJSON** (TCP): each frame is
//!   `<decimal byte length>\n<json>\n`. See [`write_frame`] /
//!   [`read_frame`]. Framing violations on a socket are treated as a
//!   broken connection (worker loss), not skipped — a TCP peer that
//!   cannot frame correctly cannot be trusted to resynchronise.
//!
//! [`PROTOCOL_VERSION`] in the worker's `Hello` guards against
//! genuinely incompatible pairings; the TCP transport additionally
//! checks the `Hello` auth token before a connection may join the
//! fleet, answering [`CoordinatorMsg::Reject`] on mismatch.
//!
//! Since protocol v2 an [`CoordinatorMsg::Assign`] carries only the
//! cell's canonical config *hash*; the config body streams once per
//! worker in a [`CoordinatorMsg::Config`] frame and is re-pushed on a
//! [`WorkerMsg::ConfigMissing`] NACK.

use std::io::{BufRead, Write};

use dtn_sim::sweep::CellRun;
use serde::{Deserialize, Serialize};

/// Version tag carried in [`WorkerMsg::Hello`]. Bump on breaking frame
/// changes; the coordinator refuses workers that disagree.
///
/// v2: `Assign` dropped the inline `config` body (config-push by
/// hash), `Hello` gained the optional auth `token`.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on a single frame's payload, enforced by
/// [`read_frame`]. Generous — the largest real frame is a `Config`
/// push or a `Done` with a full fingerprint, both well under a
/// megabyte — while still refusing absurd lengths from a corrupt or
/// hostile peer before allocating.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Coordinator → worker messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordinatorMsg {
    /// Stream a cell config body to the worker, keyed by its canonical
    /// hash. Sent once per `(worker incarnation, config_hash)` before
    /// the first `Assign` that references the hash, and again whenever
    /// the worker NACKs with [`WorkerMsg::ConfigMissing`].
    Config {
        /// FNV-1a hash of `config` — the cache key.
        config_hash: String,
        /// Canonical config JSON of the cell.
        config: String,
    },
    /// Run one cell. Since protocol v2 this carries only the config
    /// *hash*; the body arrives separately via `Config` so retries and
    /// repeat assignments do not re-send multi-kilobyte configs.
    Assign {
        /// Position in the materialised job list.
        index: usize,
        /// Axis label (sweeps) or scenario name (fuzzing).
        label: String,
        /// Policy legend label.
        policy: String,
        /// RNG seed of the run.
        seed: u64,
        /// FNV-1a hash of the canonical config JSON — the cell
        /// identity and resume key.
        config_hash: String,
        /// Attach a `dtn-validate` validator to the run.
        validate: bool,
        /// Dispatch attempt number (0 on first dispatch).
        retry: u32,
    },
    /// Handshake refusal (TCP only): the worker's `Hello` failed the
    /// version or token check. Carries a human-readable reason so the
    /// worker can print something actionable before exiting.
    Reject {
        /// Why the connection was refused.
        reason: String,
    },
    /// Drain and exit cleanly.
    Shutdown,
}

/// Worker → coordinator messages.
// `Done` dwarfs the liveness variants, but boxing `CellRun` would put
// an indirection on every result frame to save bytes on heartbeats that
// exist for microseconds — not worth it on this traffic volume.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerMsg {
    /// First frame after spawn/connect: liveness + version handshake.
    /// Over TCP this is also the authentication frame — the listener
    /// reads it before the connection may join the fleet.
    Hello {
        /// OS process id (0 for in-process transports).
        pid: u64,
        /// [`PROTOCOL_VERSION`] the worker speaks.
        protocol: u32,
        /// Shared-secret fleet token (TCP). Absent on stdio transports
        /// where the process tree is the trust boundary; pre-v2 peers
        /// omit the field entirely, which parses as `None`.
        #[serde(default)]
        token: Option<String>,
    },
    /// Periodic liveness signal, emitted from a side thread so it keeps
    /// flowing while a cell executes.
    Heartbeat {
        /// Whether a cell is currently executing.
        busy: bool,
    },
    /// An assignment was received and execution is starting.
    Started {
        /// Job index of the assignment.
        index: usize,
        /// Config hash of the assignment.
        config_hash: String,
    },
    /// NACK: an `Assign` referenced a config hash this worker has no
    /// body for. The coordinator answers with `Config` + a fresh
    /// `Assign` for the same cell.
    ConfigMissing {
        /// Job index of the assignment being NACKed.
        index: usize,
        /// The config hash the worker could not resolve.
        config_hash: String,
    },
    /// A cell finished; `run` is the exact checkpoint record.
    Done {
        /// The finished cell, bit-identical to what an in-process
        /// runner would record.
        run: CellRun,
    },
    /// A cell panicked inside the worker (the worker itself survives
    /// and can take further assignments).
    Failed {
        /// Job index of the failed cell.
        index: usize,
        /// Config hash of the failed cell.
        config_hash: String,
        /// The panic payload, stringified.
        panic: String,
    },
}

impl WorkerMsg {
    /// One NDJSON frame (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("worker message serialises")
    }
}

impl CoordinatorMsg {
    /// One NDJSON frame (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("coordinator message serialises")
    }
}

/// Write one length-prefixed frame: `<decimal len>\n<payload>\n`.
///
/// The payload is the NDJSON line (no trailing newline); the length
/// counts payload bytes only. Flushes, so a frame is on the wire when
/// this returns.
pub fn write_frame<W: Write>(w: &mut W, line: &str) -> std::io::Result<()> {
    w.write_all(line.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Read one length-prefixed frame written by [`write_frame`].
///
/// Returns `Ok(None)` on clean EOF at a frame boundary. Anything
/// malformed — a non-numeric length, a length above [`MAX_FRAME_LEN`],
/// truncation mid-frame, a missing `\n` terminator, or invalid UTF-8 —
/// is an [`std::io::ErrorKind::InvalidData`] error: on a socket that
/// means the connection is broken, not a line to skip.
pub fn read_frame<R: BufRead>(r: &mut R) -> std::io::Result<Option<String>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None); // clean EOF between frames
    }
    let len: usize = header
        .trim_end_matches('\n')
        .trim_end_matches('\r')
        .parse()
        .map_err(|_| bad_frame(format!("invalid frame length {header:?}")))?;
    if len > MAX_FRAME_LEN {
        return Err(bad_frame(format!(
            "frame length {len} exceeds MAX_FRAME_LEN {MAX_FRAME_LEN}"
        )));
    }
    let mut payload = vec![0u8; len + 1];
    r.read_exact(&mut payload)
        .map_err(|e| bad_frame(format!("truncated frame ({len} bytes expected): {e}")))?;
    if payload.pop() != Some(b'\n') {
        return Err(bad_frame("frame missing trailing newline".into()));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| bad_frame("frame payload is not UTF-8".into()))
}

fn bad_frame(why: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, why)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::sweep::CellMetrics;
    use dtn_validate::ReportFingerprint;

    #[test]
    fn assign_round_trips_through_ndjson() {
        let msg = CoordinatorMsg::Assign {
            index: 7,
            label: "16".into(),
            policy: "SDSRP".into(),
            seed: 42,
            config_hash: "deadbeefdeadbeef".into(),
            validate: true,
            retry: 1,
        };
        let line = msg.to_line();
        assert!(!line.contains('\n'), "frames must be single lines");
        let back: CoordinatorMsg = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, msg);
    }

    #[test]
    fn config_push_round_trips() {
        let msg = CoordinatorMsg::Config {
            config_hash: "deadbeefdeadbeef".into(),
            config: "{\"name\":\"smoke\"}".into(),
        };
        let back: CoordinatorMsg = serde_json::from_str(&msg.to_line()).expect("parse");
        assert_eq!(back, msg);
    }

    #[test]
    fn hello_token_round_trips_and_defaults() {
        let msg = WorkerMsg::Hello {
            pid: 9,
            protocol: PROTOCOL_VERSION,
            token: Some("sesame".into()),
        };
        let back: WorkerMsg = serde_json::from_str(&msg.to_line()).expect("parse");
        assert_eq!(back, msg);
        // A v1-era Hello without the token field still parses (None).
        let legacy = "{\"Hello\":{\"pid\":3,\"protocol\":1}}";
        match serde_json::from_str::<WorkerMsg>(legacy).expect("parse legacy") {
            WorkerMsg::Hello {
                pid: 3,
                protocol: 1,
                token: None,
            } => {}
            other => panic!("bad legacy parse: {other:?}"),
        }
    }

    #[test]
    fn config_missing_and_reject_round_trip() {
        let nack = WorkerMsg::ConfigMissing {
            index: 4,
            config_hash: "ff00".into(),
        };
        let back: WorkerMsg = serde_json::from_str(&nack.to_line()).expect("parse");
        assert_eq!(back, nack);
        let rej = CoordinatorMsg::Reject {
            reason: "bad token".into(),
        };
        let back: CoordinatorMsg = serde_json::from_str(&rej.to_line()).expect("parse");
        assert_eq!(back, rej);
    }

    #[test]
    fn done_round_trips_with_exact_floats() {
        let run = CellRun {
            index: 3,
            config_hash: "0123456789abcdef".into(),
            seed: 9,
            metrics: CellMetrics {
                delivery_ratio: 0.1 + 0.2, // deliberately non-representable
                avg_hopcount: 2.25,
                overhead_ratio: 13.5,
                avg_latency: Some(1234.0625),
                created: 96.0,
            },
            fingerprint: ReportFingerprint::default(),
            violations: 0,
            duration_secs: 1.5,
        };
        let line = WorkerMsg::Done { run: run.clone() }.to_line();
        let back: WorkerMsg = serde_json::from_str(&line).expect("parse");
        match back {
            WorkerMsg::Done { run: r } => {
                assert_eq!(r, run);
                // Equality excludes duration; check it explicitly.
                assert_eq!(r.duration_secs, 1.5);
                // Bit-exact float round trip, not just approximate.
                assert_eq!(r.metrics.delivery_ratio.to_bits(), (0.1f64 + 0.2).to_bits());
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn unknown_variants_are_rejected_not_misparsed() {
        assert!(serde_json::from_str::<WorkerMsg>("{\"Evolved\":{\"x\":1}}").is_err());
        assert!(serde_json::from_str::<CoordinatorMsg>("garbage").is_err());
    }

    #[test]
    fn shutdown_is_a_bare_tag() {
        let line = CoordinatorMsg::Shutdown.to_line();
        let back: CoordinatorMsg = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, CoordinatorMsg::Shutdown);
    }

    #[test]
    fn frames_round_trip_through_length_prefix() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "línea").unwrap(); // multi-byte UTF-8
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("línea"));
        assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn malformed_frames_are_errors_not_skips() {
        for wire in [
            "not-a-number\n{}\n",   // garbage length
            "5\nab\n",              // truncated payload
            "2\nabX",               // wrong terminator
            "999999999999999999\n", // absurd length
        ] {
            let mut r = std::io::Cursor::new(wire.as_bytes().to_vec());
            let err = read_frame(&mut r).expect_err(wire);
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{wire}");
        }
    }
}
