//! The coordinator/worker wire protocol.
//!
//! Messages are framed as newline-delimited JSON (one externally-tagged
//! enum value per line, no embedded newlines — serialised JSON strings
//! escape them). The coordinator writes [`CoordinatorMsg`] lines to the
//! worker's stdin; the worker writes [`WorkerMsg`] lines to stdout.
//! Unknown lines are ignored by both sides so the protocol can grow
//! fields without flag-day upgrades; [`PROTOCOL_VERSION`] in the
//! worker's `Hello` guards against genuinely incompatible pairings.

use dtn_sim::sweep::CellRun;
use serde::{Deserialize, Serialize};

/// Version tag carried in [`WorkerMsg::Hello`]. Bump on breaking frame
/// changes; the coordinator refuses workers that disagree.
pub const PROTOCOL_VERSION: u32 = 1;

/// Coordinator → worker messages (one JSON line each on worker stdin).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordinatorMsg {
    /// Run one cell. Carries the fully-resolved canonical config JSON,
    /// so the worker needs no access to the `SweepSpec` (or even the
    /// same working directory).
    Assign {
        /// Position in the materialised job list.
        index: usize,
        /// Axis label (sweeps) or scenario name (fuzzing).
        label: String,
        /// Policy legend label.
        policy: String,
        /// RNG seed of the run.
        seed: u64,
        /// FNV-1a hash of `config` — the cell identity and resume key.
        config_hash: String,
        /// Canonical config JSON of the cell.
        config: String,
        /// Attach a `dtn-validate` validator to the run.
        validate: bool,
        /// Dispatch attempt number (0 on first dispatch).
        retry: u32,
    },
    /// Drain and exit cleanly.
    Shutdown,
}

/// Worker → coordinator messages (one JSON line each on worker stdout).
// `Done` dwarfs the liveness variants, but boxing `CellRun` would put
// an indirection on every result frame to save bytes on heartbeats that
// exist for microseconds — not worth it on this traffic volume.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerMsg {
    /// First line after spawn: liveness + version handshake.
    Hello {
        /// OS process id (0 for in-process transports).
        pid: u64,
        /// [`PROTOCOL_VERSION`] the worker speaks.
        protocol: u32,
    },
    /// Periodic liveness signal, emitted from a side thread so it keeps
    /// flowing while a cell executes.
    Heartbeat {
        /// Whether a cell is currently executing.
        busy: bool,
    },
    /// An assignment was received and execution is starting.
    Started {
        /// Job index of the assignment.
        index: usize,
        /// Config hash of the assignment.
        config_hash: String,
    },
    /// A cell finished; `run` is the exact checkpoint record.
    Done {
        /// The finished cell, bit-identical to what an in-process
        /// runner would record.
        run: CellRun,
    },
    /// A cell panicked inside the worker (the worker itself survives
    /// and can take further assignments).
    Failed {
        /// Job index of the failed cell.
        index: usize,
        /// Config hash of the failed cell.
        config_hash: String,
        /// The panic payload, stringified.
        panic: String,
    },
}

impl WorkerMsg {
    /// One NDJSON frame (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("worker message serialises")
    }
}

impl CoordinatorMsg {
    /// One NDJSON frame (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("coordinator message serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_sim::sweep::CellMetrics;
    use dtn_validate::ReportFingerprint;

    #[test]
    fn assign_round_trips_through_ndjson() {
        let msg = CoordinatorMsg::Assign {
            index: 7,
            label: "16".into(),
            policy: "SDSRP".into(),
            seed: 42,
            config_hash: "deadbeefdeadbeef".into(),
            config: "{\"name\":\"smoke\"}".into(),
            validate: true,
            retry: 1,
        };
        let line = msg.to_line();
        assert!(!line.contains('\n'), "frames must be single lines");
        let back: CoordinatorMsg = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, msg);
    }

    #[test]
    fn done_round_trips_with_exact_floats() {
        let run = CellRun {
            index: 3,
            config_hash: "0123456789abcdef".into(),
            seed: 9,
            metrics: CellMetrics {
                delivery_ratio: 0.1 + 0.2, // deliberately non-representable
                avg_hopcount: 2.25,
                overhead_ratio: 13.5,
                avg_latency: 1234.0625,
                created: 96.0,
            },
            fingerprint: ReportFingerprint::default(),
            violations: 0,
            duration_secs: 1.5,
        };
        let line = WorkerMsg::Done { run: run.clone() }.to_line();
        let back: WorkerMsg = serde_json::from_str(&line).expect("parse");
        match back {
            WorkerMsg::Done { run: r } => {
                assert_eq!(r, run);
                // Equality excludes duration; check it explicitly.
                assert_eq!(r.duration_secs, 1.5);
                // Bit-exact float round trip, not just approximate.
                assert_eq!(r.metrics.delivery_ratio.to_bits(), (0.1f64 + 0.2).to_bits());
            }
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn unknown_variants_are_rejected_not_misparsed() {
        assert!(serde_json::from_str::<WorkerMsg>("{\"Evolved\":{\"x\":1}}").is_err());
        assert!(serde_json::from_str::<CoordinatorMsg>("garbage").is_err());
    }

    #[test]
    fn shutdown_is_a_bare_tag() {
        let line = CoordinatorMsg::Shutdown.to_line();
        let back: CoordinatorMsg = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, CoordinatorMsg::Shutdown);
    }
}
