//! The subprocess transport: one `dtn-fleet-worker` child process per
//! worker slot, NDJSON over stdin/stdout.
//!
//! Each spawn attaches a reader thread that pumps the child's stdout
//! lines into the coordinator inbox as [`Envelope::Msg`]s and delivers
//! a final [`Envelope::Gone`] (with the exit code when reapable) at
//! EOF. Stderr is inherited, so worker panic traces land in the
//! operator's terminal/CI log. Unparseable stdout lines are dropped —
//! a worker that prints stray output degrades to silence, and the
//! heartbeat timeout handles genuinely wedged ones.

use crate::merge::shard_path;
use crate::protocol::CoordinatorMsg;
use crate::transport::{Envelope, FleetError, Transport, WorkerHandle};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::Sender;
use std::time::Duration;

/// Finds the worker binary: the `DTN_FLEET_WORKER` environment variable
/// (absolute override, e.g. in tests and CI), then a `dtn-fleet-worker`
/// sibling of the current executable, then one directory up (cargo
/// puts integration-test binaries in `target/<profile>/deps/`).
pub fn locate_worker() -> Result<PathBuf, FleetError> {
    if let Ok(path) = std::env::var("DTN_FLEET_WORKER") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(FleetError::new(format!(
            "DTN_FLEET_WORKER points at {}, which does not exist",
            path.display()
        )));
    }
    let exe = std::env::current_exe()
        .map_err(|e| FleetError::new(format!("cannot locate current executable: {e}")))?;
    let name = format!("dtn-fleet-worker{}", std::env::consts::EXE_SUFFIX);
    let mut dirs: Vec<&Path> = Vec::new();
    if let Some(dir) = exe.parent() {
        dirs.push(dir);
        if let Some(up) = dir.parent() {
            dirs.push(up);
        }
    }
    for dir in &dirs {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(FleetError::new(format!(
        "cannot find {name} next to {} (set DTN_FLEET_WORKER or `cargo build -p dtn-fleet`)",
        exe.display()
    )))
}

/// Spawns `dtn-fleet-worker` subprocesses.
///
/// ```no_run
/// use dtn_fleet::{locate_worker, run_sweep_fleet, FleetOptions, SubprocessTransport};
/// # fn spec() -> dtn_sim::sweep::SweepSpec { unimplemented!() }
///
/// let transport = SubprocessTransport::new(locate_worker()?);
/// let (out, stats) = run_sweep_fleet(
///     &spec(),
///     &transport,
///     &FleetOptions { workers: 4, ..FleetOptions::default() },
/// )?;
/// assert_eq!(stats.transport, "subprocess");
/// # Ok::<(), dtn_fleet::FleetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubprocessTransport {
    /// Path of the worker binary.
    pub worker_bin: PathBuf,
    /// Main checkpoint path; workers get a `--shard` file derived from
    /// it (slot-indexed) for crash insurance. `None` disables shards.
    pub checkpoint: Option<PathBuf>,
    /// Heartbeat period passed to workers, seconds.
    pub heartbeat_secs: f64,
    /// Extra CLI arguments appended to every worker (test fault hooks).
    pub extra_args: Vec<String>,
}

impl SubprocessTransport {
    /// A transport with default knobs for `worker_bin`.
    pub fn new(worker_bin: PathBuf) -> Self {
        SubprocessTransport {
            worker_bin,
            checkpoint: None,
            heartbeat_secs: 0.5,
            extra_args: Vec::new(),
        }
    }
}

impl Transport for SubprocessTransport {
    fn spawn(
        &self,
        uid: u64,
        inbox: Sender<(u64, Envelope)>,
    ) -> Result<Box<dyn WorkerHandle>, FleetError> {
        let mut argv: Vec<String> = vec!["--heartbeat".into(), format!("{}", self.heartbeat_secs)];
        if let Some(main) = &self.checkpoint {
            // Shard names derive from the spawn uid. Uids are never
            // reused within a run, so a respawn gets a fresh shard and
            // the dead incarnation's file survives untouched as crash
            // insurance; merge-on-resume discovers *all* shards
            // regardless of numbering, and the coordinator removes
            // them once consumed.
            argv.push("--shard".into());
            argv.push(shard_path(main, uid as usize).display().to_string());
        }
        argv.extend(self.extra_args.iter().cloned());
        let mut cmd = Command::new(&self.worker_bin);
        cmd.args(&argv)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = cmd.spawn().map_err(|e| {
            FleetError::spawn_failure(format!("spawn worker: {e}"), &self.worker_bin, argv.clone())
        })?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let pid = u64::from(child.id());

        // Reader pump: child stdout → coordinator inbox. Exits at EOF
        // (child died or closed stdout) or when the coordinator drops
        // its receiver.
        std::thread::Builder::new()
            .name(format!("dtn-fleet-pump-{uid}"))
            .spawn(move || {
                let reader = BufReader::new(stdout);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let Ok(msg) = serde_json::from_str(line) else {
                        continue; // stray output, not a protocol frame
                    };
                    if inbox.send((uid, Envelope::Msg(msg))).is_err() {
                        return; // coordinator gone
                    }
                }
                let _ = inbox.send((uid, Envelope::Gone(None)));
            })
            .map_err(|e| FleetError::new(format!("spawn reader thread: {e}")))?;

        Ok(Box::new(SubprocessWorker {
            child,
            stdin: Some(stdin),
            pid,
        }))
    }

    fn label(&self) -> &'static str {
        "subprocess"
    }
}

struct SubprocessWorker {
    child: Child,
    stdin: Option<ChildStdin>,
    pid: u64,
}

impl WorkerHandle for SubprocessWorker {
    fn send(&mut self, msg: &CoordinatorMsg) -> Result<(), FleetError> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| FleetError::new("worker stdin already closed"))?;
        let line = msg.to_line();
        writeln!(stdin, "{line}")
            .and_then(|()| stdin.flush())
            .map_err(|e| FleetError::new(format!("worker pipe: {e}")))
    }

    fn pid(&self) -> u64 {
        self.pid
    }

    fn kill(&mut self) {
        // Closing stdin asks the worker to drain and exit (EOF ==
        // shutdown); give it a short grace period, then hard-kill. The
        // grace period keeps clean shutdowns signal-free while a
        // wedged worker (hung cell) still dies promptly.
        self.stdin = None;
        for _ in 0..20 {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for SubprocessWorker {
    fn drop(&mut self) {
        // Reap unconditionally — a leaked child would outlive the
        // sweep and keep burning CPU on a cell nobody will collect.
        if !matches!(self.child.try_wait(), Ok(Some(_))) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}
