//! The thin fleet-worker shell: parse a handful of flags, then hand
//! stdio to [`dtn_fleet::worker::worker_main`]. All protocol and
//! execution logic lives in the library so the in-process transport
//! and tests share it.
//!
//! Flags:
//!
//! * `--heartbeat SECS` — heartbeat period (default 0.5, 0 disables).
//! * `--shard PATH` — private JSONL shard checkpoint for finished
//!   cells (crash insurance the coordinator merges on resume).
//! * `--fail-once HASH:MARKER` — test hook: exit(17) the first time
//!   cell `HASH` is assigned and `MARKER` does not exist.
//! * `--hang-once HASH:MARKER` — test hook: hang instead (heartbeats
//!   keep flowing; only the coordinator's per-cell timeout fires).

use dtn_fleet::worker::{worker_main, FaultHook, WorkerConfig};
use std::path::PathBuf;

fn main() {
    let mut cfg = WorkerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--heartbeat" => {
                let v = value("--heartbeat");
                cfg.heartbeat_secs = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--heartbeat: not a number: {v}")));
            }
            "--shard" => cfg.shard = Some(PathBuf::from(value("--shard"))),
            "--fail-once" => {
                let v = value("--fail-once");
                cfg.fail_once = Some(FaultHook::parse(&v).unwrap_or_else(|| {
                    die(&format!("--fail-once: expected HASH:MARKER, got {v}"))
                }));
            }
            "--hang-once" => {
                let v = value("--hang-once");
                cfg.hang_once = Some(FaultHook::parse(&v).unwrap_or_else(|| {
                    die(&format!("--hang-once: expected HASH:MARKER, got {v}"))
                }));
            }
            "--help" | "-h" => {
                println!(
                    "dtn-fleet-worker: sweep-cell executor driven over stdin/stdout NDJSON\n\
                     (spawned by the dtn-fleet coordinator; not intended for manual use)\n\n\
                     --heartbeat SECS       heartbeat period (default 0.5, 0 disables)\n\
                     --shard PATH           private shard checkpoint JSONL\n\
                     --fail-once HASH:MARK  test hook: crash on first assignment of HASH\n\
                     --hang-once HASH:MARK  test hook: hang on first assignment of HASH"
                );
                return;
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    let stdin = std::io::stdin();
    let code = worker_main(cfg, stdin.lock(), std::io::stdout());
    std::process::exit(code);
}

fn die(msg: &str) -> ! {
    eprintln!("dtn-fleet-worker: {msg}");
    std::process::exit(2);
}
