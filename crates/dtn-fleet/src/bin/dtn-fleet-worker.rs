//! The thin fleet-worker shell: parse a handful of flags, then hand
//! stdio (or a TCP socket) to [`dtn_fleet::worker::worker_main`]. All
//! protocol and execution logic lives in the library so the in-process
//! transport and tests share it.
//!
//! Flags:
//!
//! * `--connect HOST:PORT` — dial a `--listen`ing coordinator and
//!   speak length-prefixed frames over the socket instead of stdio.
//! * `--token SECRET` — shared-secret token for the TCP handshake.
//! * `--connect-wait SECS` — how long to retry the initial dial
//!   (default 10; workers often start before the coordinator).
//! * `--reconnect` — after a clean shutdown, dial again and serve the
//!   next sweep (figure binaries run several in sequence); exits when
//!   no coordinator answers for a full `--connect-wait` window.
//! * `--heartbeat SECS` — heartbeat period (default 0.5, 0 disables).
//! * `--shard PATH` — private JSONL shard checkpoint for finished
//!   cells (crash insurance the coordinator merges on resume).
//! * `--fail-once HASH:MARKER` — test hook: exit(17) the first time
//!   cell `HASH` is assigned and `MARKER` does not exist.
//! * `--hang-once HASH:MARKER` — test hook: hang instead (heartbeats
//!   keep flowing; only the coordinator's per-cell timeout fires).

use dtn_fleet::tcp::connect_worker_main;
use dtn_fleet::worker::{worker_main, FaultHook, WorkerConfig};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let mut cfg = WorkerConfig::default();
    let mut connect: Option<String> = None;
    let mut connect_wait = 10.0f64;
    let mut reconnect = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--connect" => connect = Some(value("--connect")),
            "--token" => cfg.token = Some(value("--token")),
            "--connect-wait" => {
                let v = value("--connect-wait");
                connect_wait = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--connect-wait: not a number: {v}")));
            }
            "--reconnect" => reconnect = true,
            "--heartbeat" => {
                let v = value("--heartbeat");
                cfg.heartbeat_secs = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("--heartbeat: not a number: {v}")));
            }
            "--shard" => cfg.shard = Some(PathBuf::from(value("--shard"))),
            "--fail-once" => {
                let v = value("--fail-once");
                cfg.fail_once = Some(FaultHook::parse(&v).unwrap_or_else(|| {
                    die(&format!("--fail-once: expected HASH:MARKER, got {v}"))
                }));
            }
            "--hang-once" => {
                let v = value("--hang-once");
                cfg.hang_once = Some(FaultHook::parse(&v).unwrap_or_else(|| {
                    die(&format!("--hang-once: expected HASH:MARKER, got {v}"))
                }));
            }
            "--help" | "-h" => {
                println!(
                    "dtn-fleet-worker: sweep-cell executor driven by a dtn-fleet coordinator\n\
                     (over stdin/stdout NDJSON, or a TCP socket with --connect)\n\n\
                     --connect HOST:PORT    dial a --listen'ing coordinator (TCP mode)\n\
                     --token SECRET         shared-secret token for the TCP handshake\n\
                     --connect-wait SECS    retry window for the dial (default 10)\n\
                     --reconnect            serve sequential sweeps until none answer\n\
                     --heartbeat SECS       heartbeat period (default 0.5, 0 disables)\n\
                     --shard PATH           private shard checkpoint JSONL\n\
                     --fail-once HASH:MARK  test hook: crash on first assignment of HASH\n\
                     --hang-once HASH:MARK  test hook: hang on first assignment of HASH"
                );
                return;
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    let code = match connect {
        Some(addr) => connect_worker_main(
            &addr,
            cfg,
            Duration::from_secs_f64(connect_wait.max(0.0)),
            reconnect,
        ),
        None => {
            let stdin = std::io::stdin();
            worker_main(cfg, stdin.lock(), std::io::stdout())
        }
    };
    std::process::exit(code);
}

fn die(msg: &str) -> ! {
    eprintln!("dtn-fleet-worker: {msg}");
    std::process::exit(2);
}
