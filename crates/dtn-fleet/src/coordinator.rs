//! The fleet coordinator: shards a job list across workers and folds
//! the results into the exact [`CellsOutput`] a single-process
//! [`dtn_sim::sweep::run_cells`] would produce.
//!
//! Supervision model:
//!
//! * Every worker envelope refreshes its liveness clock; subprocess and
//!   thread workers emit heartbeats from a side thread, so silence
//!   longer than [`FleetOptions::worker_timeout_secs`] means the
//!   process is wedged (not merely busy) and it is torn down.
//! * A cell in flight longer than [`FleetOptions::cell_timeout_secs`]
//!   tears its worker down too — a hung cell keeps heartbeating, and
//!   only this timeout can reclaim it.
//! * A torn-down worker's in-flight cell is re-dispatched at the front
//!   of the queue, at most [`FleetOptions::max_cell_retries`] times;
//!   exhaustion degrades the cell to a structured `CellError` (the
//!   sweep completes without it, exactly like an in-process panic).
//! * Worker slots are respawned with fresh uids, at most
//!   [`FleetOptions::max_worker_restarts`] times each. Late messages
//!   from a torn-down incarnation are recognised by their retired uid:
//!   completed results are still accepted (determinism makes them
//!   interchangeable with a retry's), everything else is dropped.
//! * If every worker is dead and respawns are exhausted, remaining
//!   cells fail structurally instead of hanging the sweep.

use crate::merge::{discover_shards, remove_shards};
use crate::protocol::{CoordinatorMsg, WorkerMsg, PROTOCOL_VERSION};
use crate::schedule::longest_first;
use crate::transport::{Envelope, FleetError, Transport, WorkerHandle};
use dtn_sim::sweep::{
    aggregate_sweep, materialize_jobs, open_checkpoint, CellError, CellJob, CellRun, CellsOutput,
    CheckpointError, CheckpointSink, SweepCheckpoint, SweepOutput, SweepProgress, SweepSpec,
};
use dtn_telemetry::{hash_config_json, EventTotals, SweepEvent};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Knobs of a fleet run.
pub struct FleetOptions<'a> {
    /// Worker slots to spawn (clamped to the pending-job count; 0 is
    /// treated as 1).
    pub workers: usize,
    /// Attach a `dtn-validate` validator to every cell.
    pub validate: bool,
    /// Main checkpoint: finished cells stream to it, resume restores
    /// from it *plus* any per-worker shard files found next to it.
    pub checkpoint: Option<SweepCheckpoint>,
    /// Tear a worker down when a single cell runs longer than this
    /// (seconds; 0 disables — a genuinely hung cell then hangs its
    /// worker slot forever, though heartbeats keep the slot "alive").
    pub cell_timeout_secs: f64,
    /// Tear a worker down after this much silence (seconds; 0
    /// disables). Heartbeats default to 0.5 s, so this bounds wedged-
    /// process detection, not cell length.
    pub worker_timeout_secs: f64,
    /// Re-dispatches allowed per cell after worker losses.
    pub max_cell_retries: u32,
    /// Respawns allowed per worker slot.
    pub max_worker_restarts: u32,
    /// Per-cell progress callback (coordinator thread).
    pub progress: Option<&'a (dyn Fn(SweepProgress) + Sync)>,
    /// Structured lifecycle-event callback (coordinator thread).
    pub events: Option<&'a (dyn Fn(&SweepEvent) + Sync)>,
}

impl Default for FleetOptions<'_> {
    fn default() -> Self {
        FleetOptions {
            workers: 1,
            validate: false,
            checkpoint: None,
            cell_timeout_secs: 0.0,
            worker_timeout_secs: 30.0,
            max_cell_retries: 2,
            max_worker_restarts: 8,
            progress: None,
            events: None,
        }
    }
}

/// Per-slot utilization numbers for [`FleetStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerUtilization {
    /// Worker slot index (stable across respawns).
    pub worker: usize,
    /// Last known OS pid (0 for in-process transports).
    pub pid: u64,
    /// Cells this slot completed.
    pub cells_completed: usize,
    /// Seconds the slot had a cell in flight.
    pub busy_secs: f64,
    /// `busy_secs` over the fleet's wall clock (0..=1).
    pub utilization: f64,
    /// Times this slot was respawned.
    pub restarts: u32,
}

/// What the fleet did, beyond the sweep output itself.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Transport label (`"subprocess"`, `"thread"`, `"tcp"`).
    pub transport: String,
    /// Worker slots spawned.
    pub workers: usize,
    /// Cells handed to workers (re-dispatches included).
    pub dispatched: u64,
    /// Cells re-dispatched after a worker loss.
    pub retries: u64,
    /// Full config bodies streamed to workers (first-sight pushes plus
    /// `ConfigMissing` re-pushes); every other assignment carried only
    /// the config hash.
    pub config_pushes: u64,
    /// Worker incarnations torn down (timeouts, exits, pipe failures).
    pub workers_lost: u64,
    /// Respawns across all slots.
    pub worker_restarts: u64,
    /// Wall-clock span of the fleet run, seconds.
    pub wall_clock_secs: f64,
    /// Per-slot utilization.
    pub per_worker: Vec<WorkerUtilization>,
}

/// Result of [`run_fleet`].
#[derive(Debug)]
pub struct FleetRun {
    /// Per-job outcomes, identical in shape (and, for completed cells,
    /// bit-identical in content) to an in-process `run_cells`.
    pub output: CellsOutput,
    /// Distribution-layer accounting.
    pub stats: FleetStats,
}

/// Stand-in handle for a slot whose spawn failed: unreachable by
/// construction.
struct DeadHandle;

impl WorkerHandle for DeadHandle {
    fn send(&mut self, _msg: &CoordinatorMsg) -> Result<(), FleetError> {
        Err(FleetError::new("worker never spawned"))
    }
    fn pid(&self) -> u64 {
        0
    }
    fn kill(&mut self) {}
}

struct WorkerSlot {
    handle: Box<dyn WorkerHandle>,
    uid: u64,
    pid: u64,
    dead: bool,
    assigned: Option<usize>,
    assigned_at: Instant,
    last_seen: Instant,
    restarts: u32,
    cells_completed: usize,
    busy_secs: f64,
    /// Config hashes whose bodies this incarnation has been sent.
    /// Respawns start empty — a fresh worker has an empty cache.
    pushed: HashSet<String>,
    /// Consecutive `ConfigMissing` NACKs for the current assignment;
    /// bounded so a pathological worker cannot ping-pong forever.
    nacks: u32,
}

impl WorkerSlot {
    fn new(handle: Box<dyn WorkerHandle>, uid: u64, restarts: u32) -> Self {
        let pid = handle.pid();
        WorkerSlot {
            handle,
            uid,
            pid,
            dead: false,
            assigned: None,
            assigned_at: Instant::now(),
            last_seen: Instant::now(),
            restarts,
            cells_completed: 0,
            busy_secs: 0.0,
            pushed: HashSet::new(),
            nacks: 0,
        }
    }
}

struct Fleet<'a, 'b> {
    jobs: &'a [CellJob],
    configs: &'a [String],
    hashes: &'a [String],
    opts: &'a FleetOptions<'b>,
    transport: &'a dyn Transport,
    inbox_tx: Sender<(u64, Envelope)>,
    workers: Vec<WorkerSlot>,
    uid_to_slot: HashMap<u64, usize>,
    next_uid: u64,
    pending: VecDeque<usize>,
    slots: Vec<Option<Result<CellRun, CellError>>>,
    sink: Option<CheckpointSink>,
    totals: EventTotals,
    completed: usize,
    attempts: Vec<u32>,
    retries_left: Vec<u32>,
    dispatched: u64,
    retries: u64,
    config_pushes: u64,
    workers_lost: u64,
    worker_restarts: u64,
}

impl Fleet<'_, '_> {
    fn total(&self) -> usize {
        self.jobs.len()
    }

    fn emit(&self, ev: SweepEvent) {
        if let Some(f) = self.opts.events {
            f(&ev);
        }
    }

    fn spawn_slot(&mut self, slot: usize, restarts: u32) -> bool {
        let uid = self.next_uid;
        self.next_uid += 1;
        match self.transport.spawn(uid, self.inbox_tx.clone()) {
            Ok(handle) => {
                let worker = WorkerSlot::new(handle, uid, restarts);
                self.emit(SweepEvent::WorkerSpawned {
                    worker: slot as u64,
                    pid: worker.pid,
                    restarts: u64::from(restarts),
                });
                self.uid_to_slot.insert(uid, slot);
                if slot == self.workers.len() {
                    self.workers.push(worker);
                } else {
                    self.workers[slot] = worker;
                }
                true
            }
            Err(e) => {
                self.emit(SweepEvent::WorkerLost {
                    worker: slot as u64,
                    reason: format!("spawn failed: {}", e.message),
                });
                if slot == self.workers.len() {
                    // Keep slot indices dense: a never-alive slot still
                    // occupies its position (as a dead placeholder).
                    let mut placeholder = WorkerSlot::new(Box::new(DeadHandle), uid, restarts);
                    placeholder.dead = true;
                    self.workers.push(placeholder);
                } else {
                    self.workers[slot].dead = true;
                }
                false
            }
        }
    }

    /// Hands the next pending job (if any) to live, idle slot `w`.
    fn dispatch_to(&mut self, w: usize) {
        while !self.workers[w].dead && self.workers[w].assigned.is_none() {
            let Some(idx) = self.pending.pop_front() else {
                return;
            };
            if self.slots[idx].is_some() {
                continue; // a late result already filled this cell
            }
            let retry = self.attempts[idx];
            // Config-push by hash: the body streams once per worker
            // incarnation; every Assign carries only the hash.
            if !self.workers[w].pushed.contains(&self.hashes[idx]) {
                let push = CoordinatorMsg::Config {
                    config_hash: self.hashes[idx].clone(),
                    config: self.configs[idx].clone(),
                };
                if let Err(e) = self.workers[w].handle.send(&push) {
                    self.pending.push_front(idx);
                    self.worker_lost(w, format!("config push failed: {}", e.message), true);
                    return;
                }
                self.workers[w].pushed.insert(self.hashes[idx].clone());
                self.config_pushes += 1;
            }
            let msg = CoordinatorMsg::Assign {
                index: idx,
                label: self.jobs[idx].label.clone(),
                policy: self.jobs[idx].policy.clone(),
                seed: self.jobs[idx].cfg.seed,
                config_hash: self.hashes[idx].clone(),
                validate: self.opts.validate,
                retry,
            };
            match self.workers[w].handle.send(&msg) {
                Ok(()) => {
                    self.attempts[idx] += 1;
                    self.dispatched += 1;
                    self.workers[w].nacks = 0;
                    self.workers[w].assigned = Some(idx);
                    self.workers[w].assigned_at = Instant::now();
                    self.emit(SweepEvent::CellDispatched {
                        index: idx as u64,
                        total: self.total() as u64,
                        config_hash: self.hashes[idx].clone(),
                        worker: w as u64,
                        retry: u64::from(retry),
                    });
                    return;
                }
                Err(e) => {
                    self.pending.push_front(idx);
                    self.worker_lost(w, format!("assign failed: {}", e.message), true);
                    return;
                }
            }
        }
    }

    /// Dispatches to every idle live worker (idempotent).
    fn pump(&mut self) {
        for w in 0..self.workers.len() {
            if !self.workers[w].dead && self.workers[w].assigned.is_none() {
                self.dispatch_to(w);
            }
        }
    }

    /// Tears slot `w` down, requeues (or fails) its in-flight cell, and
    /// respawns the slot when work remains and the budget allows.
    fn worker_lost(&mut self, w: usize, reason: String, respawn: bool) {
        if self.workers[w].dead {
            return;
        }
        self.workers_lost += 1;
        self.workers[w].dead = true;
        self.workers[w].busy_secs += self.workers[w]
            .assigned
            .map(|_| self.workers[w].assigned_at.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        self.workers[w].handle.kill();
        self.emit(SweepEvent::WorkerLost {
            worker: w as u64,
            reason: reason.clone(),
        });
        if let Some(idx) = self.workers[w].assigned.take() {
            if self.slots[idx].is_none() {
                if self.retries_left[idx] > 0 {
                    self.retries_left[idx] -= 1;
                    self.retries += 1;
                    self.pending.push_front(idx);
                } else {
                    self.record(
                        idx,
                        Err(CellError {
                            index: idx,
                            config_hash: self.hashes[idx].clone(),
                            label: self.jobs[idx].label.clone(),
                            policy: self.jobs[idx].policy.clone(),
                            seed: self.jobs[idx].cfg.seed,
                            panic: format!("fleet worker lost ({reason}); retry budget exhausted"),
                            config: self.configs[idx].clone(),
                        }),
                    );
                }
            }
        }
        let restarts = self.workers[w].restarts;
        if respawn
            && !self.pending.is_empty()
            && restarts < self.opts.max_worker_restarts
            && self.spawn_slot(w, restarts + 1)
        {
            self.worker_restarts += 1;
            self.dispatch_to(w);
        }
    }

    /// Fills job slot `idx` (exactly once) with a result, streaming it
    /// to the checkpoint and firing progress/lifecycle callbacks.
    fn record(&mut self, idx: usize, outcome: Result<CellRun, CellError>) {
        if self.slots[idx].is_some() {
            return; // duplicate (late result raced a retry) — first wins
        }
        // A late duplicate still queued for retry must not re-run.
        self.pending.retain(|&i| i != idx);
        match &outcome {
            Ok(run) => {
                if let Some(sink) = &self.sink {
                    sink.append(run);
                }
                self.totals.absorb(&run.fingerprint.events);
                self.emit(SweepEvent::CellCompleted {
                    index: idx as u64,
                    total: self.total() as u64,
                    config_hash: run.config_hash.clone(),
                    label: self.jobs[idx].label.clone(),
                    seed: run.seed,
                    violations: run.violations,
                    duration_ms: (run.duration_secs * 1_000.0) as u64,
                });
            }
            Err(err) => {
                self.emit(SweepEvent::CellFailed {
                    index: idx as u64,
                    total: self.total() as u64,
                    config_hash: err.config_hash.clone(),
                    label: err.label.clone(),
                    seed: err.seed,
                    panic: err.panic.clone(),
                });
            }
        }
        self.slots[idx] = Some(outcome);
        self.completed += 1;
        if let Some(progress) = self.opts.progress {
            progress(SweepProgress {
                completed: self.completed,
                total: self.total(),
                axis_label: self.jobs[idx].label.clone(),
                policy: self.jobs[idx].policy.clone(),
            });
        }
    }

    /// True when `uid` is the live incarnation of its slot.
    fn is_current(&self, uid: u64) -> Option<usize> {
        let &slot = self.uid_to_slot.get(&uid)?;
        (self.workers[slot].uid == uid && !self.workers[slot].dead).then_some(slot)
    }

    fn handle_envelope(&mut self, uid: u64, envelope: Envelope) {
        let current = self.is_current(uid);
        if let Some(w) = current {
            self.workers[w].last_seen = Instant::now();
        }
        match envelope {
            Envelope::Msg(WorkerMsg::Hello { pid, protocol, .. }) => {
                if let Some(w) = current {
                    self.workers[w].pid = pid;
                    if protocol != PROTOCOL_VERSION {
                        self.worker_lost(
                            w,
                            format!(
                                "protocol mismatch (worker speaks v{protocol}, \
                                 coordinator v{PROTOCOL_VERSION})"
                            ),
                            false, // a respawn would mismatch again
                        );
                    }
                }
            }
            Envelope::Msg(WorkerMsg::Heartbeat { .. })
            | Envelope::Msg(WorkerMsg::Started { .. }) => {
                // Liveness already refreshed above.
            }
            Envelope::Msg(WorkerMsg::ConfigMissing { index, config_hash }) => {
                // The worker has no body for the hash we assigned
                // (fresh incarnation, or evicted after an earlier run
                // of the same cell): re-push and re-assign. Bounded so
                // a worker that keeps NACKing what we keep pushing is
                // torn down instead of ping-ponging forever.
                let Some(w) = current else { return }; // retired uid
                if self.workers[w].assigned != Some(index)
                    || self.hashes.get(index) != Some(&config_hash)
                {
                    return; // stale NACK for a superseded assignment
                }
                self.workers[w].nacks += 1;
                if self.workers[w].nacks > 3 {
                    self.worker_lost(w, "config re-push loop".to_string(), true);
                    return;
                }
                let push = CoordinatorMsg::Config {
                    config_hash: config_hash.clone(),
                    config: self.configs[index].clone(),
                };
                let reassign = CoordinatorMsg::Assign {
                    index,
                    label: self.jobs[index].label.clone(),
                    policy: self.jobs[index].policy.clone(),
                    seed: self.jobs[index].cfg.seed,
                    config_hash: config_hash.clone(),
                    validate: self.opts.validate,
                    retry: self.attempts[index].saturating_sub(1),
                };
                self.config_pushes += 1;
                self.workers[w].pushed.insert(config_hash);
                let mut sent = self.workers[w].handle.send(&push);
                if sent.is_ok() {
                    sent = self.workers[w].handle.send(&reassign);
                }
                if let Err(e) = sent {
                    // worker_lost requeues the still-assigned cell.
                    self.worker_lost(w, format!("config re-push failed: {}", e.message), true);
                }
            }
            Envelope::Msg(WorkerMsg::Done { run }) => {
                let idx = run.index;
                // Paranoia gate: the record must be for the cell we
                // think it is (guards against a worker replying out of
                // band after a coordinator restart).
                if idx < self.total() && self.hashes[idx] == run.config_hash {
                    self.record(idx, Ok(run));
                }
                if let Some(w) = current {
                    if self.workers[w].assigned == Some(idx) {
                        self.workers[w].assigned = None;
                        self.workers[w].busy_secs +=
                            self.workers[w].assigned_at.elapsed().as_secs_f64();
                        self.workers[w].cells_completed += 1;
                    }
                    self.dispatch_to(w);
                }
            }
            Envelope::Msg(WorkerMsg::Failed {
                index,
                config_hash,
                panic,
            }) => {
                // A cell panic is deterministic — retrying would panic
                // again, so degrade to a CellError exactly like the
                // in-process runner.
                if index < self.total() && self.hashes[index] == config_hash {
                    self.record(
                        index,
                        Err(CellError {
                            index,
                            config_hash,
                            label: self.jobs[index].label.clone(),
                            policy: self.jobs[index].policy.clone(),
                            seed: self.jobs[index].cfg.seed,
                            panic,
                            config: self.configs[index].clone(),
                        }),
                    );
                }
                if let Some(w) = current {
                    if self.workers[w].assigned == Some(index) {
                        self.workers[w].assigned = None;
                        self.workers[w].busy_secs +=
                            self.workers[w].assigned_at.elapsed().as_secs_f64();
                    }
                    self.dispatch_to(w);
                }
            }
            Envelope::Gone(code) => {
                if let Some(w) = current {
                    let reason = match code {
                        Some(c) => format!("worker exited with code {c}"),
                        None => "worker stream closed".to_string(),
                    };
                    self.worker_lost(w, reason, true);
                }
            }
        }
    }

    /// Revives dead worker slots with connections the transport has
    /// queued (TCP late-joiners). Slots whose restart budget is spent
    /// stay dead; the connection waits for the next eligible loss.
    fn adopt_waiting(&mut self) {
        while self.transport.waiting_workers() > 0 && !self.pending.is_empty() {
            let Some(w) = (0..self.workers.len()).find(|&w| {
                self.workers[w].dead && self.workers[w].restarts < self.opts.max_worker_restarts
            }) else {
                break;
            };
            let restarts = self.workers[w].restarts;
            if !self.spawn_slot(w, restarts + 1) {
                break;
            }
            self.worker_restarts += 1;
            self.dispatch_to(w);
        }
    }

    /// Clock-driven supervision: cell timeouts and heartbeat silence.
    fn tick(&mut self) {
        self.adopt_waiting();
        for w in 0..self.workers.len() {
            if self.workers[w].dead {
                continue;
            }
            if self.workers[w].assigned.is_some()
                && self.opts.cell_timeout_secs > 0.0
                && self.workers[w].assigned_at.elapsed().as_secs_f64() > self.opts.cell_timeout_secs
            {
                self.worker_lost(
                    w,
                    format!(
                        "cell timeout: in flight {:.1}s > {:.1}s",
                        self.workers[w].assigned_at.elapsed().as_secs_f64(),
                        self.opts.cell_timeout_secs
                    ),
                    true,
                );
                continue;
            }
            if self.opts.worker_timeout_secs > 0.0
                && self.workers[w].last_seen.elapsed().as_secs_f64() > self.opts.worker_timeout_secs
            {
                self.worker_lost(
                    w,
                    format!("heartbeat silence > {:.1}s", self.opts.worker_timeout_secs),
                    true,
                );
            }
        }
        self.pump();
    }

    /// When no worker is left to run them, pending cells fail
    /// structurally instead of hanging the sweep.
    fn fail_stranded(&mut self) {
        if self.workers.iter().any(|w| !w.dead) {
            return;
        }
        // Last chance: a late-joining TCP worker can rescue a fleet
        // whose spawned workers all died.
        self.adopt_waiting();
        if self.workers.iter().any(|w| !w.dead) {
            return;
        }
        while let Some(idx) = self.pending.pop_front() {
            if self.slots[idx].is_some() {
                continue;
            }
            self.record(
                idx,
                Err(CellError {
                    index: idx,
                    config_hash: self.hashes[idx].clone(),
                    label: self.jobs[idx].label.clone(),
                    policy: self.jobs[idx].policy.clone(),
                    seed: self.jobs[idx].cfg.seed,
                    panic: "fleet stranded: all workers dead and respawn budget exhausted"
                        .to_string(),
                    config: self.configs[idx].clone(),
                }),
            );
        }
    }
}

/// Runs an arbitrary job list on a worker fleet. The distributed
/// counterpart of [`dtn_sim::sweep::run_cells`]: same outputs for the
/// same jobs, with cells executed in worker processes/threads instead
/// of a local thread pool.
pub fn run_fleet(
    jobs: &[CellJob],
    transport: &dyn Transport,
    opts: &FleetOptions<'_>,
) -> Result<FleetRun, FleetError> {
    let started = Instant::now();
    let total = jobs.len();
    let configs: Vec<String> = jobs
        .iter()
        .map(|j| serde_json::to_string(&j.cfg).expect("config serialises"))
        .collect();
    let hashes: Vec<String> = configs.iter().map(|c| hash_config_json(c)).collect();

    let mut slots: Vec<Option<Result<CellRun, CellError>>> = (0..total).map(|_| None).collect();
    let mut totals = EventTotals::default();
    let mut resumed = 0usize;
    let mut checkpoint_error: Option<CheckpointError> = None;
    let mut restored_runs: Vec<Option<CellRun>> = vec![None; total];

    // Restore the main checkpoint plus any shard files a killed fleet
    // left behind, *before* any worker can truncate its shard.
    let sink = match &opts.checkpoint {
        Some(ck) => {
            let shards = if ck.resume {
                discover_shards(&ck.path)
            } else {
                Vec::new()
            };
            let restore = open_checkpoint(ck, &hashes, &shards);
            if restore.error.is_none() {
                // Everything the shards held is folded into the main
                // file now; stale shards must not shadow future runs.
                remove_shards(&shards);
            }
            for (i, run) in restore.restored.into_iter().enumerate() {
                let Some(run) = run else { continue };
                totals.absorb(&run.fingerprint.events);
                if let Some(ev) = opts.events {
                    ev(&SweepEvent::CellSkipped {
                        index: i as u64,
                        total: total as u64,
                        config_hash: run.config_hash.clone(),
                        label: jobs[i].label.clone(),
                        seed: jobs[i].cfg.seed,
                    });
                }
                restored_runs[i] = Some(run.clone());
                slots[i] = Some(Ok(run));
                resumed += 1;
            }
            if ck.resume {
                if let Some(ev) = opts.events {
                    ev(&SweepEvent::CheckpointResumed {
                        path: ck.path.display().to_string(),
                        cells: resumed as u64,
                    });
                }
            }
            checkpoint_error = restore.error;
            restore.sink
        }
        None => None,
    };

    // Longest-job-first over the cells still to run, estimated from
    // restored durations (canonical order on a cold start).
    let pending_indices: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();
    let pending: VecDeque<usize> = longest_first(jobs, &pending_indices, &restored_runs).into();

    let (inbox_tx, inbox_rx) = channel::<(u64, Envelope)>();
    let mut fleet = Fleet {
        jobs,
        configs: &configs,
        hashes: &hashes,
        opts,
        transport,
        inbox_tx,
        workers: Vec::new(),
        uid_to_slot: HashMap::new(),
        next_uid: 0,
        pending,
        slots,
        sink,
        totals,
        completed: resumed,
        attempts: vec![0; total],
        retries_left: vec![opts.max_cell_retries; total],
        dispatched: 0,
        retries: 0,
        config_pushes: 0,
        workers_lost: 0,
        worker_restarts: 0,
    };

    let n_workers = opts.workers.max(1).min(fleet.pending.len().max(1));
    if !fleet.pending.is_empty() {
        for slot in 0..n_workers {
            fleet.spawn_slot(slot, 0);
        }
        if fleet.workers.iter().all(|w| w.dead) {
            return Err(FleetError::new(format!(
                "no worker could be spawned (transport {})",
                transport.label()
            )));
        }
        fleet.pump();

        let tick = Duration::from_millis(50);
        while fleet.completed < total {
            match inbox_rx.recv_timeout(tick) {
                Ok((uid, envelope)) => fleet.handle_envelope(uid, envelope),
                Err(RecvTimeoutError::Timeout) => fleet.tick(),
                Err(RecvTimeoutError::Disconnected) => break, // unreachable: we hold a sender
            }
            fleet.fail_stranded();
        }

        // Drain: ask live workers to exit, then tear everything down.
        for w in &mut fleet.workers {
            if !w.dead {
                let _ = w.handle.send(&CoordinatorMsg::Shutdown);
            }
            w.handle.kill();
        }
    }

    let wall_clock_secs = started.elapsed().as_secs_f64();
    let checkpoint_error = checkpoint_error.or_else(|| fleet.sink.as_ref().and_then(|s| s.error()));
    if let Some(err) = &checkpoint_error {
        fleet.emit(SweepEvent::CheckpointFailed {
            path: err.path.clone(),
            error: err.error.clone(),
        });
    } else if let Some(ck) = &opts.checkpoint {
        // Every completed cell is in the main checkpoint; this run's
        // shards are consumed crash insurance.
        remove_shards(&discover_shards(&ck.path));
    }

    let mut runs = Vec::with_capacity(total);
    let mut errors = Vec::new();
    let mut violations = 0u64;
    for slot in fleet.slots {
        match slot.expect("fleet left a job unresolved") {
            Ok(run) => {
                violations += run.violations;
                runs.push(Some(run));
            }
            Err(err) => {
                errors.push(err);
                runs.push(None);
            }
        }
    }
    let per_worker: Vec<WorkerUtilization> = fleet
        .workers
        .iter()
        .enumerate()
        .map(|(w, slot)| WorkerUtilization {
            worker: w,
            pid: slot.pid,
            cells_completed: slot.cells_completed,
            busy_secs: slot.busy_secs,
            utilization: if wall_clock_secs > 0.0 {
                (slot.busy_secs / wall_clock_secs).clamp(0.0, 1.0)
            } else {
                0.0
            },
            restarts: slot.restarts,
        })
        .collect();

    Ok(FleetRun {
        output: CellsOutput {
            runs,
            errors,
            totals: fleet.totals,
            violations,
            resumed,
            executed: total - resumed,
            checkpoint_error,
        },
        stats: FleetStats {
            transport: transport.label().to_string(),
            workers: fleet.workers.len(),
            dispatched: fleet.dispatched,
            retries: fleet.retries,
            config_pushes: fleet.config_pushes,
            workers_lost: fleet.workers_lost,
            worker_restarts: fleet.worker_restarts,
            wall_clock_secs,
            per_worker,
        },
    })
}

/// Runs a [`SweepSpec`] on a worker fleet — the distributed
/// counterpart of [`dtn_sim::sweep::run_sweep_hardened`], with
/// bit-identical [`SweepOutput`] for the same spec.
pub fn run_sweep_fleet(
    spec: &SweepSpec,
    transport: &dyn Transport,
    opts: &FleetOptions<'_>,
) -> Result<(SweepOutput, FleetStats), FleetError> {
    let jobs = materialize_jobs(spec);
    let merged = FleetOptions {
        workers: opts.workers,
        validate: opts.validate || spec.validate,
        checkpoint: opts.checkpoint.clone(),
        cell_timeout_secs: opts.cell_timeout_secs,
        worker_timeout_secs: opts.worker_timeout_secs,
        max_cell_retries: opts.max_cell_retries,
        max_worker_restarts: opts.max_worker_restarts,
        progress: opts.progress,
        events: opts.events,
    };
    let fleet = run_fleet(&jobs, transport, &merged)?;
    Ok((aggregate_sweep(spec, fleet.output), fleet.stats))
}
