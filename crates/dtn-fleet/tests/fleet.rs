//! End-to-end fleet tests against real subprocess workers: bit-identical
//! distribution, multi-source checkpoint merge/resume, and supervision
//! (worker kills, hangs, spawn failures) under fault injection.

use dtn_fleet::{run_fleet, run_sweep_fleet, FleetOptions, SubprocessTransport, ThreadTransport};
use dtn_sim::config::{presets, PolicyKind};
use dtn_sim::sweep::{
    load_checkpoint, materialize_jobs, run_sweep_hardened, SweepAxis, SweepCheckpoint,
    SweepOptions, SweepSpec,
};
use dtn_telemetry::{hash_config_json, SweepEvent};
use parking_lot::Mutex;
use std::path::PathBuf;

/// 2 axis points x 2 policies x 2 seeds = 8 cells, each well under a
/// second — big enough to spread over workers, small enough for CI.
fn quick_spec() -> SweepSpec {
    let mut base = presets::smoke();
    base.duration_secs = 600.0;
    base.n_nodes = 20;
    SweepSpec {
        base,
        axis: SweepAxis::InitialCopies(vec![8, 16]),
        policies: vec![PolicyKind::Fifo, PolicyKind::Sdsrp],
        seeds: vec![1, 2],
        validate: false,
    }
}

fn temp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("dtn-fleet-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_dtn-fleet-worker"))
}

fn job_hashes(spec: &SweepSpec) -> Vec<String> {
    materialize_jobs(spec)
        .iter()
        .map(|j| hash_config_json(&serde_json::to_string(&j.cfg).expect("config serialises")))
        .collect()
}

#[test]
fn subprocess_fleet_matches_single_process_bit_identically() {
    let spec = quick_spec();
    let reference = run_sweep_hardened(&spec, &SweepOptions::default());
    assert!(reference.errors.is_empty());

    let transport = SubprocessTransport::new(worker_bin());
    let (out, stats) = run_sweep_fleet(
        &spec,
        &transport,
        &FleetOptions {
            workers: 2,
            ..FleetOptions::default()
        },
    )
    .expect("fleet runs");

    assert!(out.errors.is_empty());
    assert_eq!(out.executed, 8);
    assert_eq!(
        out.runs, reference.runs,
        "per-run records (fingerprints included)"
    );
    assert_eq!(out.cells, reference.cells, "aggregated cells");
    assert_eq!(out.totals, reference.totals, "event totals");
    assert_eq!(stats.transport, "subprocess");
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.dispatched, 8);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.workers_lost, 0);
    assert!(stats.per_worker.iter().all(|w| w.pid != 0));
    assert_eq!(
        stats
            .per_worker
            .iter()
            .map(|w| w.cells_completed)
            .sum::<usize>(),
        8
    );
}

#[test]
fn thread_fleet_matches_single_process_too() {
    let spec = quick_spec();
    let reference = run_sweep_hardened(&spec, &SweepOptions::default());
    let (out, stats) = run_sweep_fleet(
        &spec,
        &ThreadTransport::default(),
        &FleetOptions {
            workers: 3,
            ..FleetOptions::default()
        },
    )
    .expect("fleet runs");
    assert!(out.errors.is_empty());
    assert_eq!(out.runs, reference.runs);
    assert_eq!(out.cells, reference.cells);
    assert_eq!(out.totals, reference.totals);
    assert_eq!(stats.transport, "thread");
}

#[test]
fn fleet_resume_merges_main_and_shard_checkpoints_bit_identically() {
    let spec = quick_spec();
    let ck_full = temp_path("ref-full");
    let reference = run_sweep_hardened(
        &spec,
        &SweepOptions {
            checkpoint: Some(SweepCheckpoint {
                path: ck_full.clone(),
                resume: false,
            }),
            ..SweepOptions::default()
        },
    );
    assert!(reference.errors.is_empty());
    let body = std::fs::read_to_string(&ck_full).expect("reference checkpoint");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 8);

    // Reconstruct the wreckage a killed 2-worker fleet leaves behind:
    // a main checkpoint with two cells and a torn third line, one shard
    // holding two more cells, and a second shard with one cell plus a
    // torn tail of another. 5 distinct whole cells survive.
    let ck = temp_path("fleet-merge");
    let mut main_body = lines[..2].join("\n");
    main_body.push('\n');
    main_body.push_str(&lines[2][..lines[2].len() / 2]);
    std::fs::write(&ck, &main_body).expect("write main checkpoint");
    let shard0 = dtn_fleet::shard_path(&ck, 0);
    std::fs::write(&shard0, format!("{}\n{}\n", lines[2], lines[3])).expect("write shard 0");
    let shard1 = dtn_fleet::shard_path(&ck, 1);
    std::fs::write(
        &shard1,
        format!("{}\n{}", lines[4], &lines[5][..lines[5].len() / 2]),
    )
    .expect("write shard 1");

    let events: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let record = |ev: &SweepEvent| events.lock().push(ev.kind().to_string());
    let transport = SubprocessTransport {
        checkpoint: Some(ck.clone()),
        ..SubprocessTransport::new(worker_bin())
    };
    let (out, _stats) = run_sweep_fleet(
        &spec,
        &transport,
        &FleetOptions {
            workers: 2,
            checkpoint: Some(SweepCheckpoint {
                path: ck.clone(),
                resume: true,
            }),
            events: Some(&record),
            ..FleetOptions::default()
        },
    )
    .expect("fleet resumes");

    assert!(out.errors.is_empty());
    assert_eq!(
        out.resumed, 5,
        "main(2) + shard0(2) + shard1(1), torn tails dropped"
    );
    assert_eq!(out.executed, 3);
    assert_eq!(
        out.runs, reference.runs,
        "bit-identical to uninterrupted run"
    );
    assert_eq!(out.cells, reference.cells);
    assert_eq!(out.totals, reference.totals);
    let kinds = events.lock();
    assert_eq!(kinds.iter().filter(|k| *k == "cell_skipped").count(), 5);
    assert!(kinds.iter().any(|k| k == "checkpoint_resumed"));

    // Shards were consumed into the main checkpoint and removed; the
    // main file is whole again (a further resume executes nothing).
    assert!(!shard0.exists(), "consumed shard removed");
    assert!(!shard1.exists(), "consumed shard removed");
    assert!(dtn_fleet::discover_shards(&ck).is_empty());
    assert_eq!(load_checkpoint(&ck).len(), 8);
    let restored = run_sweep_hardened(
        &spec,
        &SweepOptions {
            checkpoint: Some(SweepCheckpoint {
                path: ck.clone(),
                resume: true,
            }),
            ..SweepOptions::default()
        },
    );
    assert_eq!(restored.executed, 0);
    assert_eq!(restored.resumed, 8);
    assert_eq!(restored.runs, reference.runs);

    for path in [ck_full, ck] {
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn worker_killed_mid_cell_is_retried_to_completion() {
    let spec = quick_spec();
    let reference = run_sweep_hardened(&spec, &SweepOptions::default());
    let victim = job_hashes(&spec)[3].clone();
    let marker = temp_path("fail-once-marker");

    let events: Mutex<Vec<SweepEvent>> = Mutex::new(Vec::new());
    let record = |ev: &SweepEvent| events.lock().push(ev.clone());
    let transport = SubprocessTransport {
        extra_args: vec![
            "--fail-once".into(),
            format!("{victim}:{}", marker.display()),
        ],
        ..SubprocessTransport::new(worker_bin())
    };
    let (out, stats) = run_sweep_fleet(
        &spec,
        &transport,
        &FleetOptions {
            workers: 2,
            events: Some(&record),
            ..FleetOptions::default()
        },
    )
    .expect("fleet survives the kill");

    // The sweep completed — the killed worker's cell was re-dispatched
    // and the output is still bit-identical to the reference.
    assert!(out.errors.is_empty(), "errors: {:?}", out.errors);
    assert_eq!(out.runs, reference.runs);
    assert_eq!(out.cells, reference.cells);
    assert!(stats.workers_lost >= 1, "stats: {stats:?}");
    assert!(stats.retries >= 1);
    assert!(stats.worker_restarts >= 1);
    assert!(stats.dispatched > 8, "the victim cell was dispatched twice");

    let kinds = events.lock();
    assert!(
        kinds
            .iter()
            .any(|ev| matches!(ev, SweepEvent::WorkerLost { .. })),
        "worker loss recorded in telemetry"
    );
    assert!(
        kinds.iter().any(|ev| matches!(
            ev,
            SweepEvent::CellDispatched { config_hash, retry, .. }
                if *config_hash == victim && *retry > 0
        )),
        "victim cell re-dispatched"
    );
    let _ = std::fs::remove_file(&marker);
}

#[test]
fn hung_worker_blows_cell_timeout_and_cell_is_retried() {
    let mut spec = quick_spec();
    // 1 axis point x 2 policies x 1 seed = 2 cells keeps the (real)
    // timeout wait short.
    spec.axis = SweepAxis::InitialCopies(vec![8]);
    spec.seeds = vec![1];
    let reference = run_sweep_hardened(&spec, &SweepOptions::default());
    let victim = job_hashes(&spec)[0].clone();
    let marker = temp_path("hang-once-marker");

    let transport = SubprocessTransport {
        extra_args: vec![
            "--hang-once".into(),
            format!("{victim}:{}", marker.display()),
        ],
        ..SubprocessTransport::new(worker_bin())
    };
    let (out, stats) = run_sweep_fleet(
        &spec,
        &transport,
        &FleetOptions {
            workers: 1,
            cell_timeout_secs: 2.0,
            ..FleetOptions::default()
        },
    )
    .expect("fleet recovers from the hang");

    assert!(out.errors.is_empty(), "errors: {:?}", out.errors);
    assert_eq!(out.runs, reference.runs);
    assert!(stats.workers_lost >= 1);
    assert!(stats.retries >= 1);
    let _ = std::fs::remove_file(&marker);
}

#[test]
fn unspawnable_workers_fail_the_fleet_not_hang_it() {
    let spec = quick_spec();
    let transport = SubprocessTransport::new(PathBuf::from("/no/such/worker-bin"));
    let err = run_sweep_fleet(&spec, &transport, &FleetOptions::default())
        .expect_err("no worker can spawn");
    assert!(err.message.contains("no worker could be spawned"), "{err}");
}

#[test]
fn dying_workers_exhaust_budgets_into_structured_cell_errors() {
    // A "worker" that exits immediately without speaking the protocol:
    // every spawn is lost, budgets run out, and the sweep degrades to
    // per-cell errors instead of hanging or aborting.
    let bin = PathBuf::from("/bin/false");
    if !bin.is_file() {
        return; // exotic platform; the test is linux-oriented
    }
    let mut spec = quick_spec();
    spec.axis = SweepAxis::InitialCopies(vec![8]);
    spec.seeds = vec![1]; // 2 cells
    let transport = SubprocessTransport::new(bin);
    let (out, stats) = run_sweep_fleet(
        &spec,
        &transport,
        &FleetOptions {
            workers: 1,
            max_cell_retries: 1,
            max_worker_restarts: 2,
            ..FleetOptions::default()
        },
    )
    .expect("fleet degrades gracefully");
    assert_eq!(out.errors.len(), 2, "every cell failed structurally");
    assert!(out.runs.iter().all(|r| r.is_none()));
    assert!(out
        .errors
        .iter()
        .all(|e| e.panic.contains("worker lost") || e.panic.contains("stranded")));
    assert!(stats.workers_lost >= 1);
}

#[test]
fn run_fleet_accepts_arbitrary_job_lists() {
    // The fuzz-style entry point: a raw job list, no SweepSpec.
    use dtn_sim::sweep::{run_cells, CellJob};
    let mut cfg = presets::smoke();
    cfg.duration_secs = 300.0;
    cfg.n_nodes = 12;
    let jobs: Vec<CellJob> = [1u64, 2]
        .iter()
        .map(|&seed| {
            let mut cfg = cfg.clone();
            cfg.seed = seed;
            CellJob {
                label: format!("fuzz-{seed}"),
                policy: cfg.policy.label().to_string(),
                cfg,
            }
        })
        .collect();
    let reference = run_cells(jobs.clone(), &SweepOptions::default());
    let fleet = run_fleet(
        &jobs,
        &ThreadTransport::default(),
        &FleetOptions {
            workers: 2,
            ..FleetOptions::default()
        },
    )
    .expect("fleet runs");
    assert!(fleet.output.errors.is_empty());
    assert_eq!(fleet.output.runs, reference.runs);
    assert_eq!(fleet.output.totals, reference.totals);
}
