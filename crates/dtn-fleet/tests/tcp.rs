//! End-to-end tests of the TCP transport against real
//! `dtn-fleet-worker --connect` processes on loopback: fingerprint
//! parity with the in-process reference, worker-loss retry over a
//! dropped socket, handshake rejection, config-push NACK recovery,
//! late joiners, and torn-checkpoint resume.

use dtn_fleet::protocol::{read_frame, write_frame, CoordinatorMsg, WorkerMsg, PROTOCOL_VERSION};
use dtn_fleet::worker::run_assignment;
use dtn_fleet::{
    run_sweep_fleet, FleetOptions, LocalTcpWorkers, TcpTransport, ThreadTransport, Transport,
};
use dtn_sim::config::{presets, PolicyKind};
use dtn_sim::sweep::{
    load_checkpoint, materialize_jobs, run_sweep_hardened, SweepAxis, SweepCheckpoint,
    SweepOptions, SweepSpec,
};
use dtn_telemetry::{hash_config_json, SweepEvent};
use parking_lot::Mutex;
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;

/// Same 8-cell grid as the subprocess suite: 2 axis points x 2
/// policies x 2 seeds, each cell well under a second.
fn quick_spec() -> SweepSpec {
    let mut base = presets::smoke();
    base.duration_secs = 600.0;
    base.n_nodes = 20;
    SweepSpec {
        base,
        axis: SweepAxis::InitialCopies(vec![8, 16]),
        policies: vec![PolicyKind::Fifo, PolicyKind::Sdsrp],
        seeds: vec![1, 2],
        validate: false,
    }
}

fn temp_path(name: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("dtn-fleet-tcp-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_dtn-fleet-worker"))
}

fn job_hashes(spec: &SweepSpec) -> Vec<String> {
    materialize_jobs(spec)
        .iter()
        .map(|j| hash_config_json(&serde_json::to_string(&j.cfg).expect("config serialises")))
        .collect()
}

#[test]
fn tcp_fleet_matches_thread_reference_bit_identically() {
    let spec = quick_spec();
    let reference = run_sweep_hardened(&spec, &SweepOptions::default());
    assert!(reference.errors.is_empty());
    let (thread_out, _) = run_sweep_fleet(
        &spec,
        &ThreadTransport::default(),
        &FleetOptions {
            workers: 2,
            ..FleetOptions::default()
        },
    )
    .expect("thread fleet runs");

    let transport = TcpTransport::bind("127.0.0.1:0")
        .expect("bind")
        .with_token(Some("parity".into()));
    let _workers = LocalTcpWorkers::spawn(
        &worker_bin(),
        transport.local_addr(),
        2,
        Some("parity"),
        None,
        &[],
    )
    .expect("workers launch");
    transport.expect_workers(2);
    let (out, stats) = run_sweep_fleet(
        &spec,
        &transport,
        &FleetOptions {
            workers: 2,
            ..FleetOptions::default()
        },
    )
    .expect("tcp fleet runs");

    assert!(out.errors.is_empty(), "errors: {:?}", out.errors);
    assert_eq!(out.executed, 8);
    assert_eq!(out.runs, reference.runs, "bit-identical to in-process");
    assert_eq!(
        out.runs, thread_out.runs,
        "bit-identical to ThreadTransport"
    );
    assert_eq!(out.cells, reference.cells);
    assert_eq!(out.totals, reference.totals);
    assert_eq!(stats.transport, "tcp");
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.dispatched, 8);
    assert_eq!(
        stats.config_pushes, 8,
        "each cell's config streamed exactly once"
    );
    assert_eq!(stats.retries, 0);
    assert!(stats.per_worker.iter().all(|w| w.pid != 0));
}

#[test]
fn worker_socket_killed_mid_cell_is_retried_to_completion() {
    let spec = quick_spec();
    let reference = run_sweep_hardened(&spec, &SweepOptions::default());
    let victim = job_hashes(&spec)[3].clone();
    let marker = temp_path("tcp-fail-marker");

    let events: Mutex<Vec<SweepEvent>> = Mutex::new(Vec::new());
    let record = |ev: &SweepEvent| events.lock().push(ev.clone());
    let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
    // Both workers carry the hook; the shared marker latch makes
    // exactly one of them die (socket drops mid-cell, exit 17).
    let _workers = LocalTcpWorkers::spawn(
        &worker_bin(),
        transport.local_addr(),
        2,
        None,
        None,
        &[
            "--fail-once".into(),
            format!("{victim}:{}", marker.display()),
        ],
    )
    .expect("workers launch");
    transport.expect_workers(2);
    let (out, stats) = run_sweep_fleet(
        &spec,
        &transport,
        &FleetOptions {
            workers: 2,
            events: Some(&record),
            ..FleetOptions::default()
        },
    )
    .expect("fleet survives the dropped socket");

    assert!(out.errors.is_empty(), "errors: {:?}", out.errors);
    assert_eq!(out.runs, reference.runs, "still bit-identical");
    assert!(stats.workers_lost >= 1, "stats: {stats:?}");
    assert!(stats.retries >= 1, "the dropped cell was re-dispatched");
    let kinds = events.lock();
    assert!(kinds
        .iter()
        .any(|ev| matches!(ev, SweepEvent::WorkerLost { .. })));
    assert!(
        kinds.iter().any(|ev| matches!(
            ev,
            SweepEvent::CellDispatched { config_hash, retry, .. }
                if *config_hash == victim && *retry > 0
        )),
        "victim cell re-dispatched"
    );
    let _ = std::fs::remove_file(&marker);
}

#[test]
fn late_joining_worker_revives_a_dead_slot() {
    let spec = quick_spec();
    let reference = run_sweep_hardened(&spec, &SweepOptions::default());
    let victim = job_hashes(&spec)[3].clone();
    let marker = temp_path("late-join-marker");

    // Three workers dial in but only two slots exist, so one stays
    // parked in the authenticated ready queue. When a slot's worker
    // dies mid-cell (--fail-once), the respawn path must adopt the
    // parked joiner instead of declaring the slot dead.
    let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
    let addr = transport.local_addr();
    let _pair = LocalTcpWorkers::spawn(
        &worker_bin(),
        addr,
        2,
        None,
        None,
        &[
            "--fail-once".into(),
            format!("{victim}:{}", marker.display()),
        ],
    )
    .expect("initial workers");
    // Both --fail-once workers must be authenticated (and thus first in
    // the ready queue) before the spare dials in, or the spare can grab
    // a slot and the victim cell runs on a worker that never fails.
    for _ in 0..500 {
        if transport.waiting_workers() >= 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(transport.waiting_workers(), 2, "initial pair authenticated");
    let _spare =
        LocalTcpWorkers::spawn(&worker_bin(), addr, 1, None, None, &[]).expect("spare worker");
    transport.expect_workers(2);

    let (out, stats) = run_sweep_fleet(
        &spec,
        &transport,
        &FleetOptions {
            workers: 2,
            ..FleetOptions::default()
        },
    )
    .expect("fleet runs");

    assert!(out.errors.is_empty(), "errors: {:?}", out.errors);
    assert_eq!(out.runs, reference.runs, "bit-identical despite the churn");
    assert!(stats.workers_lost >= 1, "stats: {stats:?}");
    assert!(
        stats.worker_restarts >= 1,
        "a waiting joiner revived the dead slot: {stats:?}"
    );
    let _ = std::fs::remove_file(&marker);
}

#[test]
fn wrong_token_worker_is_rejected_and_exits_3() {
    let transport = TcpTransport::bind("127.0.0.1:0")
        .expect("bind")
        .with_token(Some("right".into()));
    let status = std::process::Command::new(worker_bin())
        .args([
            "--connect",
            &transport.local_addr().to_string(),
            "--token",
            "wrong",
            "--connect-wait",
            "5",
        ])
        .status()
        .expect("worker runs");
    assert_eq!(status.code(), Some(3), "rejected handshake exit code");
    assert_eq!(transport.rejected_handshakes(), 1);
}

/// A hand-rolled protocol client that NACKs its first assignment with
/// `ConfigMissing` (as if its cache were cold) and then behaves: the
/// coordinator must re-push the config and the sweep must still be
/// bit-identical, with exactly one extra push in the stats.
#[test]
fn config_missing_nack_triggers_re_push() {
    let mut spec = quick_spec();
    spec.axis = SweepAxis::InitialCopies(vec![8]);
    spec.seeds = vec![1]; // 2 cells keeps the hand-rolled loop simple
    let reference = run_sweep_hardened(&spec, &SweepOptions::default());

    let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
    let addr = transport.local_addr();
    let client = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        write_frame(
            &mut writer,
            &WorkerMsg::Hello {
                pid: 1,
                protocol: PROTOCOL_VERSION,
                token: None,
            }
            .to_line(),
        )
        .expect("hello");
        let mut configs = std::collections::HashMap::new();
        let mut nacked = false;
        while let Ok(Some(line)) = read_frame(&mut reader) {
            match serde_json::from_str::<CoordinatorMsg>(&line).expect("frame parses") {
                CoordinatorMsg::Config {
                    config_hash,
                    config,
                } => {
                    configs.insert(config_hash, config);
                }
                CoordinatorMsg::Assign {
                    index,
                    seed,
                    config_hash,
                    validate,
                    ..
                } => {
                    if !nacked {
                        // Pretend the push never arrived: drop it and NACK.
                        nacked = true;
                        configs.remove(&config_hash);
                        write_frame(
                            &mut writer,
                            &WorkerMsg::ConfigMissing { index, config_hash }.to_line(),
                        )
                        .expect("nack");
                        continue;
                    }
                    let config = configs.remove(&config_hash).expect("config was re-pushed");
                    let reply = run_assignment(index, seed, &config_hash, &config, validate);
                    write_frame(&mut writer, &reply.to_line()).expect("reply");
                }
                CoordinatorMsg::Shutdown | CoordinatorMsg::Reject { .. } => break,
            }
        }
    });

    transport.expect_workers(1);
    let (out, stats) = run_sweep_fleet(
        &spec,
        &transport,
        &FleetOptions {
            workers: 1,
            ..FleetOptions::default()
        },
    )
    .expect("fleet runs");
    client.join().expect("client thread");

    assert!(out.errors.is_empty(), "errors: {:?}", out.errors);
    assert_eq!(out.runs, reference.runs, "bit-identical despite the NACK");
    assert_eq!(
        stats.config_pushes, 3,
        "2 first-sight pushes + 1 NACK re-push"
    );
    assert_eq!(stats.workers_lost, 0, "a NACK is not a worker loss");
}

#[test]
fn tcp_fleet_resumes_torn_main_and_shard_checkpoints_bit_identically() {
    let spec = quick_spec();
    let ck_full = temp_path("ref-full");
    let reference = run_sweep_hardened(
        &spec,
        &SweepOptions {
            checkpoint: Some(SweepCheckpoint {
                path: ck_full.clone(),
                resume: false,
            }),
            ..SweepOptions::default()
        },
    );
    assert!(reference.errors.is_empty());
    let body = std::fs::read_to_string(&ck_full).expect("reference checkpoint");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 8);

    // The wreckage of a fleet killed over TCP: torn main checkpoint
    // plus two worker-side shards (one with a torn tail). 5 whole
    // cells survive.
    let ck = temp_path("tcp-merge");
    let mut main_body = lines[..2].join("\n");
    main_body.push('\n');
    main_body.push_str(&lines[2][..lines[2].len() / 2]);
    std::fs::write(&ck, &main_body).expect("write main checkpoint");
    let shard0 = dtn_fleet::shard_path(&ck, 9000);
    std::fs::write(&shard0, format!("{}\n{}\n", lines[2], lines[3])).expect("write shard 0");
    let shard1 = dtn_fleet::shard_path(&ck, 9001);
    std::fs::write(
        &shard1,
        format!("{}\n{}", lines[4], &lines[5][..lines[5].len() / 2]),
    )
    .expect("write shard 1");

    let transport = TcpTransport::bind("127.0.0.1:0").expect("bind");
    let _workers = LocalTcpWorkers::spawn(
        &worker_bin(),
        transport.local_addr(),
        2,
        None,
        Some(&ck),
        &[],
    )
    .expect("workers launch");
    transport.expect_workers(2);
    let (out, _stats) = run_sweep_fleet(
        &spec,
        &transport,
        &FleetOptions {
            workers: 2,
            checkpoint: Some(SweepCheckpoint {
                path: ck.clone(),
                resume: true,
            }),
            ..FleetOptions::default()
        },
    )
    .expect("tcp fleet resumes");

    assert!(out.errors.is_empty(), "errors: {:?}", out.errors);
    assert_eq!(out.resumed, 5, "main(2) + shard0(2) + shard1(1)");
    assert_eq!(out.executed, 3);
    assert_eq!(out.runs, reference.runs, "bit-identical to uninterrupted");
    assert_eq!(out.totals, reference.totals);
    assert!(!shard0.exists(), "consumed shard removed");
    assert!(!shard1.exists(), "consumed shard removed");
    assert!(dtn_fleet::discover_shards(&ck).is_empty());
    assert_eq!(load_checkpoint(&ck).len(), 8);

    for path in [ck_full, ck] {
        let _ = std::fs::remove_file(&path);
    }
}
