//! Exponential distribution fitting and goodness-of-fit.

use dtn_core::stats::Histogram;
use serde::{Deserialize, Serialize};

/// A fitted exponential `f(x) = λ e^{-λx}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialFit {
    /// Rate parameter (MLE: `1/mean`).
    pub lambda: f64,
    /// Sample mean `E(I)`.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
    /// Coefficient of variation (std/mean). Exactly 1 for a true
    /// exponential; the paper's "approximately exponential" claim means
    /// CV ≈ 1.
    pub cv: f64,
}

impl ExponentialFit {
    /// Density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }

    /// Complementary CDF at `x`.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

/// Maximum-likelihood exponential fit (`λ = 1/mean`). Returns `None` on
/// an empty sample or a non-positive mean.
pub fn fit_exponential(samples: &[f64]) -> Option<ExponentialFit> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    if mean <= 0.0 || !mean.is_finite() {
        return None;
    }
    let var = samples
        .iter()
        .map(|&x| (x - mean) * (x - mean))
        .sum::<f64>()
        / n as f64;
    Some(ExponentialFit {
        lambda: 1.0 / mean,
        mean,
        n,
        cv: var.sqrt() / mean,
    })
}

/// Kolmogorov–Smirnov distance between the empirical distribution of
/// `samples` and an exponential with rate `lambda`:
/// `sup_x |F_n(x) - F(x)|`. Lower is a better fit; for reference,
/// uniform-vs-exponential data gives ≳ 0.3 while genuinely exponential
/// samples of size 1000 land ≈ 0.02.
///
/// # Panics
/// Panics if `samples` is empty or `lambda <= 0`.
pub fn ks_distance_exponential(samples: &mut [f64], lambda: f64) -> f64 {
    assert!(!samples.is_empty(), "KS distance needs samples");
    assert!(lambda > 0.0, "lambda must be positive");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let n = samples.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in samples.iter().enumerate() {
        let f = 1.0 - (-lambda * x).exp();
        let lo = i as f64 / n;
        let hi = (i as f64 + 1.0) / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// A row of the Fig. 3 distribution table: bin centre, empirical
/// density, fitted density.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityRow {
    /// Bin centre (seconds).
    pub x: f64,
    /// Empirical probability density.
    pub empirical: f64,
    /// Fitted `λ e^{-λx}` density.
    pub fitted: f64,
}

/// Bins `samples` into `bins` buckets over `[0, x_max)` and tabulates
/// empirical vs fitted density — exactly what Fig. 3 plots.
pub fn density_table(
    samples: &[f64],
    fit: &ExponentialFit,
    x_max: f64,
    bins: usize,
) -> Vec<DensityRow> {
    let mut h = Histogram::new(0.0, x_max, bins);
    for &s in samples {
        h.push(s);
    }
    (0..bins)
        .map(|i| {
            let x = h.bin_center(i);
            DensityRow {
                x,
                empirical: h.density(i),
                fitted: fit.pdf(x),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::rng::{exponential, stream_rng, streams};

    fn exp_samples(rate: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = stream_rng(seed, streams::BENCH);
        (0..n).map(|_| exponential(&mut rng, rate)).collect()
    }

    #[test]
    fn fit_recovers_rate() {
        let samples = exp_samples(0.01, 20_000, 1);
        let fit = fit_exponential(&samples).unwrap();
        assert!(
            (fit.lambda - 0.01).abs() < 0.001,
            "lambda {} vs 0.01",
            fit.lambda
        );
        assert!((fit.cv - 1.0).abs() < 0.05, "cv {}", fit.cv);
        assert_eq!(fit.n, 20_000);
    }

    #[test]
    fn fit_rejects_degenerate() {
        assert!(fit_exponential(&[]).is_none());
        assert!(fit_exponential(&[0.0, 0.0]).is_none());
        assert!(fit_exponential(&[-1.0, -2.0]).is_none());
    }

    #[test]
    fn pdf_cdf_ccdf() {
        let f = ExponentialFit {
            lambda: 2.0,
            mean: 0.5,
            n: 1,
            cv: 1.0,
        };
        assert_eq!(f.pdf(-1.0), 0.0);
        assert!((f.pdf(0.0) - 2.0).abs() < 1e-12);
        assert!((f.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!((f.cdf(0.5) + f.ccdf(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(f.cdf(-1.0), 0.0);
    }

    #[test]
    fn ks_small_for_true_exponential() {
        let mut samples = exp_samples(0.05, 5_000, 2);
        let d = ks_distance_exponential(&mut samples, 0.05);
        assert!(d < 0.03, "KS distance {d} too large for exponential data");
    }

    #[test]
    fn ks_large_for_wrong_distribution() {
        // Uniform data against an exponential fit.
        let mut rng = stream_rng(3, streams::BENCH);
        let mut samples: Vec<f64> = (0..5_000)
            .map(|_| dtn_core::rng::uniform_range(&mut rng, 0.0, 100.0))
            .collect();
        let fit = fit_exponential(&samples).unwrap();
        let d = ks_distance_exponential(&mut samples, fit.lambda);
        assert!(
            d > 0.1,
            "KS distance {d} suspiciously small for uniform data"
        );
    }

    #[test]
    fn ks_detects_wrong_rate() {
        let mut samples = exp_samples(0.05, 5_000, 4);
        let right = ks_distance_exponential(&mut samples, 0.05);
        let wrong = ks_distance_exponential(&mut samples, 0.2);
        assert!(wrong > right * 5.0, "wrong {wrong} vs right {right}");
    }

    #[test]
    fn density_table_matches_fit_shape() {
        let samples = exp_samples(0.02, 50_000, 5);
        let fit = fit_exponential(&samples).unwrap();
        let rows = density_table(&samples, &fit, 200.0, 20);
        assert_eq!(rows.len(), 20);
        // Empirical and fitted densities should track closely.
        for r in &rows {
            assert!(
                (r.empirical - r.fitted).abs() < 0.2 * fit.lambda + 1e-4,
                "bin at {}: emp {} vs fit {}",
                r.x,
                r.empirical,
                r.fitted
            );
        }
        // Density decreases along an exponential.
        assert!(rows[0].empirical > rows[19].empirical);
    }
}
