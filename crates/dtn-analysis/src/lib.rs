//! # dtn-analysis
//!
//! Distribution analysis for the experiment harnesses — principally the
//! paper's Fig. 3, which argues that intermeeting times under
//! random-waypoint and the taxi trace "approximately follow an
//! exponential distribution" and fits `f(x) = λ e^{-λx}`.
//!
//! * [`fit`] — exponential MLE, CCDF comparison, Kolmogorov–Smirnov
//!   distance and the coefficient of variation (an exponential has
//!   CV = 1).
//! * [`ci`] — Student-t confidence intervals for the few-seed means the
//!   sweep harness reports.
//! * [`churn`] — the delivery-ratio-vs-churn-rate headline table for
//!   the fault-injection sweeps.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod ci;
pub mod fit;

pub use churn::{ChurnPoint, ChurnTable};
pub use ci::{mean_ci95, MeanCi};
pub use fit::{fit_exponential, ks_distance_exponential, ExponentialFit};
