//! Small-sample confidence intervals for sweep cells.
//!
//! Figure points are means over a handful of seeds; reporting them
//! without uncertainty invites over-reading (the paper plots bare
//! means). This module provides Student-t 95% confidence intervals for
//! n ≤ 30 and the normal approximation beyond.

use serde::{Deserialize, Serialize};

/// Two-sided 95% Student-t critical values for `df = 1..=30`.
/// Source: standard t tables, rounded to 3 decimals.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 95% critical value for `df` degrees of freedom.
pub fn t95(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        T95[df - 1]
    } else {
        1.96
    }
}

/// A sample mean with its 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% CI (`0` for a single sample is impossible;
    /// it is `inf` then).
    pub half_width: f64,
    /// Sample count.
    pub n: usize,
}

impl MeanCi {
    /// Lower bound of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// True when `other`'s interval does not overlap this one (a crude
    /// but honest "significantly different" test).
    pub fn separated_from(&self, other: &MeanCi) -> bool {
        self.lo() > other.hi() || self.hi() < other.lo()
    }
}

/// 95% confidence interval of the mean of `samples`; `None` on an empty
/// slice. A single sample yields an infinite half-width (no variance
/// information), which is the honest answer.
pub fn mean_ci95(samples: &[f64]) -> Option<MeanCi> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Some(MeanCi {
            mean,
            half_width: f64::INFINITY,
            n,
        });
    }
    let var = samples
        .iter()
        .map(|&x| (x - mean) * (x - mean))
        .sum::<f64>()
        / (n - 1) as f64;
    let se = (var / n as f64).sqrt();
    Some(MeanCi {
        mean,
        half_width: t95(n - 1) * se,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_values() {
        assert_eq!(t95(1), 12.706);
        assert_eq!(t95(10), 2.228);
        assert_eq!(t95(30), 2.042);
        assert_eq!(t95(100), 1.96);
        assert_eq!(t95(0), f64::INFINITY);
    }

    #[test]
    fn empty_and_single() {
        assert!(mean_ci95(&[]).is_none());
        let one = mean_ci95(&[5.0]).unwrap();
        assert_eq!(one.mean, 5.0);
        assert!(one.half_width.is_infinite());
    }

    #[test]
    fn known_interval() {
        // Samples 1..=5: mean 3, sd sqrt(2.5), se sqrt(0.5), df 4.
        let ci = mean_ci95(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(ci.mean, 3.0);
        let expect = 2.776 * (2.5f64 / 5.0).sqrt();
        assert!((ci.half_width - expect).abs() < 1e-9);
        assert!((ci.lo() - (3.0 - expect)).abs() < 1e-12);
        assert!((ci.hi() - (3.0 + expect)).abs() < 1e-12);
    }

    #[test]
    fn separation() {
        let a = MeanCi {
            mean: 1.0,
            half_width: 0.1,
            n: 5,
        };
        let b = MeanCi {
            mean: 2.0,
            half_width: 0.1,
            n: 5,
        };
        let c = MeanCi {
            mean: 1.15,
            half_width: 0.1,
            n: 5,
        };
        assert!(a.separated_from(&b));
        assert!(b.separated_from(&a));
        assert!(!a.separated_from(&c));
    }

    #[test]
    fn degenerate_zero_variance() {
        let ci = mean_ci95(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(ci.mean, 2.0);
        assert_eq!(ci.half_width, 0.0);
    }
}
