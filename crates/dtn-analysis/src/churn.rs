//! Delivery-ratio-vs-churn-rate headline table.
//!
//! The fault-injection sweeps (`SweepAxis::CrashRate`) answer the
//! robustness question the paper leaves open: how quickly does each
//! buffer policy's delivery ratio degrade as nodes crash and lose their
//! buffers? This module folds the sweep cells into a
//! `policies x churn rates` matrix and renders the headline comparison,
//! including each policy's *retention* — delivered fraction at the
//! highest churn rate relative to the fault-free baseline.

use serde::{Deserialize, Serialize};

/// One aggregated sweep cell projected onto the churn axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnPoint {
    /// Per-node crash rate, crashes/hour.
    pub rate: f64,
    /// Policy legend label.
    pub policy: String,
    /// Mean delivery ratio across the cell's seeds.
    pub delivery_ratio: f64,
    /// Seeds aggregated into the mean.
    pub runs: usize,
}

/// A `policies x churn rates` delivery-ratio matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnTable {
    /// Distinct churn rates, ascending.
    pub rates: Vec<f64>,
    /// Policies in first-seen order.
    pub policies: Vec<String>,
    /// `delivery[p][r]` = mean delivery ratio of `policies[p]` at
    /// `rates[r]` (`NaN` where the sweep had no cell).
    pub delivery: Vec<Vec<f64>>,
}

impl ChurnTable {
    /// Folds sweep points into the matrix. Duplicate `(policy, rate)`
    /// points keep the last value (sweep cells are unique, so this
    /// only matters for hand-built inputs).
    pub fn from_points(points: &[ChurnPoint]) -> Self {
        let mut rates: Vec<f64> = Vec::new();
        for p in points {
            if !rates.contains(&p.rate) {
                rates.push(p.rate);
            }
        }
        rates.sort_by(f64::total_cmp);
        let mut policies: Vec<String> = Vec::new();
        for p in points {
            if !policies.contains(&p.policy) {
                policies.push(p.policy.clone());
            }
        }
        let mut delivery = vec![vec![f64::NAN; rates.len()]; policies.len()];
        for p in points {
            let pi = policies.iter().position(|x| *x == p.policy).expect("seen");
            let ri = rates.iter().position(|&r| r == p.rate).expect("seen");
            delivery[pi][ri] = p.delivery_ratio;
        }
        ChurnTable {
            rates,
            policies,
            delivery,
        }
    }

    /// Delivery ratio of `policy` at the highest churn rate divided by
    /// its fault-free (lowest-rate) baseline — 1.0 means churn-proof,
    /// 0.0 means churn kills it. `None` for an unknown policy, an
    /// empty table, or a zero/NaN baseline.
    pub fn retention(&self, policy: &str) -> Option<f64> {
        let pi = self.policies.iter().position(|p| p == policy)?;
        let row = &self.delivery[pi];
        let base = *row.first()?;
        let worst = *row.last()?;
        if base <= 0.0 || base.is_nan() || worst.is_nan() {
            return None;
        }
        Some(worst / base)
    }

    /// Renders the headline markdown table: one row per policy, one
    /// column per churn rate, plus the retention column.
    pub fn render_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "| policy |");
        for r in &self.rates {
            let _ = write!(out, " {r}/h |");
        }
        let _ = writeln!(out, " retention |");
        let _ = write!(out, "|---|");
        for _ in &self.rates {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out, "---|");
        for (pi, policy) in self.policies.iter().enumerate() {
            let _ = write!(out, "| {policy} |");
            for &d in &self.delivery[pi] {
                if d.is_nan() {
                    let _ = write!(out, " - |");
                } else {
                    let _ = write!(out, " {d:.3} |");
                }
            }
            match self.retention(policy) {
                Some(k) => {
                    let _ = writeln!(out, " {k:.3} |");
                }
                None => {
                    let _ = writeln!(out, " - |");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(rate: f64, policy: &str, dr: f64) -> ChurnPoint {
        ChurnPoint {
            rate,
            policy: policy.to_string(),
            delivery_ratio: dr,
            runs: 3,
        }
    }

    fn sample() -> ChurnTable {
        // Deliberately shuffled input: grouping must not depend on
        // point order.
        ChurnTable::from_points(&[
            point(2.0, "SDSRP", 0.45),
            point(0.0, "SprayAndWait", 0.50),
            point(0.0, "SDSRP", 0.60),
            point(2.0, "SprayAndWait", 0.20),
            point(1.0, "SDSRP", 0.55),
            point(1.0, "SprayAndWait", 0.35),
        ])
    }

    #[test]
    fn groups_points_into_sorted_matrix() {
        let t = sample();
        assert_eq!(t.rates, vec![0.0, 1.0, 2.0]);
        assert_eq!(t.policies, vec!["SDSRP", "SprayAndWait"]);
        assert_eq!(t.delivery[0], vec![0.60, 0.55, 0.45]);
        assert_eq!(t.delivery[1], vec![0.50, 0.35, 0.20]);
    }

    #[test]
    fn retention_is_worst_over_baseline() {
        let t = sample();
        assert!((t.retention("SDSRP").unwrap() - 0.75).abs() < 1e-12);
        assert!((t.retention("SprayAndWait").unwrap() - 0.40).abs() < 1e-12);
        assert_eq!(t.retention("nope"), None);
    }

    #[test]
    fn retention_handles_degenerate_baselines() {
        let t = ChurnTable::from_points(&[point(0.0, "Dead", 0.0), point(2.0, "Dead", 0.0)]);
        assert_eq!(t.retention("Dead"), None);
    }

    #[test]
    fn markdown_renders_all_cells_and_gaps() {
        let mut pts = vec![
            point(0.0, "SDSRP", 0.60),
            point(2.0, "SDSRP", 0.45),
            point(0.0, "FIFO", 0.50),
        ];
        pts.pop();
        pts.push(point(0.0, "FIFO", 0.50)); // FIFO has no 2.0/h cell
        let t = ChurnTable::from_points(&pts);
        let md = t.render_markdown();
        assert!(md.contains("| policy | 0/h | 2/h | retention |"));
        assert!(md.contains("| SDSRP | 0.600 | 0.450 | 0.750 |"));
        assert!(md.contains("| FIFO | 0.500 | - | - |"));
    }

    #[test]
    fn table_roundtrips_through_json() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: ChurnTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
