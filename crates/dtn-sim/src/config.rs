//! Scenario configuration and the paper's presets.

use dtn_buffer::congestion::{OccupancyGate, TieredRetention};
use dtn_buffer::copies::CopiesRatio;
use dtn_buffer::fifo::{Fifo, Lifo};
use dtn_buffer::knapsack::Knapsack;
use dtn_buffer::mofo::Mofo;
use dtn_buffer::policy::BufferPolicy;
use dtn_buffer::random::RandomDrop;
use dtn_buffer::ttl::{Shli, TtlRatio};
use dtn_core::ids::NodeId;
use dtn_core::rng::{streams, substream_rng};
use dtn_core::time::SimDuration;
use dtn_core::units::Bytes;
use dtn_mobility::MobilityConfig;
use dtn_net::LinkConfig;
use dtn_routing::direct::DirectDelivery;
use dtn_routing::epidemic::Epidemic;
use dtn_routing::prophet::{Prophet, ProphetConfig};
use dtn_routing::protocol::RoutingProtocol;
use dtn_routing::spray_and_focus::SprayAndFocus;
use dtn_routing::SprayAndWait;
use sdsrp_core::{LambdaMode, PriorityMode, Sdsrp, SdsrpConfig};
use serde::{Deserialize, Serialize};

/// Which buffer-management strategy a scenario runs — the paper's four
/// contenders plus the extra ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Plain Spray and Wait: FIFO service, drop-oldest.
    Fifo,
    /// LIFO (ablation extra).
    Lifo,
    /// Spray and Wait-O: remaining/initial TTL priority.
    TtlRatio,
    /// Spray and Wait-C: held/initial copies priority.
    CopiesRatio,
    /// MOFO: evict most-forwarded first (ablation extra).
    Mofo,
    /// SHLI: evict shortest-remaining-lifetime first (ablation extra).
    Shli,
    /// Uniformly random ranking (ablation floor).
    Random,
    /// Knapsack set-wise admission (the authors' EWSN 2015 companion
    /// strategy; interesting with heterogeneous message sizes).
    Knapsack,
    /// The paper's SDSRP with distributed estimation.
    Sdsrp,
    /// SDSRP variants for ablations.
    SdsrpCustom {
        /// λ source.
        lambda: LambdaMode,
        /// Taylor truncation (None = exact closed form).
        taylor_terms: Option<usize>,
        /// Refuse messages on the dropped list.
        reject_dropped: bool,
        /// Exchange dropped lists on contact.
        gossip: bool,
    },
    /// SDSRP fed perfect `m_i`/`n_i` by the simulator (GBSD-style
    /// global-knowledge upper bound). Requires `oracle = true` in the
    /// scenario.
    SdsrpOracle {
        /// Oracle intermeeting rate λ.
        lambda: f64,
    },
    /// Congestion-adaptive admission (Congestion Aware Spray and Wait):
    /// TTL-ratio ranking plus an occupancy gate that rejects newcomers
    /// outright once the buffer is fuller than `threshold`.
    OccupancyGate {
        /// Occupancy fraction in `(0, 1]` above which incoming messages
        /// are refused; `1.0` never triggers (pure TTL-ratio reference).
        threshold: f64,
    },
    /// Tiered retention with priority-based purging: messages are binned
    /// into remaining-lifetime tiers, stale tiers are purged first, and
    /// above the occupancy `threshold` newcomers landing in the stalest
    /// tier are refused.
    TieredRetention {
        /// Number of remaining-lifetime tiers (≥ 1).
        tiers: u32,
        /// Occupancy fraction above which stalest-tier newcomers are
        /// refused; `1.0` never refuses (pure tiered eviction).
        threshold: f64,
    },
}

impl PolicyKind {
    /// Instantiates the policy for one node.
    pub fn build(&self, node: NodeId, n_nodes: usize, seed: u64) -> Box<dyn BufferPolicy> {
        match *self {
            PolicyKind::Fifo => Box::new(Fifo),
            PolicyKind::Lifo => Box::new(Lifo),
            PolicyKind::TtlRatio => Box::new(TtlRatio),
            PolicyKind::CopiesRatio => Box::new(CopiesRatio),
            PolicyKind::Mofo => Box::new(Mofo),
            PolicyKind::Shli => Box::new(Shli),
            PolicyKind::Random => Box::new(RandomDrop::new(substream_rng(
                seed,
                streams::BUFFER,
                node.0 as u64,
            ))),
            PolicyKind::Knapsack => Box::new(Knapsack::default()),
            PolicyKind::Sdsrp => Box::new(Sdsrp::new(node, SdsrpConfig::paper(n_nodes))),
            PolicyKind::SdsrpCustom {
                lambda,
                taylor_terms,
                reject_dropped,
                gossip,
            } => Box::new(Sdsrp::new(
                node,
                SdsrpConfig {
                    n_nodes,
                    lambda,
                    mode: PriorityMode::from_terms(taylor_terms),
                    reject_dropped,
                    gossip,
                },
            )),
            PolicyKind::SdsrpOracle { lambda } => Box::new(Sdsrp::new(
                node,
                SdsrpConfig {
                    n_nodes,
                    lambda: LambdaMode::Oracle(lambda),
                    mode: PriorityMode::Exact,
                    reject_dropped: true,
                    gossip: true,
                },
            )),
            PolicyKind::OccupancyGate { threshold } => Box::new(OccupancyGate::new(threshold)),
            PolicyKind::TieredRetention { tiers, threshold } => {
                Box::new(TieredRetention::new(tiers, threshold))
            }
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "SprayAndWait",
            PolicyKind::Lifo => "LIFO",
            PolicyKind::TtlRatio => "SprayAndWait-O",
            PolicyKind::CopiesRatio => "SprayAndWait-C",
            PolicyKind::Mofo => "MOFO",
            PolicyKind::Shli => "SHLI",
            PolicyKind::Random => "Random",
            PolicyKind::Knapsack => "Knapsack",
            PolicyKind::Sdsrp => "SDSRP",
            PolicyKind::SdsrpCustom { .. } => "SDSRP-custom",
            PolicyKind::SdsrpOracle { .. } => "SDSRP-oracle",
            PolicyKind::OccupancyGate { .. } => "OccupancyGate",
            PolicyKind::TieredRetention { .. } => "TieredRetention",
        }
    }

    /// The four strategies the paper's Figs. 8-9 compare.
    pub fn paper_four() -> [PolicyKind; 4] {
        [
            PolicyKind::Fifo,
            PolicyKind::TtlRatio,
            PolicyKind::CopiesRatio,
            PolicyKind::Sdsrp,
        ]
    }
}

/// Which routing protocol a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Binary Spray-and-Wait (the paper's router).
    SprayAndWaitBinary,
    /// Source Spray-and-Wait.
    SprayAndWaitSource,
    /// Epidemic flooding.
    Epidemic,
    /// Direct delivery.
    Direct,
    /// Spray-and-Focus with the given handoff threshold (seconds).
    SprayAndFocus {
        /// Required last-encounter freshness advantage.
        handoff_threshold: f64,
    },
    /// PRoPHET delivery-predictability routing (extension).
    Prophet,
}

impl RoutingKind {
    /// Instantiates the protocol for one node.
    pub fn build(&self) -> Box<dyn RoutingProtocol> {
        match *self {
            RoutingKind::SprayAndWaitBinary => Box::new(SprayAndWait::binary()),
            RoutingKind::SprayAndWaitSource => Box::new(SprayAndWait::source()),
            RoutingKind::Epidemic => Box::new(Epidemic),
            RoutingKind::Direct => Box::new(DirectDelivery),
            RoutingKind::SprayAndFocus { handoff_threshold } => {
                Box::new(SprayAndFocus::new(handoff_threshold))
            }
            RoutingKind::Prophet => Box::new(Prophet::new(ProphetConfig::default())),
        }
    }
}

/// Message inter-arrival process (extension; the paper's generator is
/// `Uniform`: one message every `U[lo, hi]` seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TrafficModel {
    /// One message per uniform draw from `gen_interval` (the paper and
    /// ONE's default event generator).
    #[default]
    Uniform,
    /// Poisson arrivals with the same mean rate as the uniform setting
    /// (`rate = 2 / (lo + hi)`), i.e. exponential inter-arrival times —
    /// burstier, a stress test for the drop policies.
    Poisson,
}

/// Delivery-acknowledgement (immunity) mechanism — an *extension*: the
/// paper explicitly assumes "neither an immunization strategy nor an
/// acknowledgment mechanism" (Section III-A), so `None` is the paper's
/// setting and the others quantify what such a mechanism would add.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ImmunityMode {
    /// The paper's setting: delivered messages keep circulating until
    /// TTL expiry.
    #[default]
    None,
    /// Idealised VACCINE: the instant a message is delivered, every
    /// buffered copy network-wide is purged (an upper bound on what any
    /// antipacket scheme can achieve).
    OracleFlood,
    /// Distributed antipackets: the destination records the delivery;
    /// nodes exchange their acknowledged-id sets on contact, purge
    /// buffered copies of acknowledged messages and refuse to receive
    /// them again.
    AntipacketGossip,
}

/// Deterministic, seeded fault-injection and churn plan (extension).
///
/// All fault randomness derives from the dedicated
/// `dtn_core::rng::streams::FAULTS` stream of the scenario's master
/// seed: the same `(config, seed)` pair always produces the same crash
/// schedule, blackout windows, abort coin flips and clock skews, and an
/// [empty](Self::is_empty) plan draws *nothing* from any stream, so
/// fault-free runs are bit-identical to builds without this subsystem.
///
/// Semantics:
///
/// * **Crashes** — each node crashes as a Poisson process with rate
///   [`crash_rate_per_hour`](Self::crash_rate_per_hour); a crash wipes
///   the node's buffer, dropped-list and λ-estimator state (delivered /
///   acknowledged sets survive, modelling durable application storage),
///   takes its radio down, and the node reboots cold after
///   [`reboot_secs`](Self::reboot_secs).
/// * **Blackouts** — an independent per-node Poisson process with rate
///   [`blackout_rate_per_hour`](Self::blackout_rate_per_hour) takes the
///   radio down for [`blackout_secs`](Self::blackout_secs) without
///   touching any state.
/// * **Transfer aborts** — each scheduled transfer completion fails
///   with probability [`transfer_abort_prob`](Self::transfer_abort_prob)
///   (lossy radios; the copy split never happens).
/// * **Clock skew** — each node's wall clock is offset by a fixed
///   amount drawn uniformly from `±clock_skew_max_secs`; the skewed
///   clock stamps the Eq. 15 spray timestamps, degrading `m_i`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Mean node crashes per hour (per node); 0 disables crashes.
    #[serde(default)]
    pub crash_rate_per_hour: f64,
    /// Downtime between a crash and the cold reboot, seconds.
    #[serde(default)]
    pub reboot_secs: f64,
    /// Mean radio blackouts per hour (per node); 0 disables blackouts.
    #[serde(default)]
    pub blackout_rate_per_hour: f64,
    /// Duration of each radio blackout, seconds.
    #[serde(default)]
    pub blackout_secs: f64,
    /// Probability that a scheduled transfer aborts mid-flight.
    #[serde(default)]
    pub transfer_abort_prob: f64,
    /// Half-width of the per-node clock-skew interval, seconds; 0
    /// disables skew.
    #[serde(default)]
    pub clock_skew_max_secs: f64,
}

impl FaultPlan {
    /// Whether the plan injects nothing (the default). Empty plans draw
    /// zero values from the FAULTS RNG stream.
    pub fn is_empty(&self) -> bool {
        self.crash_rate_per_hour == 0.0
            && self.blackout_rate_per_hour == 0.0
            && self.transfer_abort_prob == 0.0
            && self.clock_skew_max_secs == 0.0
    }

    /// Short human-readable label for sweep tables and checkpoints,
    /// e.g. `crash=0.5/h+60s blackout=2/h+30s abort=0.05 skew=10s`
    /// (or `none`).
    pub fn label(&self) -> String {
        if self.is_empty() {
            return "none".into();
        }
        let mut parts = Vec::new();
        if self.crash_rate_per_hour > 0.0 {
            parts.push(format!(
                "crash={}/h+{}s",
                self.crash_rate_per_hour, self.reboot_secs
            ));
        }
        if self.blackout_rate_per_hour > 0.0 {
            parts.push(format!(
                "blackout={}/h+{}s",
                self.blackout_rate_per_hour, self.blackout_secs
            ));
        }
        if self.transfer_abort_prob > 0.0 {
            parts.push(format!("abort={}", self.transfer_abort_prob));
        }
        if self.clock_skew_max_secs > 0.0 {
            parts.push(format!("skew={}s", self.clock_skew_max_secs));
        }
        parts.join(" ")
    }

    /// Validates the plan (called from [`ScenarioConfig::validate`]).
    pub fn validate(&self) {
        assert!(
            self.crash_rate_per_hour >= 0.0 && self.crash_rate_per_hour.is_finite(),
            "crash rate must be finite and non-negative"
        );
        assert!(
            self.blackout_rate_per_hour >= 0.0 && self.blackout_rate_per_hour.is_finite(),
            "blackout rate must be finite and non-negative"
        );
        if self.crash_rate_per_hour > 0.0 {
            assert!(
                self.reboot_secs > 0.0 && self.reboot_secs.is_finite(),
                "crashes need a positive reboot time"
            );
        }
        if self.blackout_rate_per_hour > 0.0 {
            assert!(
                self.blackout_secs > 0.0 && self.blackout_secs.is_finite(),
                "blackouts need a positive duration"
            );
        }
        assert!(
            (0.0..1.0).contains(&self.transfer_abort_prob),
            "transfer abort probability must be in [0, 1)"
        );
        assert!(
            self.clock_skew_max_secs >= 0.0 && self.clock_skew_max_secs.is_finite(),
            "clock skew must be finite and non-negative"
        );
    }
}

/// A complete simulation scenario. Every run is a pure function of
/// `(ScenarioConfig, seed)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Scenario label for reports.
    pub name: String,
    /// Number of nodes.
    pub n_nodes: usize,
    /// Simulated duration, seconds.
    pub duration_secs: f64,
    /// Movement-sampling tick, seconds.
    pub tick_secs: f64,
    /// Mobility model.
    pub mobility: MobilityConfig,
    /// Radio parameters.
    pub link: LinkConfig,
    /// Per-node buffer capacity.
    pub buffer_capacity: Bytes,
    /// Payload size of every generated message.
    pub message_size: Bytes,
    /// Message generation interval `[lo, hi]` seconds (one new message
    /// network-wide per interval, like ONE's event generator).
    pub gen_interval: (f64, f64),
    /// Initial TTL of every message.
    pub ttl: SimDuration,
    /// Initial copy tokens `L`.
    pub initial_copies: u32,
    /// Buffer-management strategy under test.
    pub policy: PolicyKind,
    /// Routing protocol.
    pub routing: RoutingKind,
    /// Master seed.
    pub seed: u64,
    /// Maintain and expose perfect `m_i`/`n_i` to policies (for the
    /// oracle ablation). Slightly slower; off for the paper runs.
    pub oracle: bool,
    /// Delivery-acknowledgement mechanism (extension; the paper uses
    /// [`ImmunityMode::None`]).
    #[serde(default)]
    pub immunity: ImmunityMode,
    /// Draw each message's size uniformly from `[message_size,
    /// message_size_max]` instead of the fixed Table II 0.5 MB
    /// (extension; exercises size-aware policies such as
    /// [`PolicyKind::Knapsack`]).
    #[serde(default)]
    pub message_size_max: Option<Bytes>,
    /// Message inter-arrival process (extension; the paper uses
    /// [`TrafficModel::Uniform`]).
    #[serde(default)]
    pub traffic: TrafficModel,
    /// Warm-up period, seconds (extension; ONE-style): messages
    /// generated before this instant are simulated normally but excluded
    /// from every reported metric, removing cold-start bias. The paper
    /// uses 0 (no warm-up).
    #[serde(default)]
    pub warmup_secs: f64,
    /// Deterministic fault-injection plan (extension; empty by default,
    /// which reproduces fault-free runs bit-identically).
    #[serde(default)]
    pub faults: FaultPlan,
}

impl ScenarioConfig {
    /// Basic validation; called by the world builder.
    pub fn validate(&self) {
        assert!(self.n_nodes >= 2, "need at least two nodes");
        assert!(self.duration_secs > 0.0, "duration must be positive");
        assert!(self.tick_secs > 0.0, "tick must be positive");
        assert!(
            self.gen_interval.0 > 0.0 && self.gen_interval.1 >= self.gen_interval.0,
            "invalid generation interval"
        );
        assert!(self.initial_copies >= 1, "need at least one copy token");
        assert!(
            self.message_size <= self.buffer_capacity,
            "a single message must fit in the buffer"
        );
        assert!(
            self.warmup_secs >= 0.0 && self.warmup_secs < self.duration_secs,
            "warm-up must lie within the run"
        );
        if let Some(max) = self.message_size_max {
            assert!(
                max >= self.message_size,
                "message_size_max below message_size"
            );
            assert!(
                max <= self.buffer_capacity,
                "the largest message must fit in the buffer"
            );
        }
        self.faults.validate();
    }
}

/// The paper's scenario presets (Tables II and III).
pub mod presets {
    use super::*;

    /// Table II: random waypoint, 100 nodes, 4500 m x 3400 m, 2 m/s,
    /// 250 kbps, 100 m range, 2.5 MB buffers, 0.5 MB messages, one
    /// message per 25-35 s, TTL 300 min, L = 32, 18 000 s.
    pub fn random_waypoint_paper() -> ScenarioConfig {
        ScenarioConfig {
            name: "rwp-paper".into(),
            n_nodes: 100,
            duration_secs: 18_000.0,
            tick_secs: 1.0,
            mobility: MobilityConfig::paper_random_waypoint(),
            link: LinkConfig::paper(),
            buffer_capacity: Bytes::from_mb(2.5),
            message_size: Bytes::from_mb(0.5),
            gen_interval: (25.0, 35.0),
            ttl: SimDuration::from_mins(300.0),
            initial_copies: 32,
            policy: PolicyKind::Sdsrp,
            routing: RoutingKind::SprayAndWaitBinary,
            seed: 1,
            oracle: false,
            immunity: ImmunityMode::None,
            message_size_max: None,
            traffic: TrafficModel::Uniform,
            warmup_secs: 0.0,
            faults: Default::default(),
        }
    }

    /// Table III: the EPFL-taxi substitute — 200 taxis over a hotspot
    /// city, same radio/buffer/traffic parameters as Table II.
    pub fn epfl_paper() -> ScenarioConfig {
        ScenarioConfig {
            name: "epfl-paper".into(),
            n_nodes: 200,
            mobility: MobilityConfig::paper_taxi(),
            ..random_waypoint_paper()
        }
    }

    /// A laptop-fast smoke scenario used by tests and examples: the
    /// Table II physics in a quarter-size playground with 40 nodes and
    /// 3600 s.
    pub fn smoke() -> ScenarioConfig {
        use dtn_mobility::random_waypoint::RandomWaypointConfig;
        ScenarioConfig {
            name: "smoke".into(),
            n_nodes: 40,
            duration_secs: 3600.0,
            tick_secs: 1.0,
            mobility: MobilityConfig::RandomWaypoint(RandomWaypointConfig {
                area: dtn_core::geometry::Rect::from_size(2000.0, 1500.0),
                min_speed: 2.0,
                max_speed: 2.0,
                min_pause: 0.0,
                max_pause: 0.0,
            }),
            link: LinkConfig::paper(),
            buffer_capacity: Bytes::from_mb(2.5),
            message_size: Bytes::from_mb(0.5),
            gen_interval: (25.0, 35.0),
            ttl: SimDuration::from_mins(60.0),
            initial_copies: 16,
            policy: PolicyKind::Sdsrp,
            routing: RoutingKind::SprayAndWaitBinary,
            seed: 1,
            oracle: false,
            immunity: ImmunityMode::None,
            message_size_max: None,
            traffic: TrafficModel::Uniform,
            warmup_secs: 0.0,
            faults: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_tables() {
        let rwp = presets::random_waypoint_paper();
        assert_eq!(rwp.n_nodes, 100);
        assert_eq!(rwp.duration_secs, 18_000.0);
        assert_eq!(rwp.buffer_capacity, Bytes::from_mb(2.5));
        assert_eq!(rwp.message_size, Bytes::from_mb(0.5));
        assert_eq!(rwp.ttl, SimDuration::from_mins(300.0));
        assert_eq!(rwp.initial_copies, 32);
        assert_eq!(rwp.gen_interval, (25.0, 35.0));
        rwp.validate();

        let epfl = presets::epfl_paper();
        assert_eq!(epfl.n_nodes, 200);
        assert_eq!(epfl.link, LinkConfig::paper());
        epfl.validate();

        presets::smoke().validate();
    }

    #[test]
    fn policy_factory_builds_all_kinds() {
        let kinds = [
            PolicyKind::Fifo,
            PolicyKind::Lifo,
            PolicyKind::TtlRatio,
            PolicyKind::CopiesRatio,
            PolicyKind::Mofo,
            PolicyKind::Shli,
            PolicyKind::Random,
            PolicyKind::Sdsrp,
            PolicyKind::SdsrpOracle { lambda: 1e-4 },
            PolicyKind::SdsrpCustom {
                lambda: LambdaMode::Oracle(1e-4),
                taylor_terms: Some(3),
                reject_dropped: false,
                gossip: false,
            },
            PolicyKind::OccupancyGate { threshold: 0.8 },
            PolicyKind::TieredRetention {
                tiers: 4,
                threshold: 0.9,
            },
        ];
        for k in kinds {
            let p = k.build(NodeId(0), 100, 1);
            assert!(!p.name().is_empty());
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn routing_factory_builds_all_kinds() {
        for r in [
            RoutingKind::SprayAndWaitBinary,
            RoutingKind::SprayAndWaitSource,
            RoutingKind::Epidemic,
            RoutingKind::Direct,
            RoutingKind::SprayAndFocus {
                handoff_threshold: 60.0,
            },
            RoutingKind::Prophet,
        ] {
            assert!(!r.build().name().is_empty());
        }
    }

    #[test]
    fn paper_four_lineup() {
        let four = PolicyKind::paper_four();
        let labels: Vec<_> = four.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec!["SprayAndWait", "SprayAndWait-O", "SprayAndWait-C", "SDSRP"]
        );
    }

    #[test]
    #[should_panic(expected = "single message must fit")]
    fn oversized_message_rejected() {
        let mut cfg = presets::smoke();
        cfg.message_size = Bytes::from_mb(99.0);
        cfg.validate();
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = presets::random_waypoint_paper();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
