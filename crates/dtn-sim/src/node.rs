//! A simulated node: buffer + buffer policy + routing protocol.

use crate::message::{BufferedCopy, Message};
use dtn_buffer::policy::BufferPolicy;
use dtn_buffer::view::MessageView;
use dtn_core::ids::{MessageId, NodeId};
use dtn_core::time::SimTime;
use dtn_core::units::Bytes;
use dtn_routing::protocol::RoutingProtocol;
use std::collections::{BTreeMap, HashSet};

/// One DTN node's complete state.
pub struct Node {
    /// The node id.
    pub id: NodeId,
    /// Buffered copies, keyed (and iterated deterministically) by id.
    pub buffer: BTreeMap<MessageId, BufferedCopy>,
    /// Bytes currently buffered.
    pub used: Bytes,
    /// Buffer capacity.
    pub capacity: Bytes,
    /// The buffer-management strategy.
    pub policy: Box<dyn BufferPolicy>,
    /// The routing protocol.
    pub routing: Box<dyn RoutingProtocol>,
    /// Messages this node has received *as destination* (used to refuse
    /// duplicate deliveries; ONE behaves the same).
    pub delivered: HashSet<MessageId>,
    /// Acknowledged message ids this node knows about (antipackets;
    /// only populated under `ImmunityMode::AntipacketGossip`).
    pub acked: HashSet<MessageId>,
}

impl Node {
    /// Creates an empty node.
    pub fn new(
        id: NodeId,
        capacity: Bytes,
        policy: Box<dyn BufferPolicy>,
        routing: Box<dyn RoutingProtocol>,
    ) -> Self {
        Node {
            id,
            buffer: BTreeMap::new(),
            used: Bytes::ZERO,
            capacity,
            policy,
            routing,
            delivered: HashSet::new(),
            acked: HashSet::new(),
        }
    }

    /// Free buffer space.
    pub fn free(&self) -> Bytes {
        self.capacity.saturating_sub(self.used)
    }

    /// Whether the node currently buffers `msg`.
    pub fn has(&self, msg: MessageId) -> bool {
        self.buffer.contains_key(&msg)
    }

    /// Inserts a copy whose size the caller has already cleared through
    /// admission control.
    ///
    /// # Panics
    /// Panics if the copy does not fit or a copy already exists — both
    /// indicate a world-logic bug.
    pub fn insert_copy(&mut self, copy: BufferedCopy, size: Bytes) {
        assert!(
            self.used + size <= self.capacity,
            "{:?}: insert would overflow buffer",
            self.id
        );
        let prev = self.buffer.insert(copy.msg, copy);
        assert!(prev.is_none(), "{:?}: duplicate copy inserted", self.id);
        self.used += size;
    }

    /// Removes a copy, returning it.
    ///
    /// # Panics
    /// Panics if the copy is absent.
    pub fn remove_copy(&mut self, msg: MessageId, size: Bytes) -> BufferedCopy {
        let copy = self
            .buffer
            .remove(&msg)
            .unwrap_or_else(|| panic!("{:?}: removing absent copy {msg:?}", self.id));
        self.used -= size;
        copy
    }

    /// Number of buffered messages.
    pub fn buffered_count(&self) -> usize {
        self.buffer.len()
    }
}

/// Builds the policy-facing view of one buffered copy.
///
/// `oracle` carries perfect `(m_i, n_i)` when the scenario runs in
/// oracle mode.
pub fn make_view<'a>(
    msg: &Message,
    copy: &'a BufferedCopy,
    now: SimTime,
    oracle: Option<(u32, u32)>,
) -> MessageView<'a> {
    MessageView {
        id: msg.id,
        size: msg.size,
        source: msg.source,
        destination: msg.destination,
        created: msg.created,
        received: copy.received,
        initial_ttl: msg.ttl,
        remaining_ttl: msg.remaining_ttl(now),
        copies: copy.copies,
        initial_copies: msg.initial_copies,
        hops: copy.hops,
        forward_count: copy.forward_count,
        spray_times: &copy.spray_times,
        oracle_seen: oracle.map(|(m, _)| m),
        oracle_holders: oracle.map(|(_, n)| n),
    }
}

/// Borrows two distinct nodes mutably.
///
/// # Panics
/// Panics if `a == b`.
pub fn two_nodes(nodes: &mut [Node], a: NodeId, b: NodeId) -> (&mut Node, &mut Node) {
    assert_ne!(a, b, "cannot borrow the same node twice");
    let (ai, bi) = (a.index(), b.index());
    if ai < bi {
        let (lo, hi) = nodes.split_at_mut(bi);
        (&mut lo[ai], &mut hi[0])
    } else {
        let (lo, hi) = nodes.split_at_mut(ai);
        (&mut hi[0], &mut lo[bi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_buffer::fifo::Fifo;
    use dtn_core::time::SimDuration;
    use dtn_routing::SprayAndWait;

    fn node(id: u32) -> Node {
        Node::new(
            NodeId(id),
            Bytes::from_mb(2.5),
            Box::new(Fifo),
            Box::new(SprayAndWait::binary()),
        )
    }

    fn msg(id: u64) -> Message {
        Message {
            id: MessageId(id),
            source: NodeId(0),
            destination: NodeId(1),
            size: Bytes::from_mb(0.5),
            created: SimTime::ZERO,
            ttl: SimDuration::from_mins(300.0),
            initial_copies: 16,
        }
    }

    #[test]
    fn buffer_accounting() {
        let mut n = node(0);
        let m = msg(1);
        assert_eq!(n.free(), Bytes::from_mb(2.5));
        n.insert_copy(BufferedCopy::at_source(&m), m.size);
        assert!(n.has(MessageId(1)));
        assert_eq!(n.used, Bytes::from_mb(0.5));
        assert_eq!(n.buffered_count(), 1);
        let c = n.remove_copy(MessageId(1), m.size);
        assert_eq!(c.copies, 16);
        assert_eq!(n.used, Bytes::ZERO);
        assert!(!n.has(MessageId(1)));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overfill_panics() {
        let mut n = node(0);
        for i in 0..6 {
            let m = msg(i);
            n.insert_copy(BufferedCopy::at_source(&m), m.size);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate copy")]
    fn duplicate_insert_panics() {
        let mut n = node(0);
        let m = msg(1);
        n.insert_copy(BufferedCopy::at_source(&m), m.size);
        n.insert_copy(BufferedCopy::at_source(&m), m.size);
    }

    #[test]
    fn view_construction() {
        let m = msg(1);
        let mut copy = BufferedCopy::at_source(&m);
        copy.spray_times.push(SimTime::from_secs(5.0));
        let now = SimTime::from_secs(600.0);
        let v = make_view(&m, &copy, now, Some((7, 4)));
        assert_eq!(v.remaining_ttl.as_secs(), 300.0 * 60.0 - 600.0);
        assert_eq!(v.copies, 16);
        assert_eq!(v.oracle_seen, Some(7));
        assert_eq!(v.oracle_holders, Some(4));
        assert_eq!(v.spray_times.len(), 1);
        let v2 = make_view(&m, &copy, now, None);
        assert_eq!(v2.oracle_seen, None);
    }

    #[test]
    fn two_nodes_split() {
        let mut nodes: Vec<Node> = (0..4).map(node).collect();
        let (a, b) = two_nodes(&mut nodes, NodeId(3), NodeId(1));
        assert_eq!(a.id, NodeId(3));
        assert_eq!(b.id, NodeId(1));
        let (x, y) = two_nodes(&mut nodes, NodeId(0), NodeId(2));
        assert_eq!(x.id, NodeId(0));
        assert_eq!(y.id, NodeId(2));
    }

    #[test]
    #[should_panic(expected = "same node")]
    fn two_nodes_rejects_same() {
        let mut nodes: Vec<Node> = (0..2).map(node).collect();
        let _ = two_nodes(&mut nodes, NodeId(1), NodeId(1));
    }
}
