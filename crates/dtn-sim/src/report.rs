//! Simulation metrics with the paper's exact definitions (Section IV-A).

use dtn_core::ids::MessageId;
use dtn_core::stats::OnlineStats;
use dtn_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Aggregated run statistics.
///
/// * **Delivery ratio** — messages delivered at least once / messages
///   generated.
/// * **Average hopcounts** — mean hop count over *first* deliveries.
/// * **Overhead ratio** — (completed transmissions − unique deliveries)
///   / unique deliveries. Transmissions count every completed transfer:
///   replications, handoffs and (possibly duplicate) deliveries — ONE's
///   "relayed" counter.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    created: u64,
    transmissions: u64,
    delivered_events: u64,
    delivered_unique: HashSet<MessageId>,
    hops: OnlineStats,
    latency: OnlineStats,
    /// First-delivery latencies (seconds) for percentile queries.
    latencies: Vec<f64>,
    buffer_drops: u64,
    incoming_rejects: u64,
    expirations: u64,
    aborted_transfers: u64,
    refused_receipts: u64,
    immunity_purges: u64,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// A message was generated.
    pub fn on_created(&mut self) {
        self.created += 1;
    }

    /// A transfer completed (any kind).
    pub fn on_transmission(&mut self) {
        self.transmissions += 1;
    }

    /// The destination received `msg` (hop count of the delivering copy,
    /// including the final hop).
    pub fn on_delivered(&mut self, msg: MessageId, hops: u32, created: SimTime, now: SimTime) {
        self.delivered_events += 1;
        if self.delivered_unique.insert(msg) {
            self.hops.push(hops as f64);
            let lat = (now - created).as_secs();
            self.latency.push(lat);
            self.latencies.push(lat);
        }
    }

    /// A buffered message was evicted by the drop policy.
    pub fn on_buffer_drop(&mut self) {
        self.buffer_drops += 1;
    }

    /// An incoming message was refused by the admission rule
    /// (Algorithm 1 chose to drop the newcomer).
    pub fn on_incoming_reject(&mut self) {
        self.incoming_rejects += 1;
    }

    /// A copy expired (TTL).
    pub fn on_expired(&mut self) {
        self.expirations += 1;
    }

    /// A transfer was aborted by the contact closing.
    pub fn on_aborted_transfer(&mut self) {
        self.aborted_transfers += 1;
    }

    /// A receiver refused a message (dropped-list rejection) before
    /// transmission started.
    pub fn on_refused_receipt(&mut self) {
        self.refused_receipts += 1;
    }

    /// A buffered copy was purged because its message is acknowledged
    /// (immunity extension; never fires in the paper's configuration).
    pub fn on_immunity_purge(&mut self) {
        self.immunity_purges += 1;
    }

    /// Immunity purges.
    pub fn immunity_purges(&self) -> u64 {
        self.immunity_purges
    }

    /// Generated message count.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Unique delivered message count.
    pub fn delivered(&self) -> u64 {
        self.delivered_unique.len() as u64
    }

    /// All delivery events including duplicates.
    pub fn delivered_events(&self) -> u64 {
        self.delivered_events
    }

    /// Completed transmissions (ONE's "relayed").
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Buffer-overflow evictions.
    pub fn buffer_drops(&self) -> u64 {
        self.buffer_drops
    }

    /// Newcomer rejections.
    pub fn incoming_rejects(&self) -> u64 {
        self.incoming_rejects
    }

    /// TTL expirations.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Aborted transfers.
    pub fn aborted_transfers(&self) -> u64 {
        self.aborted_transfers
    }

    /// Dropped-list receive refusals.
    pub fn refused_receipts(&self) -> u64 {
        self.refused_receipts
    }

    /// Whether `msg` was delivered.
    pub fn is_delivered(&self, msg: MessageId) -> bool {
        self.delivered_unique.contains(&msg)
    }

    /// Delivery ratio (paper metric 1). Zero when nothing was generated.
    pub fn delivery_ratio(&self) -> f64 {
        if self.created == 0 {
            0.0
        } else {
            self.delivered() as f64 / self.created as f64
        }
    }

    /// Average hopcounts over first deliveries (paper metric 2).
    pub fn avg_hopcount(&self) -> f64 {
        self.hops.mean().unwrap_or(0.0)
    }

    /// Overhead ratio (paper metric 3). Zero when nothing was delivered.
    pub fn overhead_ratio(&self) -> f64 {
        let d = self.delivered();
        if d == 0 {
            0.0
        } else {
            (self.transmissions.saturating_sub(d)) as f64 / d as f64
        }
    }

    /// Mean delivery latency (seconds) over first deliveries, or `None`
    /// before the first delivery. A run with zero deliveries has *no*
    /// latency, not an instant one — callers that need a number for a
    /// fingerprint or a plot decide their own sentinel explicitly.
    pub fn avg_latency(&self) -> Option<f64> {
        self.latency.mean()
    }

    /// Raw first-delivery latencies (seconds), in delivery order — the
    /// exact empirical sample behind [`avg_latency`](Self::avg_latency)
    /// and the percentiles, exported so the delay-distribution oracle
    /// can compare an exact empirical CDF instead of the `OnlineStats`
    /// aggregate.
    pub fn latency_samples(&self) -> &[f64] {
        &self.latencies
    }

    /// Delivery-latency percentile (`q` in `[0, 1]`, nearest rank) over
    /// first deliveries; `None` before the first delivery.
    pub fn latency_percentile(&self, q: f64) -> Option<f64> {
        let mut v = self.latencies.clone();
        dtn_core::stats::percentile(&mut v, q)
    }

    /// Median delivery latency (seconds).
    pub fn median_latency(&self) -> Option<f64> {
        self.latency_percentile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = Report::new();
        assert_eq!(r.delivery_ratio(), 0.0);
        assert_eq!(r.avg_hopcount(), 0.0);
        assert_eq!(r.overhead_ratio(), 0.0);
        // No deliveries means no latency — not an instant one.
        assert_eq!(r.avg_latency(), None);
        assert!(r.latency_samples().is_empty());
    }

    #[test]
    fn paper_metric_definitions() {
        let mut r = Report::new();
        for _ in 0..10 {
            r.on_created();
        }
        // 7 relay transmissions + 3 delivery transmissions.
        for _ in 0..10 {
            r.on_transmission();
        }
        r.on_delivered(MessageId(1), 3, t(0.0), t(50.0));
        r.on_delivered(MessageId(2), 1, t(0.0), t(150.0));
        // Duplicate delivery of message 1: counts as event, not unique.
        r.on_delivered(MessageId(1), 5, t(0.0), t(60.0));

        assert_eq!(r.created(), 10);
        assert_eq!(r.delivered(), 2);
        assert_eq!(r.delivered_events(), 3);
        assert_eq!(r.delivery_ratio(), 0.2);
        // Hops over FIRST deliveries only: (3 + 1) / 2.
        assert_eq!(r.avg_hopcount(), 2.0);
        // Overhead: (10 - 2) / 2.
        assert_eq!(r.overhead_ratio(), 4.0);
        assert_eq!(r.avg_latency(), Some(100.0));
        // Raw samples: first deliveries only, in delivery order.
        assert_eq!(r.latency_samples(), &[50.0, 150.0]);
        assert!(r.is_delivered(MessageId(1)));
        assert!(!r.is_delivered(MessageId(3)));
    }

    #[test]
    fn latency_percentiles() {
        let mut r = Report::new();
        for (i, lat) in [10.0, 20.0, 30.0, 40.0, 50.0].iter().enumerate() {
            r.on_created();
            r.on_transmission();
            r.on_delivered(MessageId(i as u64), 1, t(0.0), t(*lat));
        }
        assert_eq!(r.median_latency(), Some(30.0));
        assert_eq!(r.latency_percentile(0.0), Some(10.0));
        assert_eq!(r.latency_percentile(1.0), Some(50.0));
        // Out-of-range quantiles answer None instead of panicking or
        // clamping to an arbitrary sample.
        assert_eq!(r.latency_percentile(-0.5), None);
        assert_eq!(r.latency_percentile(1.5), None);
        assert_eq!(r.latency_percentile(f64::NAN), None);
        assert_eq!(Report::new().median_latency(), None);
    }

    #[test]
    fn single_sample_percentiles() {
        let mut r = Report::new();
        r.on_created();
        r.on_transmission();
        r.on_delivered(MessageId(1), 1, t(0.0), t(42.0));
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(r.latency_percentile(q), Some(42.0));
        }
        assert_eq!(r.avg_latency(), Some(42.0));
    }

    #[test]
    fn counters_accumulate() {
        let mut r = Report::new();
        r.on_buffer_drop();
        r.on_buffer_drop();
        r.on_incoming_reject();
        r.on_expired();
        r.on_aborted_transfer();
        r.on_refused_receipt();
        assert_eq!(r.buffer_drops(), 2);
        assert_eq!(r.incoming_rejects(), 1);
        assert_eq!(r.expirations(), 1);
        assert_eq!(r.aborted_transfers(), 1);
        assert_eq!(r.refused_receipts(), 1);
    }

    #[test]
    fn overhead_never_negative() {
        let mut r = Report::new();
        r.on_created();
        r.on_delivered(MessageId(1), 1, t(0.0), t(1.0));
        // Delivery without any recorded transmission (can't happen in the
        // world, but the metric must not underflow).
        assert_eq!(r.overhead_ratio(), 0.0);
    }
}
